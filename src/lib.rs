//! LUBT — Lower/Upper Bounded delay routing Trees via linear programming.
//!
//! Facade crate re-exporting the whole workspace, a faithful reproduction of
//! Oh, Pyo and Pedram, *"Constructing Lower and Upper Bounded Delay Routing
//! Trees Using Linear Programming"* (USC CENG 96-05 / DAC 1996).
//!
//! # Crate map
//!
//! * [`obs`] — solve-trace observability: recorders, counters, timers.
//! * [`geom`] — Manhattan geometry: points, TRRs, octilinear regions.
//! * [`lp`] — linear programming: simplex and interior-point solvers.
//! * [`par`] — work-stealing thread pool and deterministic parallel loops.
//! * [`topology`] — rooted routing-tree topologies and generators.
//! * [`delay`] — linear and Elmore delay models.
//! * [`core`] — the Edge-Based Formulation (EBF) and the geometric embedder.
//! * [`lint`] — clippy-style static analysis of instances and LP models.
//! * [`audit`] — exact rational verification of solver certificates.
//! * [`dp`] — LP-free exact oracle: interval DP plus a rational dual simplex.
//! * [`baselines`] — zero-skew DME, bounded-skew DME, shortest-path tree.
//! * [`data`] — benchmark instances (synthetic prim1/prim2/r1/r3 analogues).
//! * [`serve`] — the long-lived solver daemon (`lubt serve`): line-JSON
//!   protocol, result cache, warm session pool, live Prometheus metrics.
//!
//! # Quickstart
//!
//! ```
//! use lubt::core::{DelayBounds, LubtBuilder};
//! use lubt::geom::Point;
//!
//! // Four sinks at the corners of a square, source at the center.
//! let sinks = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(0.0, 10.0),
//!     Point::new(10.0, 10.0),
//! ];
//! let solution = LubtBuilder::new(sinks)
//!     .source(Point::new(5.0, 5.0))
//!     .bounds(DelayBounds::uniform(4, 10.0, 14.0))
//!     .solve()?;
//! assert!(solution.verify().is_ok());
//! # Ok::<(), lubt::core::LubtError>(())
//! ```

#![forbid(unsafe_code)]

pub use lubt_audit as audit;
pub use lubt_baselines as baselines;
pub use lubt_core as core;
pub use lubt_data as data;
pub use lubt_delay as delay;
pub use lubt_dp as dp;
pub use lubt_geom as geom;
pub use lubt_lint as lint;
pub use lubt_lp as lp;
pub use lubt_obs as obs;
pub use lubt_par as par;
pub use lubt_serve as serve;
pub use lubt_topology as topology;
