//! Property-based tests over the whole pipeline: random instances, random
//! feasible windows — every solution must verify and satisfy the paper's
//! structural theorems.

use lubt::core::{DelayBounds, LubtBuilder};
use lubt::delay::linear::{node_delays, path_length};
use lubt::geom::Point;
use proptest::prelude::*;

fn sink_set() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)),
        2..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any feasible window produces a solution that passes independent
    /// verification, and whose embedding satisfies every pairwise Steiner
    /// constraint when re-measured geometrically.
    #[test]
    fn solutions_verify_and_satisfy_steiner(
        sinks in sink_set(),
        lower_frac in 0.0..1.2f64,
        width_frac in 0.05..1.0f64,
        sx in 0.0..100.0f64,
        sy in 0.0..100.0f64,
    ) {
        let m = sinks.len();
        let source = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        // Window guaranteed feasible: u >= radius (Equation 3).
        let l = lower_frac * radius;
        let u = (lower_frac + width_frac).max(1.0) * radius + 1e-9;
        let sol = LubtBuilder::new(sinks.clone())
            .source(source)
            .bounds(DelayBounds::uniform(m, l.min(u), u))
            .solve()
            .expect("window above the radius is feasible (Lemma 3.1)");
        prop_assert!(sol.verify().is_ok(), "verify failed: {:?}", sol.verify());

        // Steiner sufficiency check from the embedding itself.
        let topo = sol.problem().topology();
        let delays = node_delays(topo, sol.edge_lengths());
        for i in 1..=m {
            for j in i + 1..=m {
                let a = lubt::topology::NodeId(i);
                let b = lubt::topology::NodeId(j);
                let need = sinks[i - 1].dist(sinks[j - 1]);
                let have = path_length(topo, &delays, a, b);
                prop_assert!(
                    have >= need - 1e-6 * (1.0 + need),
                    "pair ({i},{j}): path {have} < dist {need}"
                );
            }
        }
    }

    /// Zero-skew windows produce genuinely zero-skew embeddings.
    #[test]
    fn zero_skew_windows_have_zero_skew(
        sinks in sink_set(),
        sx in 0.0..100.0f64,
        sy in 0.0..100.0f64,
        target_frac in 1.0..2.0f64,
    ) {
        let m = sinks.len();
        let source = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let sol = LubtBuilder::new(sinks)
            .source(source)
            .bounds(DelayBounds::zero_skew(m, target_frac * radius + 1e-9))
            .solve()
            .expect("target above radius is feasible");
        prop_assert!(sol.skew() < 1e-6 * radius, "skew {}", sol.skew());
        prop_assert!(sol.verify().is_ok());
    }

    /// §4.6 equivalence as a property: the zero-skew closed form and the
    /// general LP at `l = u` agree on cost for random instances.
    #[test]
    fn zero_skew_closed_form_equals_lp(
        sinks in proptest::collection::vec(
            (0.0..60.0f64, 0.0..60.0f64).prop_map(|(x, y)| Point::new(x, y)),
            2..8,
        ),
        sx in 0.0..60.0f64,
        sy in 0.0..60.0f64,
    ) {
        let src = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| src.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let topo = lubt::topology::nearest_neighbor_topology(
            &sinks,
            lubt::topology::SourceMode::Given,
        );
        let zst = lubt::core::zero_skew_edge_lengths(&topo, &sinks, Some(src), None)
            .expect("natural zero-skew always exists");
        let closed_cost = lubt::delay::linear::tree_cost(&zst.edge_lengths);
        let problem = lubt::core::LubtProblem::new(
            sinks.clone(),
            Some(src),
            topo,
            DelayBounds::zero_skew(sinks.len(), zst.delay),
        )
        .expect("valid problem");
        let (lengths, _) = lubt::core::EbfSolver::new().solve(&problem).expect("feasible");
        let lp_cost = lubt::delay::linear::tree_cost(&lengths);
        let scale = 1.0 + closed_cost;
        prop_assert!(
            (closed_cost - lp_cost).abs() / scale < 1e-6,
            "closed form {closed_cost} vs LP {lp_cost}"
        );
    }

    /// The two LP backends agree on the optimal cost.
    #[test]
    fn backends_agree_on_random_instances(
        sinks in proptest::collection::vec(
            (0.0..50.0f64, 0.0..50.0f64).prop_map(|(x, y)| Point::new(x, y)),
            2..8,
        ),
    ) {
        let m = sinks.len();
        let radius = lubt::delay::skew::radius_free(&sinks);
        prop_assume!(radius > 1.0);
        let mk = |backend| {
            LubtBuilder::new(sinks.clone())
                .bounds(DelayBounds::uniform(m, 0.8 * radius, 1.5 * radius))
                .backend(backend)
                .solve()
        };
        let simplex = mk(lubt::core::SolverBackend::Simplex).expect("feasible");
        let ipm = mk(lubt::core::SolverBackend::InteriorPoint).expect("feasible");
        let scale = 1.0 + simplex.cost();
        prop_assert!(
            (simplex.cost() - ipm.cost()).abs() / scale < 1e-4,
            "simplex {} vs interior point {}",
            simplex.cost(),
            ipm.cost()
        );
    }

    /// Differential test of the parallel separation oracle: solving the
    /// same instance with 1, 2 and 8 oracle threads must produce the same
    /// Solution JSON byte for byte — the cut sequence fixes the simplex
    /// pivot sequence, so any divergence means the parallel merge order
    /// broke the determinism contract.
    #[test]
    fn oracle_thread_count_never_changes_the_solution(
        sinks in sink_set(),
        sx in 0.0..100.0f64,
        sy in 0.0..100.0f64,
        lower_frac in 0.0..1.0f64,
    ) {
        let m = sinks.len();
        let source = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let solve = |threads: usize| {
            LubtBuilder::new(sinks.clone())
                .source(source)
                .bounds(DelayBounds::uniform(m, lower_frac * radius, 1.5 * radius))
                .threads(threads)
                .solve()
                .expect("window above the radius is feasible")
        };
        let base = solve(1);
        let base_json = lubt::core::solution_to_json(&base);
        for threads in [2usize, 8] {
            let other = solve(threads);
            let other_json = lubt::core::solution_to_json(&other);
            if base_json != other_json {
                // Name the first diverging edge before failing.
                let diverged = base
                    .edge_lengths()
                    .iter()
                    .zip(other.edge_lengths())
                    .enumerate()
                    .find(|(_, (a, b))| a.to_bits() != b.to_bits());
                match diverged {
                    Some((edge, (a, b))) => prop_assert!(
                        false,
                        "threads={threads}: first diverging edge e_{edge}: \
                         {a} (1 thread) vs {b} ({threads} threads)"
                    ),
                    None => prop_assert!(
                        false,
                        "threads={threads}: JSON differs but edge lengths agree \
                         (embedding or report divergence)"
                    ),
                }
            }
        }
    }

    /// Both placement policies yield verifiable embeddings of the same
    /// LP optimum.
    #[test]
    fn placement_policies_both_verify(
        sinks in sink_set(),
        sx in 0.0..100.0f64,
        sy in 0.0..100.0f64,
    ) {
        let m = sinks.len();
        let source = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        for policy in [
            lubt::core::PlacementPolicy::ClosestToParent,
            lubt::core::PlacementPolicy::Center,
        ] {
            let sol = LubtBuilder::new(sinks.clone())
                .source(source)
                .bounds(DelayBounds::uniform(m, 0.5 * radius, 1.4 * radius))
                .placement(policy)
                .solve()
                .expect("feasible");
            prop_assert!(sol.verify().is_ok(), "{policy:?}: {:?}", sol.verify());
        }
    }
}

/// Builds a histogram over `vals`.
fn hist(vals: &[u64]) -> lubt::obs::Histogram {
    let mut h = lubt::obs::Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram merge is commutative and associative — the property that
    /// makes `AggregateTrace` folds independent of completion order.
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000, 0..40),
        c in proptest::collection::vec(0u64..40, 0..40),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// Percentiles are monotone in `q` and always land inside the observed
    /// `[min, max]` range, despite the log-bucket approximation.
    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(
        vals in proptest::collection::vec(0u64..1_000_000_000, 1..80),
        qs in proptest::collection::vec(0.0..1.0f64, 2..6),
    ) {
        let h = hist(&vals);
        let mut qs = qs;
        qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let ps: Vec<u64> = qs
            .iter()
            .map(|&q| h.percentile(q).expect("non-empty histogram"))
            .collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {ps:?} for {qs:?}");
        }
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        for &p in &ps {
            prop_assert!((lo..=hi).contains(&p), "percentile {p} outside [{lo}, {hi}]");
        }
    }

    /// `percentile` is total over the whole `f64` line: NaN is rejected
    /// explicitly (it used to fall through the comparisons and masquerade
    /// as a small quantile), everything else clamps into `[0, 1]` and
    /// still lands inside the observed `[min, max]`.
    #[test]
    fn histogram_percentile_is_total_over_hostile_q(
        vals in proptest::collection::vec(0u64..1_000_000_000, 1..80),
        q in (0u8..6, -1e6..1e6f64).prop_map(|(kind, x)| match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -x.abs(),
            4 => 1.0 + x.abs(),
            _ => x,
        }),
    ) {
        let h = hist(&vals);
        prop_assert_eq!(h.percentile(f64::NAN), None);
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        match h.percentile(q) {
            None => prop_assert!(q.is_nan(), "only NaN may be rejected, got None for {q}"),
            Some(p) => {
                prop_assert!((lo..=hi).contains(&p), "percentile {p} outside [{lo}, {hi}]");
                if q <= 0.0 {
                    prop_assert_eq!(p, lo, "q={} below range must clamp to min", q);
                }
                if q >= 1.0 {
                    prop_assert_eq!(p, hi, "q={} above range must clamp to max", q);
                }
            }
        }
    }

    /// Counts near `u64::MAX` saturate instead of wrapping, and the merge
    /// laws (commutativity, order independence) survive at the ceiling.
    #[test]
    fn histogram_merge_saturates_near_u64_max(
        vals in proptest::collection::vec(0u64..1_000, 1..20),
        copies in 1usize..4,
    ) {
        // Drive one histogram's counts to the ceiling by merging it into
        // itself through exponential doubling.
        let mut big = hist(&vals);
        for _ in 0..64 {
            let snapshot = big.clone();
            big.merge(&snapshot);
        }
        prop_assert_eq!(big.count(), u64::MAX, "64 doublings must pin the count");
        let small = hist(&vals);
        let mut bs = big.clone();
        bs.merge(&small);
        let mut sb = small.clone();
        sb.merge(&big);
        prop_assert_eq!(&bs, &sb, "saturating merge stays commutative");
        prop_assert_eq!(bs.count(), u64::MAX);
        for _ in 0..copies {
            let snapshot = bs.clone();
            bs.merge(&snapshot);
        }
        // Percentiles stay total and bounded at the ceiling.
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = bs.percentile(q).expect("non-empty");
            prop_assert!((lo..=hi).contains(&p));
        }
    }

    /// Sharding the recordings over real worker threads and merging the
    /// shard histograms reproduces the serial histogram exactly, whatever
    /// the shard count — bucket contents cannot depend on scheduling.
    #[test]
    fn histogram_is_sharding_invariant_across_thread_counts(
        vals in proptest::collection::vec(0u64..1_000_000_000, 1..120),
        shards in 1usize..8,
    ) {
        let serial = hist(&vals);
        let chunk = vals.len().div_ceil(shards);
        let parts: Vec<lubt::obs::Histogram> = std::thread::scope(|scope| {
            vals.chunks(chunk)
                .map(|part| scope.spawn(move || hist(part)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("shard worker"))
                .collect()
        });
        // Merge in reverse completion order for good measure.
        let mut merged = lubt::obs::Histogram::new();
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        prop_assert_eq!(merged, serial);
    }
}
