//! Three-way differential wall: the dense simplex, the revised simplex and
//! the LP-free exact DP oracle must agree on status and objective across
//! generated LUBT instances. A disagreement between any pair is a hard
//! failure that is first *shrunk* (sinks removed while the divergence
//! persists) and then printed as replayable JSON, so a red run carries a
//! minimal counterexample instead of a 6-sink blob.
//!
//! Instances live on an integer lattice with quarter-unit windows, so all
//! three solvers work on exactly representable data and the 1e-9 objective
//! comparison is meaningful. The float backends run in eager Steiner mode
//! — the same all-`C(m, 2)` row set the DP models — making the comparison
//! exact-model against exact-model rather than "lazy loop with a 1e-6
//! separation tolerance" against an exact oracle.

use lubt::core::{
    DelayBounds, EbfSolver, LubtBuilder, LubtError, LubtProblem, SolverBackend, SteinerMode,
};
use lubt::geom::Point;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One lattice instance: everything needed to rebuild the problem (the
/// nearest-neighbor topology generation is deterministic in the sinks, so
/// sinks + source + window replay the exact same solve).
#[derive(Debug, Clone, PartialEq)]
struct TriInstance {
    sinks: Vec<(i32, i32)>,
    source: Option<(i32, i32)>,
    /// Lower delay bound in quarter units.
    lower_q: i32,
    /// Upper delay bound in quarter units.
    upper_q: i32,
}

impl TriInstance {
    fn problem(&self) -> Result<LubtProblem, LubtError> {
        let sinks: Vec<Point> = self
            .sinks
            .iter()
            .map(|&(x, y)| Point::new(f64::from(x), f64::from(y)))
            .collect();
        let mut b = LubtBuilder::new(sinks).bounds(DelayBounds::uniform(
            self.sinks.len(),
            f64::from(self.lower_q) / 4.0,
            f64::from(self.upper_q) / 4.0,
        ));
        if let Some((x, y)) = self.source {
            b = b.source(Point::new(f64::from(x), f64::from(y)));
        }
        b.build()
    }

    /// The replayable form a failure message carries.
    fn to_json(&self) -> String {
        let sinks = self
            .sinks
            .iter()
            .map(|&(x, y)| format!("[{x},{y}]"))
            .collect::<Vec<_>>()
            .join(",");
        let source = match self.source {
            Some((x, y)) => format!("[{x},{y}]"),
            None => "null".to_string(),
        };
        format!(
            "{{\"sinks\":[{sinks}],\"source\":{source},\"lower_q\":{},\"upper_q\":{}}}",
            self.lower_q, self.upper_q
        )
    }

    /// Parses exactly the documents [`TriInstance::to_json`] writes — the
    /// replay path a developer (or the fault-injection test) uses to rerun
    /// a printed counterexample.
    fn from_json(doc: &str) -> TriInstance {
        fn ints(s: &str) -> Vec<i32> {
            let mut out = Vec::new();
            let mut cur = String::new();
            for ch in s.chars() {
                if ch.is_ascii_digit() || (ch == '-' && cur.is_empty()) {
                    cur.push(ch);
                } else if !cur.is_empty() {
                    out.push(cur.parse().expect("integer literal"));
                    cur.clear();
                }
            }
            if !cur.is_empty() {
                out.push(cur.parse().expect("integer literal"));
            }
            out
        }
        let (sinks_part, rest) = doc
            .split_once("\"source\":")
            .expect("replay JSON has a source field");
        let (source_part, bounds_part) = rest
            .split_once("\"lower_q\":")
            .expect("replay JSON has bounds");
        let sink_ints = ints(sinks_part);
        assert!(
            sink_ints.len().is_multiple_of(2),
            "sink coordinates come in pairs"
        );
        let sinks = sink_ints.chunks(2).map(|c| (c[0], c[1])).collect();
        let source = if source_part.trim_start().starts_with("null") {
            None
        } else {
            let s = ints(source_part);
            Some((s[0], s[1]))
        };
        let bounds = ints(bounds_part);
        TriInstance {
            sinks,
            source,
            lower_q: bounds[0],
            upper_q: bounds[1],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    Optimal(f64),
    Infeasible,
}

/// Runs one backend on the instance's problem. Eager Steiner rows, prelint
/// off: infeasibility must come from the solver itself, not the linter.
fn run_backend(p: &LubtProblem, backend: SolverBackend) -> Result<Outcome, String> {
    let solver = EbfSolver::new()
        .with_backend(backend)
        .with_steiner_mode(SteinerMode::Eager)
        .with_prelint(false);
    match solver.solve(p) {
        Ok((lengths, _)) => Ok(Outcome::Optimal(lengths.iter().sum())),
        Err(LubtError::Infeasible) => Ok(Outcome::Infeasible),
        Err(e) => Err(format!("{backend:?} failed: {e}")),
    }
}

/// The three-way comparator. `dp_fault` is added to the DP's optimal
/// objective — zero in production use; nonzero only by the seeded
/// fault-injection test, which proves the wall actually trips. Returns a
/// human-readable description of the first diverging backend pair, or
/// `None` when all three agree.
fn divergence(inst: &TriInstance, dp_fault: f64) -> Option<String> {
    let p = inst.problem().ok()?;
    let backends = [
        SolverBackend::Simplex,
        SolverBackend::Revised,
        SolverBackend::Dp,
    ];
    let mut outcomes = Vec::new();
    for b in backends {
        match run_backend(&p, b) {
            Ok(Outcome::Optimal(obj)) if b == SolverBackend::Dp => {
                outcomes.push(Outcome::Optimal(obj + dp_fault));
            }
            Ok(o) => outcomes.push(o),
            Err(e) => return Some(e),
        }
    }
    for i in 0..3 {
        for j in i + 1..3 {
            let diverged = match (outcomes[i], outcomes[j]) {
                (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                    (a - b).abs() > 1e-9 * (1.0 + a.abs())
                }
                (a, b) => a != b,
            };
            if diverged {
                return Some(format!(
                    "{:?} {:?} vs {:?} {:?}",
                    backends[i], outcomes[i], backends[j], outcomes[j]
                ));
            }
        }
    }
    None
}

/// Greedy shrinker: keep removing single sinks while the divergence
/// persists. The result is locally minimal — removing any one more sink
/// makes the three backends agree (or the instance degenerate).
fn shrink(inst: &TriInstance, dp_fault: f64) -> TriInstance {
    let mut cur = inst.clone();
    'outer: while cur.sinks.len() > 2 {
        for i in 0..cur.sinks.len() {
            let mut cand = cur.clone();
            cand.sinks.remove(i);
            if divergence(&cand, dp_fault).is_some() {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

/// The first-divergence reporter: shrink, then render the what and the
/// replayable how.
fn report_divergence(inst: &TriInstance, dp_fault: f64) -> String {
    let min = shrink(inst, dp_fault);
    let what = divergence(&min, dp_fault).expect("shrinking preserves the divergence");
    format!(
        "three-way divergence ({} sink(s), shrunk from {}): {what}\nreplay JSON: {}",
        min.sinks.len(),
        inst.sinks.len(),
        min.to_json()
    )
}

fn check_agreement(inst: &TriInstance) -> Result<(), TestCaseError> {
    if divergence(inst, 0.0).is_some() {
        return Err(TestCaseError::Fail(report_divergence(inst, 0.0)));
    }
    Ok(())
}

fn tri_instance() -> impl Strategy<Value = TriInstance> {
    (
        proptest::collection::vec((0i32..24, 0i32..24), 2..6),
        proptest::bool::ANY,
        (0i32..24, 0i32..24),
        0i32..160,
        0i32..80,
    )
        .prop_map(|(sinks, rooted, src, lower_q, width_q)| TriInstance {
            sinks,
            source: rooted.then_some(src),
            lower_q,
            upper_q: lower_q + width_q,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated corpus: lattice instances spanning feasible and
    /// infeasible windows, with and without a source. All three backends
    /// must agree on every one.
    #[test]
    fn three_backends_agree_on_generated_instances(inst in tri_instance()) {
        check_agreement(&inst)?;
    }
}

/// The pinned synthetic benchmarks pass the same wall at small scale.
#[test]
fn three_backends_agree_on_pinned_benchmarks() {
    for inst in lubt::data::synthetic::paper_benchmarks() {
        let inst = inst.subsample(8);
        let radius = inst.radius();
        let problem = LubtBuilder::new(inst.sinks.clone())
            .source(inst.source.unwrap())
            .bounds(DelayBounds::uniform(
                inst.sinks.len(),
                0.9 * radius,
                1.4 * radius,
            ))
            .build()
            .unwrap();
        let reference = run_backend(&problem, SolverBackend::Simplex).unwrap();
        for backend in [SolverBackend::Revised, SolverBackend::Dp] {
            let got = run_backend(&problem, backend).unwrap();
            match (reference, got) {
                (Outcome::Optimal(a), Outcome::Optimal(b)) => assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "{}: simplex {a} vs {backend:?} {b}",
                    inst.name
                ),
                (a, b) => assert_eq!(a, b, "{}: {backend:?}", inst.name),
            }
        }
    }
}

/// Seeded fault injection: corrupt the DP objective by half a unit and the
/// wall must trip, shrink to a minimal instance, and print replayable JSON
/// that still reproduces the divergence after a parse round-trip.
#[test]
fn seeded_fault_is_caught_with_a_minimized_replayable_counterexample() {
    let inst = TriInstance {
        sinks: vec![(0, 0), (8, 0), (0, 8), (8, 8), (4, 2)],
        source: Some((4, 4)),
        lower_q: 40,
        upper_q: 56,
    };
    // Healthy solvers agree on the seed instance...
    assert!(divergence(&inst, 0.0).is_none());
    // ...and a seeded half-unit fault in the DP objective trips the wall.
    let report = report_divergence(&inst, 0.5);
    assert!(report.contains("Dp"), "{report}");
    assert!(report.contains("replay JSON: "), "{report}");

    // The printed counterexample is minimized and replayable: parse it
    // back, confirm it shrank, and confirm it still diverges.
    let json = report.split("replay JSON: ").nth(1).unwrap().trim();
    let replay = TriInstance::from_json(json);
    assert!(replay.sinks.len() <= inst.sinks.len());
    assert!(replay.sinks.len() >= 2);
    assert!(divergence(&replay, 0.5).is_some(), "replay lost the fault");
    // Local minimality: removing any single further sink kills the
    // divergence (that is exactly when the shrinker stopped).
    if replay.sinks.len() > 2 {
        for i in 0..replay.sinks.len() {
            let mut cand = replay.clone();
            cand.sinks.remove(i);
            assert!(divergence(&cand, 0.5).is_none(), "shrinker stopped early");
        }
    }
    // Round-trip fidelity of the replay format.
    assert_eq!(TriInstance::from_json(&replay.to_json()), replay);
}

/// The replay parser accepts the exact documents the reporter writes,
/// including sourceless instances.
#[test]
fn replay_json_round_trips() {
    for inst in [
        TriInstance {
            sinks: vec![(0, 0), (3, 7)],
            source: None,
            lower_q: 0,
            upper_q: 44,
        },
        TriInstance {
            sinks: vec![(1, 2), (3, 4), (5, 6)],
            source: Some((2, 2)),
            lower_q: 12,
            upper_q: 20,
        },
    ] {
        assert_eq!(TriInstance::from_json(&inst.to_json()), inst);
    }
}
