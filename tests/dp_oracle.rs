//! Exact-oracle integration: the DP backend's outputs against the exact
//! audit layer.
//!
//! The DP backend carries no float LP certificate — its exactness contract
//! is that its solutions pass the same exact rational audits as the LP
//! backends' (`audit_primal` against the eager model, `audit_tree` against
//! the embedding), and that deliberately corrupted DP outputs are rejected
//! with deny-level `audit-*` findings.

use lubt::audit::{audit_primal, audit_tree};
use lubt::core::{
    ebf_model, BatchSolver, DelayBounds, EbfSolver, LubtBuilder, LubtError, LubtProblem,
    SolverBackend, SteinerMode,
};
use lubt::geom::Point;
use lubt::lint::Level;
use lubt::topology::{nearest_neighbor_topology, NodeId, SourceMode};
use lubt_bench::suite::pinned_instances;

/// The pinned bench-suite instances wrapped into LUBT problems, matching
/// `audit_certificates.rs`'s convention.
fn suite_problems(lower_frac: f64, upper_frac: f64) -> Vec<(String, LubtProblem)> {
    pinned_instances(&[6, 10, 16])
        .into_iter()
        .map(|inst| {
            let r = inst.radius();
            let m = inst.sinks.len();
            let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
            let problem = LubtProblem::new(
                inst.sinks.clone(),
                inst.source,
                topo,
                DelayBounds::uniform(m, lower_frac * r, upper_frac * r),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
            (inst.name, problem)
        })
        .collect()
}

fn assert_deny_audit_findings(findings: &[lubt::lint::Diagnostic], what: &str) {
    assert!(!findings.is_empty(), "{what}: corruption went undetected");
    for f in findings {
        assert_eq!(f.level, Level::Deny, "{what}: {f:?}");
        assert!(f.pass.starts_with("audit-"), "{what}: {f:?}");
    }
}

/// Every pinned instance solved by the DP backend with auditing on passes
/// both exact audits: the primal audit inside the solver (counted as
/// `audit.primal_verified`) and the tree audit on the embedding.
#[test]
fn every_pinned_instance_passes_exact_audit_under_dp() {
    let named = suite_problems(0.9, 1.4);
    let problems: Vec<LubtProblem> = named.iter().map(|(_, p)| p.clone()).collect();
    let batch = BatchSolver::new().with_threads(1).with_solver(
        EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .with_audit(true),
    );
    let (results, trace) = batch.solve_all_traced(&problems);
    for ((name, _), result) in named.iter().zip(&results) {
        let solution = result
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}/dp: audited solve failed: {e}"));
        assert!(
            solution.audit_tree().is_empty(),
            "{name}/dp: exact tree audit rejected the embedding"
        );
    }
    assert!(
        trace.counter("audit.primal_verified") >= problems.len() as u64,
        "dp: only {} primal audits verified for {} instances",
        trace.counter("audit.primal_verified"),
        problems.len()
    );
    assert_eq!(trace.counter("audit.failures"), 0);
    assert_eq!(trace.counter("dp.solves"), problems.len() as u64);
}

/// `u = 0.5R` violates Equation 3 on every pinned instance. The DP
/// backend's infeasibility is exact (interval or rational-core), so with
/// prelint bypassed every refusal is `Infeasible` with zero audit
/// failures — there is no float Farkas ray to second-guess.
#[test]
fn dp_infeasibility_on_pinned_instances_is_exact() {
    let named = suite_problems(0.0, 0.5);
    let problems: Vec<LubtProblem> = named.iter().map(|(_, p)| p.clone()).collect();
    let batch = BatchSolver::new().with_threads(1).with_solver(
        EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .with_prelint(false)
            .with_audit(true),
    );
    let (results, trace) = batch.solve_all_traced(&problems);
    for ((name, _), result) in named.iter().zip(&results) {
        assert!(
            matches!(result, Err(LubtError::Infeasible)),
            "{name}/dp: expected exact infeasibility, got {result:?}"
        );
    }
    assert_eq!(trace.counter("dp.solves"), problems.len() as u64);
    assert_eq!(trace.counter("audit.failures"), 0);
}

/// A four-sink problem the corruption tests share: solved by the DP
/// backend, embedded, and re-audited by hand so individual fields can be
/// tampered with.
fn solved_dp_instance() -> lubt::core::LubtSolution {
    LubtBuilder::new(vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(0.0, 10.0),
        Point::new(10.0, 10.0),
    ])
    .source(Point::new(5.0, 5.0))
    .bounds(DelayBounds::uniform(4, 12.0, 14.0))
    .backend(SolverBackend::Dp)
    .solve()
    .unwrap()
}

/// Deliberately corrupted DP trees are rejected by the exact tree audit:
/// an edge shortened below the Manhattan span of its endpoints, and a
/// sink pushed out of its delay window, both draw deny `audit-*`
/// findings; the genuine tree draws none.
#[test]
fn corrupted_dp_trees_are_rejected_by_the_exact_tree_audit() {
    let sol = solved_dp_instance();
    let topo = sol.problem().topology();
    let parents: Vec<usize> = (0..topo.num_nodes())
        .map(|v| topo.parent(NodeId(v)).map_or(v, |p| p.index()))
        .collect();
    let pos: Vec<(f64, f64)> = sol.positions().iter().map(|p| (p.x, p.y)).collect();
    let bounds = sol.problem().bounds();
    let sinks: Vec<(usize, f64, f64)> = (0..topo.num_sinks())
        .map(|i| (i + 1, bounds.lower(i), bounds.upper(i)))
        .collect();
    let root = topo.root().index();
    let genuine = sol.edge_lengths().to_vec();
    assert!(
        audit_tree(&parents, &genuine, &pos, &sinks, root).is_empty(),
        "genuine DP tree must audit clean"
    );

    // Shorten sink 1's edge below the Manhattan distance to its parent.
    let mut short = genuine.clone();
    short[1] -= 1.0;
    assert_deny_audit_findings(
        &audit_tree(&parents, &short, &pos, &sinks, root),
        "shortened edge",
    );

    // Pad the same edge until the sink's pathlength overshoots its upper
    // delay bound.
    let mut long = genuine.clone();
    long[1] += 5.0;
    assert_deny_audit_findings(
        &audit_tree(&parents, &long, &pos, &sinks, root),
        "out-of-window sink",
    );
}

/// Corrupted DP *solutions* — lengths or claimed objective — are rejected
/// by the exact primal audit against the eager model, which is exactly the
/// audit the solver runs when `with_audit(true)` is set.
#[test]
fn corrupted_dp_solutions_are_rejected_by_the_exact_primal_audit() {
    let sol = solved_dp_instance();
    // The eager model: base rows plus every pair row, the same system the
    // DP solves (the four-sink seed pair set is already all C(4,2) pairs).
    let problem = sol.problem();
    let model = ebf_model(problem);
    let lengths = &sol.edge_lengths()[1..];
    let objective = sol.cost();
    assert!(
        audit_primal(&model, lengths, objective).is_empty(),
        "genuine DP solution must audit clean"
    );

    // A shortened edge violates a delay-window row.
    let mut short = lengths.to_vec();
    short[0] -= 1.0;
    assert_deny_audit_findings(
        &audit_primal(&model, &short, objective - 1.0),
        "corrupted lengths",
    );

    // An understated objective no longer matches the weighted sum.
    assert_deny_audit_findings(
        &audit_primal(&model, lengths, objective - 1.0),
        "understated objective",
    );
}

/// The in-solver audit has teeth end to end: auditing on cannot change
/// the DP's answer, and the audited DP run matches the audited simplex
/// run bit for bit on the final lengths' cost.
#[test]
fn audited_dp_solves_match_unaudited_and_simplex() {
    let problem = LubtBuilder::new(vec![
        Point::new(0.0, 0.0),
        Point::new(6.0, 2.0),
        Point::new(2.0, 7.0),
    ])
    .source(Point::new(3.0, 3.0))
    .bounds(DelayBounds::uniform(3, 8.0, 11.0))
    .build()
    .unwrap();
    let solve = |backend, audit| {
        EbfSolver::new()
            .with_backend(backend)
            .with_steiner_mode(SteinerMode::Eager)
            .with_audit(audit)
            .solve(&problem)
            .unwrap()
            .0
    };
    let plain = solve(SolverBackend::Dp, false);
    let audited = solve(SolverBackend::Dp, true);
    assert_eq!(plain, audited, "auditing changed the DP answer");
    let simplex = solve(SolverBackend::Simplex, true);
    let cost = |l: &[f64]| l.iter().sum::<f64>();
    assert!(
        (cost(&audited) - cost(&simplex)).abs() <= 1e-9 * (1.0 + cost(&simplex)),
        "dp {} vs simplex {}",
        cost(&audited),
        cost(&simplex)
    );
}
