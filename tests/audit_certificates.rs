//! Exact certificate auditing, end to end — the acceptance gate of the
//! audit layer.
//!
//! Every pinned bench-suite instance must pass the exact rational
//! certificate audit on **both** LP backends: optimality certificates on
//! feasible windows, Farkas rays on infeasible ones. And the audit must
//! have teeth: a deliberately corrupted solution, claimed objective,
//! dual certificate or Farkas ray is rejected with a deny-level
//! `audit-*` diagnostic.

use lubt::audit::{audit_farkas, audit_optimality, PASS_FARKAS, PASS_OBJECTIVE};
use lubt::core::{BatchSolver, DelayBounds, EbfSolver, LubtError, LubtProblem, SolverBackend};
use lubt::lint::Level;
use lubt::lp::{Certificate, Cmp, LinExpr, Model, RevisedSolver, SimplexSolver, Status};
use lubt::topology::{nearest_neighbor_topology, SourceMode};
use lubt_bench::suite::pinned_instances;

/// The pinned suite instances at their default sizes, wrapped into LUBT
/// problems with the given delay window (fractions of each instance's
/// radius, matching the bench suite's convention).
fn suite_problems(lower_frac: f64, upper_frac: f64) -> Vec<(String, LubtProblem)> {
    pinned_instances(&[6, 10, 16])
        .into_iter()
        .map(|inst| {
            let r = inst.radius();
            let m = inst.sinks.len();
            let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
            let problem = LubtProblem::new(
                inst.sinks.clone(),
                inst.source,
                topo,
                DelayBounds::uniform(m, lower_frac * r, upper_frac * r),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
            (inst.name, problem)
        })
        .collect()
}

#[test]
fn every_pinned_instance_passes_exact_audit_on_both_backends() {
    let named = suite_problems(0.9, 1.4);
    let problems: Vec<LubtProblem> = named.iter().map(|(_, p)| p.clone()).collect();
    for backend in [SolverBackend::Simplex, SolverBackend::Revised] {
        let batch = BatchSolver::new()
            .with_threads(1)
            .with_solver(EbfSolver::new().with_backend(backend).with_audit(true));
        let (results, trace) = batch.solve_all_traced(&problems);
        for ((name, _), result) in named.iter().zip(&results) {
            let solution = result
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}/{backend:?}: audited solve failed: {e}"));
            assert!(
                solution.audit_tree().is_empty(),
                "{name}/{backend:?}: exact tree audit rejected the embedding"
            );
        }
        // The LP-side audits actually ran: at least one exactly verified
        // optimality certificate per instance, zero failures.
        assert!(
            trace.counter("audit.optimality_verified") >= problems.len() as u64,
            "{backend:?}: only {} certificates verified for {} instances",
            trace.counter("audit.optimality_verified"),
            problems.len()
        );
        assert_eq!(trace.counter("audit.failures"), 0, "{backend:?}");
    }
}

#[test]
fn infeasible_fixtures_verify_farkas_rays_on_both_backends() {
    // u = 0.5R violates Equation 3 on every pinned instance; with prelint
    // bypassed the LP itself must refuse, and every refusal must carry an
    // exactly verifying Farkas ray.
    let named = suite_problems(0.0, 0.5);
    let problems: Vec<LubtProblem> = named.iter().map(|(_, p)| p.clone()).collect();
    for backend in [SolverBackend::Simplex, SolverBackend::Revised] {
        let batch = BatchSolver::new().with_threads(1).with_solver(
            EbfSolver::new()
                .with_backend(backend)
                .with_prelint(false)
                .with_audit(true),
        );
        let (results, trace) = batch.solve_all_traced(&problems);
        for ((name, _), result) in named.iter().zip(&results) {
            assert!(
                matches!(result, Err(LubtError::Infeasible)),
                "{name}/{backend:?}: expected verified infeasibility, got {result:?}"
            );
        }
        assert!(
            trace.counter("audit.farkas_verified") >= problems.len() as u64,
            "{backend:?}: only {} Farkas rays verified for {} instances",
            trace.counter("audit.farkas_verified"),
            problems.len()
        );
        assert_eq!(trace.counter("audit.failures"), 0, "{backend:?}");
    }
}

fn certified(backend: &str, model: &Model) -> (lubt::lp::Solution, Option<Certificate>) {
    if backend == "simplex" {
        SimplexSolver::new().solve_certified(model).unwrap()
    } else {
        RevisedSolver::new().solve_certified(model).unwrap()
    }
}

fn assert_deny_audit_findings(findings: &[lubt::lint::Diagnostic], what: &str) {
    assert!(!findings.is_empty(), "{what}: corruption went undetected");
    for f in findings {
        assert_eq!(f.level, Level::Deny, "{what}: {f:?}");
        assert!(f.pass.starts_with("audit-"), "{what}: {f:?}");
    }
}

#[test]
fn corrupted_solutions_and_certificates_are_rejected_with_deny_findings() {
    let mut model = Model::new();
    let x = model.add_var(0.0, 1.0);
    let y = model.add_var(0.0, 2.0);
    model.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
    model.add_constraint(LinExpr::from_terms([(x, 2.0), (y, 1.0)]), Cmp::Le, 10.0);

    for backend in ["simplex", "revised"] {
        let (sol, cert) = certified(backend, &model);
        assert_eq!(sol.status(), Status::Optimal, "{backend}");
        let Some(Certificate::Optimality(opt)) = cert else {
            panic!("{backend}: optimal solve must carry an optimality certificate");
        };
        // The genuine output verifies exactly.
        assert!(
            audit_optimality(&model, sol.values(), sol.objective(), &opt).is_empty(),
            "{backend}: genuine certificate must verify"
        );

        // A corrupted primal point is caught.
        let mut vals = sol.values().to_vec();
        vals[0] -= 5.0;
        assert_deny_audit_findings(
            &audit_optimality(&model, &vals, sol.objective(), &opt),
            &format!("{backend}: corrupted primal"),
        );

        // A falsely improved objective claim is caught by the exact
        // objective cross-check.
        let lies = audit_optimality(&model, sol.values(), sol.objective() - 1.0, &opt);
        assert_deny_audit_findings(&lies, &format!("{backend}: corrupted objective"));
        assert!(
            lies.iter().any(|f| f.pass == PASS_OBJECTIVE),
            "{backend}: {lies:?}"
        );

        // A tampered dual certificate no longer proves optimality.
        let mut bad = opt.clone();
        bad.duals[0] += 0.5;
        assert_deny_audit_findings(
            &audit_optimality(&model, sol.values(), sol.objective(), &bad),
            &format!("{backend}: corrupted duals"),
        );
    }
}

#[test]
fn corrupted_farkas_rays_are_rejected_with_deny_findings() {
    let mut model = Model::new();
    let x = model.add_var(0.0, 1.0);
    model.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 1.0);
    model.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 3.0);

    for backend in ["simplex", "revised"] {
        let (sol, cert) = certified(backend, &model);
        assert_eq!(sol.status(), Status::Infeasible, "{backend}");
        let Some(Certificate::Farkas(farkas)) = cert else {
            panic!("{backend}: infeasible solve must carry a Farkas certificate");
        };
        assert!(
            audit_farkas(&model, &farkas.ray).is_empty(),
            "{backend}: genuine ray must verify"
        );

        // A positive multiplier on a `<=` row can never be part of a valid
        // ray; the exact sign check must refuse it.
        let mut bad = farkas.ray.clone();
        bad[0] = 1.0;
        let findings = audit_farkas(&model, &bad);
        assert_deny_audit_findings(&findings, &format!("{backend}: corrupted ray"));
        assert!(
            findings.iter().any(|f| f.pass == PASS_FARKAS),
            "{backend}: {findings:?}"
        );
    }
}
