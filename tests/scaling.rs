//! Medium-scale end-to-end checks (beyond the proptest sizes): the full
//! pipeline must stay exact and verifiable as instances grow.

use lubt::baselines::bounded_skew_tree;
use lubt::core::{analyze, DelayBounds, LubtBuilder, LubtProblem};
use lubt::data::synthetic;

#[test]
fn sixty_four_sink_pipeline_verifies() {
    let inst = synthetic::prim2().subsample(64);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let sol = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::uniform(64, 0.8 * radius, 1.2 * radius))
        .solve()
        .unwrap();
    sol.verify().unwrap();

    // Structural sanity at scale.
    let a = analyze(&sol);
    assert_eq!(a.edges.len(), sol.problem().topology().num_edges());
    assert_eq!(a.tight + a.elongated + a.degenerate, a.edges.len());
    assert!((a.total_cost - sol.cost()).abs() < 1e-9);
    // Lazy separation really reduced the constraint set.
    assert!(sol.report().steiner_rows < sol.report().total_pairs / 2);
    // Routed wirelength equals the LP cost.
    assert!((sol.routed_wirelength() - sol.cost()).abs() < 1e-5 * (1.0 + sol.cost()));
}

#[test]
fn table1_protocol_invariant_at_scale() {
    // LUBT on the baseline's own window never costs more, at a size well
    // beyond the property-test range.
    let inst = synthetic::r1().subsample(72);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    for skew in [0.1, 1.0] {
        let bst = bounded_skew_tree(&inst.sinks, Some(src), skew * radius).unwrap();
        let (short, long) = bst.delay_range();
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            bst.topology.clone(),
            DelayBounds::uniform(inst.sinks.len(), short, long),
        )
        .unwrap();
        let (lengths, report) = lubt::core::EbfSolver::new().solve(&problem).unwrap();
        let cost = lubt::delay::linear::tree_cost(&lengths);
        assert!(
            cost <= bst.cost() + 1e-6 * (1.0 + bst.cost()),
            "skew {skew}: {cost} > {}",
            bst.cost()
        );
        // The separation loop converged (did not hit the materialize-all
        // safety net, which would show as steiner_rows == total_pairs).
        assert!(report.steiner_rows < report.total_pairs);
    }
}
