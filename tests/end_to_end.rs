//! Cross-crate integration tests: the full LUBT pipeline against the
//! baselines, on seeded synthetic instances.

use lubt::baselines::{bounded_skew_tree, star_wirelength, zero_skew_tree};
use lubt::core::{DelayBounds, EbfSolver, LubtBuilder, LubtError, LubtProblem};
use lubt::data::synthetic;
use lubt::delay::linear::tree_cost;
use lubt::geom::diameter;

/// Table 1 protocol, strict form: LUBT on the baseline's topology and
/// window never costs more than the baseline.
#[test]
fn lubt_undercuts_baseline_on_its_own_window() {
    let inst = synthetic::prim1().subsample(20);
    let radius = inst.radius();
    for skew_norm in [0.0, 0.1, 0.5, 2.0] {
        let bst = bounded_skew_tree(&inst.sinks, inst.source, skew_norm * radius).unwrap();
        let (short, long) = bst.delay_range();
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            inst.source,
            bst.topology.clone(),
            DelayBounds::uniform(inst.sinks.len(), short, long),
        )
        .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
        let lubt_cost = tree_cost(&lengths);
        let tol = 1e-6 * (1.0 + bst.cost());
        assert!(
            lubt_cost <= bst.cost() + tol,
            "skew {skew_norm}: LUBT {lubt_cost} > baseline {}",
            bst.cost()
        );
    }
}

/// §4.6 cross-validation: the zero-skew closed form and the general LP at
/// `l = u` agree on cost (both are optimal for the same problem).
#[test]
fn zero_skew_closed_form_matches_lp() {
    let inst = synthetic::r1().subsample(16);
    let src = inst.source.unwrap();
    let zst = zero_skew_tree(&inst.sinks, Some(src), None, None).unwrap();
    let problem = LubtProblem::new(
        inst.sinks.clone(),
        Some(src),
        zst.topology.clone(),
        DelayBounds::zero_skew(inst.sinks.len(), zst.delay),
    )
    .unwrap();
    let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
    let lp_cost = tree_cost(&lengths);
    let scale = 1.0 + zst.cost();
    assert!(
        (lp_cost - zst.cost()).abs() / scale < 1e-6,
        "closed form {} vs LP {}",
        zst.cost(),
        lp_cost
    );
}

/// Cost is monotone in the bounds: relaxing the window never increases the
/// optimum (Theorem 4.2 corollary).
#[test]
fn cost_is_monotone_in_window() {
    let inst = synthetic::prim2().subsample(18);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let topo =
        lubt::topology::nearest_neighbor_topology(&inst.sinks, lubt::topology::SourceMode::Given);
    let mut last = f64::INFINITY;
    // Successively wider windows around the radius.
    for half_width in [0.0, 0.05, 0.15, 0.4, 1.0] {
        let l = (1.0 - half_width) * 1.2 * radius;
        let u = (1.0 + half_width) * 1.2 * radius;
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::uniform(inst.sinks.len(), l, u),
        )
        .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
        let cost = tree_cost(&lengths);
        assert!(
            cost <= last + 1e-6 * (1.0 + last.min(1e18)),
            "window +-{half_width}: cost {cost} > previous {last}"
        );
        last = cost;
    }
}

/// The unconstrained optimum is sandwiched between the trivial bounds:
/// diameter <= cost <= star wirelength.
#[test]
fn steiner_optimum_respects_trivial_bounds() {
    let inst = synthetic::r3().subsample(15);
    let src = inst.source.unwrap();
    let sol = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::unbounded(inst.sinks.len()))
        .solve()
        .unwrap();
    sol.verify().unwrap();
    let diam = diameter(inst.sinks.iter().copied());
    assert!(sol.cost() >= diam - 1e-6);
    assert!(sol.cost() <= star_wirelength(src, &inst.sinks) + 1e-6);
}

/// Infeasibility is certified, not mis-solved: a delay cap below the
/// source-sink distance (violating Equation 3) is now caught by the
/// pre-solve lint hook, which names the unreachable sinks without ever
/// building the LP.
#[test]
fn equation_3_violations_are_rejected_with_diagnostics() {
    let inst = synthetic::prim1().subsample(10);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let r = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::upper_only(inst.sinks.len(), 0.5 * radius))
        .solve();
    match r {
        Err(LubtError::Rejected(diags)) => {
            assert!(diags
                .iter()
                .any(|d| d.pass == "sink-reachability" && d.is_deny()));
        }
        other => panic!("expected Rejected with diagnostics, got {other:?}"),
    }
}

/// Full pipeline on every synthetic benchmark at small scale: solve,
/// verify, and confirm the routed wirelength equals the LP cost.
#[test]
fn all_benchmarks_solve_and_verify() {
    for inst in synthetic::paper_benchmarks() {
        let inst = inst.subsample(12);
        let radius = inst.radius();
        let sol = LubtBuilder::new(inst.sinks.clone())
            .source(inst.source.unwrap())
            .bounds(DelayBounds::uniform(
                inst.sinks.len(),
                0.9 * radius,
                1.4 * radius,
            ))
            .solve()
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        sol.verify()
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        assert!(
            (sol.routed_wirelength() - sol.cost()).abs() < 1e-6 * (1.0 + sol.cost()),
            "{}: routed {} vs cost {}",
            inst.name,
            sol.routed_wirelength(),
            sol.cost()
        );
    }
}

/// Weighted objectives (§7): scaling all weights leaves the solution
/// essentially unchanged, while skewed weights shift wire away from the
/// heavy edges.
#[test]
fn weighted_objective_scales_and_shifts() {
    let inst = synthetic::prim2().subsample(10);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let base = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::uniform(
            inst.sinks.len(),
            0.8 * radius,
            1.3 * radius,
        ))
        .build()
        .unwrap();
    let (l1, _) = EbfSolver::new().solve(&base).unwrap();
    let n = base.topology().num_nodes();
    // Uniform scaling: same optimum (cost function scaled by 3).
    let scaled = base.clone().with_weights(vec![3.0; n]).unwrap();
    let (l2, _) = EbfSolver::new().solve(&scaled).unwrap();
    assert!((tree_cost(&l1) - tree_cost(&l2)).abs() < 1e-5 * (1.0 + tree_cost(&l1)));
}
