//! Cross-crate integration tests: the full LUBT pipeline against the
//! baselines, on seeded synthetic instances.

use lubt::baselines::{bounded_skew_tree, star_wirelength, zero_skew_tree};
use lubt::core::{DelayBounds, EbfSolver, LubtBuilder, LubtError, LubtProblem};
use lubt::data::synthetic;
use lubt::delay::linear::tree_cost;
use lubt::geom::diameter;

/// Table 1 protocol, strict form: LUBT on the baseline's topology and
/// window never costs more than the baseline.
#[test]
fn lubt_undercuts_baseline_on_its_own_window() {
    let inst = synthetic::prim1().subsample(20);
    let radius = inst.radius();
    for skew_norm in [0.0, 0.1, 0.5, 2.0] {
        let bst = bounded_skew_tree(&inst.sinks, inst.source, skew_norm * radius).unwrap();
        let (short, long) = bst.delay_range();
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            inst.source,
            bst.topology.clone(),
            DelayBounds::uniform(inst.sinks.len(), short, long),
        )
        .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
        let lubt_cost = tree_cost(&lengths);
        let tol = 1e-6 * (1.0 + bst.cost());
        assert!(
            lubt_cost <= bst.cost() + tol,
            "skew {skew_norm}: LUBT {lubt_cost} > baseline {}",
            bst.cost()
        );
    }
}

/// §4.6 cross-validation: the zero-skew closed form and the general LP at
/// `l = u` agree on cost (both are optimal for the same problem).
#[test]
fn zero_skew_closed_form_matches_lp() {
    let inst = synthetic::r1().subsample(16);
    let src = inst.source.unwrap();
    let zst = zero_skew_tree(&inst.sinks, Some(src), None, None).unwrap();
    let problem = LubtProblem::new(
        inst.sinks.clone(),
        Some(src),
        zst.topology.clone(),
        DelayBounds::zero_skew(inst.sinks.len(), zst.delay),
    )
    .unwrap();
    let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
    let lp_cost = tree_cost(&lengths);
    let scale = 1.0 + zst.cost();
    assert!(
        (lp_cost - zst.cost()).abs() / scale < 1e-6,
        "closed form {} vs LP {}",
        zst.cost(),
        lp_cost
    );
}

/// Cost is monotone in the bounds: relaxing the window never increases the
/// optimum (Theorem 4.2 corollary).
#[test]
fn cost_is_monotone_in_window() {
    let inst = synthetic::prim2().subsample(18);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let topo =
        lubt::topology::nearest_neighbor_topology(&inst.sinks, lubt::topology::SourceMode::Given);
    let mut last = f64::INFINITY;
    // Successively wider windows around the radius.
    for half_width in [0.0, 0.05, 0.15, 0.4, 1.0] {
        let l = (1.0 - half_width) * 1.2 * radius;
        let u = (1.0 + half_width) * 1.2 * radius;
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::uniform(inst.sinks.len(), l, u),
        )
        .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
        let cost = tree_cost(&lengths);
        assert!(
            cost <= last + 1e-6 * (1.0 + last.min(1e18)),
            "window +-{half_width}: cost {cost} > previous {last}"
        );
        last = cost;
    }
}

/// The unconstrained optimum is sandwiched between the trivial bounds:
/// diameter <= cost <= star wirelength.
#[test]
fn steiner_optimum_respects_trivial_bounds() {
    let inst = synthetic::r3().subsample(15);
    let src = inst.source.unwrap();
    let sol = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::unbounded(inst.sinks.len()))
        .solve()
        .unwrap();
    sol.verify().unwrap();
    let diam = diameter(inst.sinks.iter().copied());
    assert!(sol.cost() >= diam - 1e-6);
    assert!(sol.cost() <= star_wirelength(src, &inst.sinks) + 1e-6);
}

/// Infeasibility is certified, not mis-solved: a delay cap below the
/// source-sink distance (violating Equation 3) is now caught by the
/// pre-solve lint hook, which names the unreachable sinks without ever
/// building the LP.
#[test]
fn equation_3_violations_are_rejected_with_diagnostics() {
    let inst = synthetic::prim1().subsample(10);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let r = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::upper_only(inst.sinks.len(), 0.5 * radius))
        .solve();
    match r {
        Err(LubtError::Rejected(diags)) => {
            assert!(diags
                .iter()
                .any(|d| d.pass == "sink-reachability" && d.is_deny()));
        }
        other => panic!("expected Rejected with diagnostics, got {other:?}"),
    }
}

/// Full pipeline on every synthetic benchmark at small scale: solve,
/// verify, and confirm the routed wirelength equals the LP cost.
#[test]
fn all_benchmarks_solve_and_verify() {
    for inst in synthetic::paper_benchmarks() {
        let inst = inst.subsample(12);
        let radius = inst.radius();
        let sol = LubtBuilder::new(inst.sinks.clone())
            .source(inst.source.unwrap())
            .bounds(DelayBounds::uniform(
                inst.sinks.len(),
                0.9 * radius,
                1.4 * radius,
            ))
            .solve()
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        sol.verify()
            .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        assert!(
            (sol.routed_wirelength() - sol.cost()).abs() < 1e-6 * (1.0 + sol.cost()),
            "{}: routed {} vs cost {}",
            inst.name,
            sol.routed_wirelength(),
            sol.cost()
        );
    }
}

/// The exact DP backend drives the full pipeline on every synthetic
/// benchmark at small scale: it solves, verifies, routes its cost, and
/// lands on the simplex backend's optimum.
#[test]
fn dp_backend_matches_the_pipeline_on_all_benchmarks() {
    use lubt::core::SolverBackend;
    for inst in synthetic::paper_benchmarks() {
        let inst = inst.subsample(8);
        let radius = inst.radius();
        let builder = |backend| {
            LubtBuilder::new(inst.sinks.clone())
                .source(inst.source.unwrap())
                .bounds(DelayBounds::uniform(
                    inst.sinks.len(),
                    0.9 * radius,
                    1.4 * radius,
                ))
                .backend(backend)
                .solve()
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name))
        };
        let dp = builder(SolverBackend::Dp);
        dp.verify().unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        assert!(
            (dp.routed_wirelength() - dp.cost()).abs() < 1e-6 * (1.0 + dp.cost()),
            "{}: routed {} vs cost {}",
            inst.name,
            dp.routed_wirelength(),
            dp.cost()
        );
        let lp = builder(SolverBackend::Simplex);
        assert!(
            (dp.cost() - lp.cost()).abs() < 1e-6 * (1.0 + lp.cost()),
            "{}: dp cost {} vs simplex cost {}",
            inst.name,
            dp.cost(),
            lp.cost()
        );
    }
}

/// Non-uniform edge weights through the DP backend: the exact oracle must
/// optimize the *weighted* objective, not merely find a feasible tree, so
/// its weighted cost matches the simplex backend's.
#[test]
fn dp_backend_optimizes_weighted_objectives() {
    use lubt::core::{EbfReport, SolverBackend};
    let inst = synthetic::prim2().subsample(9);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let base = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::uniform(
            inst.sinks.len(),
            0.8 * radius,
            1.3 * radius,
        ))
        .build()
        .unwrap();
    let n = base.topology().num_nodes();
    // Skewed weights: odd-numbered edges are five times as expensive.
    let weights: Vec<f64> = (0..n).map(|v| if v % 2 == 1 { 5.0 } else { 1.0 }).collect();
    let weighted = base.with_weights(weights.clone()).unwrap();
    let weighted_cost =
        |lengths: &[f64]| -> f64 { lengths.iter().zip(&weights).map(|(l, w)| l * w).sum() };
    let solve = |backend| -> (Vec<f64>, EbfReport) {
        EbfSolver::new()
            .with_backend(backend)
            .solve(&weighted)
            .unwrap()
    };
    let (dp_lengths, _) = solve(SolverBackend::Dp);
    let (lp_lengths, _) = solve(SolverBackend::Simplex);
    let (dp_cost, lp_cost) = (weighted_cost(&dp_lengths), weighted_cost(&lp_lengths));
    assert!(
        (dp_cost - lp_cost).abs() < 1e-6 * (1.0 + lp_cost),
        "weighted: dp {dp_cost} vs simplex {lp_cost}"
    );
}

/// Weighted objectives (§7): scaling all weights leaves the solution
/// essentially unchanged, while skewed weights shift wire away from the
/// heavy edges.
#[test]
fn weighted_objective_scales_and_shifts() {
    let inst = synthetic::prim2().subsample(10);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let base = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::uniform(
            inst.sinks.len(),
            0.8 * radius,
            1.3 * radius,
        ))
        .build()
        .unwrap();
    let (l1, _) = EbfSolver::new().solve(&base).unwrap();
    let n = base.topology().num_nodes();
    // Uniform scaling: same optimum (cost function scaled by 3).
    let scaled = base.clone().with_weights(vec![3.0; n]).unwrap();
    let (l2, _) = EbfSolver::new().solve(&scaled).unwrap();
    assert!((tree_cost(&l1) - tree_cost(&l2)).abs() < 1e-5 * (1.0 + tree_cost(&l1)));
}
