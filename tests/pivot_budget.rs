//! Pivot-budget regression gate: the incremental separation loop must stay
//! cheap. Warm-started resolves should re-pivot only around the appended
//! Steiner rows, so the total pivot count across all separation rounds is
//! pinned against fixed budgets for both LP backends. A regression that
//! silently falls back to cold solves (or thrashes the basis) blows the
//! budget long before it would show up as a wall-clock change.

use lubt::core::{DelayBounds, EbfSolver, LubtBuilder, SolverBackend};
use lubt::data::synthetic;
use lubt::obs::SolveTrace;

fn solve_traced(backend: SolverBackend) -> (usize, usize, SolveTrace) {
    let inst = synthetic::prim2().subsample(48);
    let src = inst.source.unwrap();
    let radius = inst.radius();
    let problem = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .bounds(DelayBounds::uniform(48, 0.8 * radius, 1.2 * radius))
        .build()
        .unwrap();
    let (result, trace) = EbfSolver::new()
        .with_backend(backend)
        .solve_traced(&problem);
    let (_, report) = result.unwrap();
    assert!(
        report.separation_rounds > 1,
        "instance must exercise the incremental path ({} rounds)",
        report.separation_rounds
    );
    (report.separation_rounds, report.lp_iterations, trace)
}

#[test]
fn dense_pivots_across_rounds_stay_within_budget() {
    let (rounds, lp_iterations, trace) = solve_traced(SolverBackend::Simplex);
    let pivots = trace.counter("simplex.pivots") + trace.counter("simplex.dual_pivots");
    // Observed 2026-08: 48 sinks, 4 rounds, 303 pivots dense / 279 revised.
    // The budget leaves ~1.5x headroom; a cold resolve per round lands well
    // past it.
    assert!(
        pivots <= 450,
        "dense backend spent {pivots} pivots over {rounds} rounds (budget 450)"
    );
    assert_eq!(
        lp_iterations as u64, pivots,
        "report must account for every pivot"
    );
}

#[test]
fn revised_pivots_across_rounds_stay_within_budget() {
    let (rounds, lp_iterations, trace) = solve_traced(SolverBackend::Revised);
    let pivots = trace.counter("lp.pivots") + trace.counter("lp.dual_pivots");
    assert!(
        pivots <= 450,
        "revised backend spent {pivots} pivots over {rounds} rounds (budget 450)"
    );
    assert_eq!(
        lp_iterations as u64, pivots,
        "report must account for every pivot"
    );
    // The warm-start path, not repeated cold solves, must carry the loop.
    assert_eq!(trace.counter("lp.solves"), 1);
    assert_eq!(trace.counter("lp.resolves") as usize, rounds - 1);
}
