//! Tests pinned to the paper's worked figures and counterexamples.

use lubt::core::{
    embed_tree, verify_raw, DelayBounds, EbfSolver, LubtError, LubtProblem, PlacementPolicy,
    SolverBackend,
};
use lubt::geom::Point;
use lubt::topology::Topology;

/// Figure 1: the same three sinks under three topologies. With bounds
/// `l = 0, u = 6` (the figure's numbers), topology (a) — where sink s2 is
/// an *internal* node on the path to s1 — is infeasible, while the
/// leaf-sink topologies (b) and (c) admit solutions (Lemma 3.1).
#[test]
fn figure_1_topology_feasibility() {
    // Geometry in the spirit of the figure: both sinks individually within
    // the bound of the source (Equation 3 holds), but the detour through
    // s2 overshoots it.
    let s0 = Point::new(0.0, 0.0);
    let sinks = vec![Point::new(0.0, 5.0), Point::new(3.0, 0.0)]; // s1, s2
    let bounds = DelayBounds::upper_only(2, 6.0);

    // (a) s0 -> s2 -> s1: sink s2 is internal. delay(s1) >= dist(s0,s2) +
    // dist(s2,s1) = 3 + 8 = 11 > 6.
    let topo_a = Topology::from_parents(2, &[0, 2, 0]).unwrap();
    let p_a = LubtProblem::new(sinks.clone(), Some(s0), topo_a, bounds.clone()).unwrap();
    assert!(matches!(
        EbfSolver::new().solve(&p_a),
        Err(LubtError::Infeasible)
    ));

    // (b) a Steiner point above both sinks: feasible.
    let topo_b = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
    let p_b = LubtProblem::new(sinks.clone(), Some(s0), topo_b, bounds.clone()).unwrap();
    let (lengths, _) = EbfSolver::new().solve(&p_b).unwrap();
    let pos = embed_tree(
        p_b.topology(),
        p_b.sinks(),
        p_b.source(),
        &lengths,
        PlacementPolicy::ClosestToParent,
    )
    .unwrap();
    verify_raw(&p_b, &lengths, &pos).unwrap();

    // (c) both sinks directly under the source (after degree splitting this
    // is the star): also feasible.
    let topo_c = Topology::from_parents(2, &[0, 0, 0]).unwrap();
    let p_c = LubtProblem::new(sinks, Some(s0), topo_c, bounds).unwrap();
    assert!(EbfSolver::new().solve(&p_c).is_ok());
}

/// §4.5-style worked example: five sinks, one window `[4, 6] x` scale,
/// source-free full binary topology. The optimal cost must satisfy the
/// formulation's constraints when re-measured from the embedding.
#[test]
fn section_4_5_five_point_example() {
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(8.0, 2.0),
        Point::new(3.0, 6.0),
        Point::new(5.0, 6.0),
        Point::new(1.0, 4.0),
    ];
    // Build a full binary topology (every sink a leaf), source free.
    let topo = lubt::topology::nearest_neighbor_topology(&sinks, lubt::topology::SourceMode::Free);
    assert!(topo.all_sinks_are_leaves());
    let radius = lubt::delay::skew::radius_free(&sinks);
    // The paper's [4, 6] on a radius-6 instance ~ [0.67, 1.0] normalized.
    let problem = LubtProblem::new(
        sinks,
        None,
        topo,
        DelayBounds::uniform(5, 0.67 * radius, 1.0 * radius),
    )
    .unwrap();
    let (lengths, report) = EbfSolver::new().solve(&problem).unwrap();
    assert_eq!(report.total_pairs, 10); // C(5,2), as in the paper's listing
    let pos = embed_tree(
        problem.topology(),
        problem.sinks(),
        None,
        &lengths,
        PlacementPolicy::Center,
    )
    .unwrap();
    verify_raw(&problem, &lengths, &pos).unwrap();
}

/// §4.7: the EBF guarantee is a Manhattan-metric property. For the unit
/// equilateral triangle, `e1 = e2 = e3 = 1/2` satisfies the *Euclidean*
/// Steiner constraints but admits no embedding; under the Manhattan metric
/// those lengths do not even satisfy the constraints, and the embedder
/// rejects them.
#[test]
fn section_4_7_euclidean_counterexample() {
    let topo = Topology::from_parents(3, &[0, 0, 0, 0]).unwrap();
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.5, 0.866_025_403_784_438_6),
    ];
    // Euclidean pairwise distances are all 1, so e_i = 1/2 meets the
    // Euclidean version of Equation 6...
    for i in 0..3 {
        for j in i + 1..3 {
            assert!((sinks[i].dist_euclid(sinks[j]) - 1.0).abs() < 1e-12);
        }
    }
    // ...but there is no feasible root position (Manhattan *or* Euclidean).
    let lengths = vec![0.0, 0.5, 0.5, 0.5];
    assert!(matches!(
        embed_tree(&topo, &sinks, None, &lengths, PlacementPolicy::Center),
        Err(LubtError::Embedding { .. })
    ));

    // The EBF itself, run on the true Manhattan distances, produces
    // embeddable lengths — Theorem 4.1 at work.
    let problem =
        LubtProblem::new(sinks.clone(), None, topo.clone(), DelayBounds::unbounded(3)).unwrap();
    let (lengths, _) = EbfSolver::new().solve(&problem).unwrap();
    assert!(embed_tree(&topo, &sinks, None, &lengths, PlacementPolicy::Center).is_ok());
}

/// §3 / Figure 2: a degree-4 Steiner point is split with a zero-length
/// edge, and the split problem solves to the same optimal cost.
#[test]
fn figure_2_degree_four_split_preserves_optimum() {
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(5.0, 8.0),
    ];
    let s0 = Point::new(5.0, 3.0);
    // Star topology: one Steiner point with three children (degree 4).
    let star = Topology::from_parents(3, &[0, 4, 4, 4, 0]).unwrap();
    let split =
        lubt::topology::split_degree_four(&star, lubt::topology::SourceMode::Given).unwrap();
    assert!(split.topology.is_binary(lubt::topology::SourceMode::Given));

    let bounds = DelayBounds::upper_only(3, 20.0);
    let p_star = LubtProblem::new(sinks.clone(), Some(s0), star, bounds.clone()).unwrap();
    let p_split = LubtProblem::new(sinks, Some(s0), split.topology, bounds)
        .unwrap()
        .with_zero_edges(split.zero_edges)
        .unwrap();

    let (l1, _) = EbfSolver::new().solve(&p_star).unwrap();
    let (l2, _) = EbfSolver::new().solve(&p_split).unwrap();
    let c1 = lubt::delay::linear::tree_cost(&l1);
    let c2 = lubt::delay::linear::tree_cost(&l2);
    assert!(
        (c1 - c2).abs() < 1e-6 * (1.0 + c1),
        "star {c1} vs split {c2}"
    );
}

/// Figure 1 again, through the exact DP oracle: the same infeasible /
/// feasible split, with the feasible topologies landing on the simplex
/// backend's optimal cost.
#[test]
fn figure_1_topology_feasibility_under_the_exact_oracle() {
    let s0 = Point::new(0.0, 0.0);
    let sinks = vec![Point::new(0.0, 5.0), Point::new(3.0, 0.0)];
    let bounds = DelayBounds::upper_only(2, 6.0);
    let dp = EbfSolver::new().with_backend(SolverBackend::Dp);

    // (a) sink s2 internal: exactly infeasible.
    let topo_a = Topology::from_parents(2, &[0, 2, 0]).unwrap();
    let p_a = LubtProblem::new(sinks.clone(), Some(s0), topo_a, bounds.clone()).unwrap();
    assert!(matches!(dp.solve(&p_a), Err(LubtError::Infeasible)));

    // (b) and (c): feasible, and at the same optimal cost the simplex
    // backend pins.
    for parents in [&[0usize, 3, 3, 0][..], &[0, 0, 0][..]] {
        let topo = Topology::from_parents(2, parents).unwrap();
        let p = LubtProblem::new(sinks.clone(), Some(s0), topo, bounds.clone()).unwrap();
        let (dp_lengths, _) = dp.solve(&p).unwrap();
        let (lp_lengths, _) = EbfSolver::new().solve(&p).unwrap();
        let (dp_cost, lp_cost) = (
            lubt::delay::linear::tree_cost(&dp_lengths),
            lubt::delay::linear::tree_cost(&lp_lengths),
        );
        assert!(
            (dp_cost - lp_cost).abs() < 1e-6 * (1.0 + lp_cost),
            "{parents:?}: dp {dp_cost} vs simplex {lp_cost}"
        );
    }
}

/// The §4.5 worked example and the Figure-2 degree split, pinned under the
/// DP backend: same pair count, same optimal cost, embeddable lengths.
#[test]
fn section_4_5_and_figure_2_pin_the_dp_backend() {
    // §4.5 five-point example.
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(8.0, 2.0),
        Point::new(3.0, 6.0),
        Point::new(5.0, 6.0),
        Point::new(1.0, 4.0),
    ];
    let topo = lubt::topology::nearest_neighbor_topology(&sinks, lubt::topology::SourceMode::Free);
    let radius = lubt::delay::skew::radius_free(&sinks);
    let problem = LubtProblem::new(
        sinks,
        None,
        topo,
        DelayBounds::uniform(5, 0.67 * radius, 1.0 * radius),
    )
    .unwrap();
    let dp = EbfSolver::new().with_backend(SolverBackend::Dp);
    let (lengths, report) = dp.solve(&problem).unwrap();
    assert_eq!(report.total_pairs, 10);
    let (lp_lengths, _) = EbfSolver::new().solve(&problem).unwrap();
    let (dp_cost, lp_cost) = (
        lubt::delay::linear::tree_cost(&lengths),
        lubt::delay::linear::tree_cost(&lp_lengths),
    );
    assert!(
        (dp_cost - lp_cost).abs() < 1e-6 * (1.0 + lp_cost),
        "§4.5: dp {dp_cost} vs simplex {lp_cost}"
    );
    let pos = embed_tree(
        problem.topology(),
        problem.sinks(),
        None,
        &lengths,
        PlacementPolicy::Center,
    )
    .unwrap();
    verify_raw(&problem, &lengths, &pos).unwrap();

    // Figure 2: the zero-edge degree-4 split preserves the DP optimum too.
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(5.0, 8.0),
    ];
    let s0 = Point::new(5.0, 3.0);
    let star = Topology::from_parents(3, &[0, 4, 4, 4, 0]).unwrap();
    let split =
        lubt::topology::split_degree_four(&star, lubt::topology::SourceMode::Given).unwrap();
    let bounds = DelayBounds::upper_only(3, 20.0);
    let p_star = LubtProblem::new(sinks.clone(), Some(s0), star, bounds.clone()).unwrap();
    let p_split = LubtProblem::new(sinks, Some(s0), split.topology, bounds)
        .unwrap()
        .with_zero_edges(split.zero_edges)
        .unwrap();
    let (l1, _) = dp.solve(&p_star).unwrap();
    let (l2, _) = dp.solve(&p_split).unwrap();
    let c1 = lubt::delay::linear::tree_cost(&l1);
    let c2 = lubt::delay::linear::tree_cost(&l2);
    assert!(
        (c1 - c2).abs() < 1e-6 * (1.0 + c1),
        "dp star {c1} vs dp split {c2}"
    );
}
