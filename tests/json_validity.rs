//! Every JSON document the workspace can emit must be strictly valid
//! RFC 8259 — no `NaN`/`Infinity` bare tokens, no trailing commas — across
//! feasible, infeasible and lazy-truncated solves. Parsed with the strict
//! validator of `lubt::obs::json`, the same one CI runs against the CLI
//! output.

use lubt::core::{solution_to_json, BatchSolver, DelayBounds, EbfSolver, LubtBuilder, SteinerMode};
use lubt::geom::Point;
use lubt::obs::json::validate;

fn square() -> Vec<Point> {
    vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(0.0, 10.0),
        Point::new(10.0, 10.0),
    ]
}

/// Strict parse plus a belt-and-braces scan for the bare tokens a naive
/// `format!("{x}")` of a non-finite f64 would leak.
fn assert_strict(doc: &str, what: &str) {
    validate(doc).unwrap_or_else(|e| panic!("{what} is not strict JSON: {e}\n{doc}"));
    for token in ["NaN", "Infinity", "inf,", "inf}"] {
        assert!(!doc.contains(token), "{what} leaks {token:?}:\n{doc}");
    }
}

#[test]
fn feasible_solution_and_trace_are_strict_json() {
    let builder = LubtBuilder::new(square())
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 12.0, 15.0));
    let solution = builder.solve().unwrap();
    assert_strict(&solution_to_json(&solution), "feasible solution JSON");

    let (result, trace) = builder.solve_traced();
    assert!(result.is_ok());
    assert_strict(&trace.to_json(), "feasible solve trace");
    assert!(trace.counter("simplex.solves") >= 1);
}

#[test]
fn infeasible_solve_still_yields_a_strict_trace() {
    // Upper bound below the source-sink distance: Equation 3 certificate.
    let builder = LubtBuilder::new(square())
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 0.0, 2.0));
    let (result, trace) = builder.solve_traced();
    assert!(result.is_err(), "window is infeasible by construction");
    assert_strict(&trace.to_json(), "infeasible solve trace");
}

#[test]
fn lazy_truncated_solution_and_trace_are_strict_json() {
    let problem = LubtBuilder::new(square())
        .bounds(DelayBounds::uniform(4, 10.0, 14.0))
        .build()
        .unwrap();
    let truncating = EbfSolver::new().with_steiner_mode(SteinerMode::Lazy {
        max_rounds: 1,
        batch: 1,
    });
    let (results, trace) = BatchSolver::new()
        .with_solver(truncating)
        .with_threads(1)
        .solve_all_traced(std::slice::from_ref(&problem));
    let solution = results[0].as_ref().unwrap();
    assert!(solution.report().truncated, "safety net must have fired");
    assert_strict(&solution_to_json(solution), "truncated solution JSON");
    assert_strict(&trace.to_json(), "truncated batch trace");
    assert_eq!(trace.counter("ebf.truncations"), 1);
}

#[test]
fn lint_diagnostics_are_strict_json() {
    let problem = LubtBuilder::new(square())
        .bounds(DelayBounds::uniform(4, 0.0, 2.0))
        .build()
        .unwrap();
    let diags = problem.lint();
    assert!(
        !diags.is_empty(),
        "bounds are unreachable, lint must object"
    );
    assert_strict(
        &lubt::lint::diagnostics_to_json(&diags),
        "lint diagnostics JSON",
    );
}
