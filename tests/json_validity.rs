//! Every JSON document the workspace can emit must be strictly valid
//! RFC 8259 — no `NaN`/`Infinity` bare tokens, no trailing commas — across
//! feasible, infeasible and lazy-truncated solves. Parsed with the strict
//! validator of `lubt::obs::json`, the same one CI runs against the CLI
//! output.

use lubt::core::{solution_to_json, BatchSolver, DelayBounds, EbfSolver, LubtBuilder, SteinerMode};
use lubt::geom::Point;
use lubt::obs::json::validate;

fn square() -> Vec<Point> {
    vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(0.0, 10.0),
        Point::new(10.0, 10.0),
    ]
}

/// Strict parse plus a belt-and-braces scan for the bare tokens a naive
/// `format!("{x}")` of a non-finite f64 would leak.
fn assert_strict(doc: &str, what: &str) {
    validate(doc).unwrap_or_else(|e| panic!("{what} is not strict JSON: {e}\n{doc}"));
    for token in ["NaN", "Infinity", "inf,", "inf}"] {
        assert!(!doc.contains(token), "{what} leaks {token:?}:\n{doc}");
    }
}

#[test]
fn feasible_solution_and_trace_are_strict_json() {
    let builder = LubtBuilder::new(square())
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 12.0, 15.0));
    let solution = builder.solve().unwrap();
    assert_strict(&solution_to_json(&solution), "feasible solution JSON");

    let (result, trace) = builder.solve_traced();
    assert!(result.is_ok());
    assert_strict(&trace.to_json(), "feasible solve trace");
    assert!(trace.counter("simplex.solves") >= 1);
}

#[test]
fn infeasible_solve_still_yields_a_strict_trace() {
    // Upper bound below the source-sink distance: Equation 3 certificate.
    let builder = LubtBuilder::new(square())
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 0.0, 2.0));
    let (result, trace) = builder.solve_traced();
    assert!(result.is_err(), "window is infeasible by construction");
    assert_strict(&trace.to_json(), "infeasible solve trace");
}

#[test]
fn lazy_truncated_solution_and_trace_are_strict_json() {
    let problem = LubtBuilder::new(square())
        .bounds(DelayBounds::uniform(4, 10.0, 14.0))
        .build()
        .unwrap();
    let truncating = EbfSolver::new().with_steiner_mode(SteinerMode::Lazy {
        max_rounds: 1,
        batch: 1,
    });
    let (results, trace) = BatchSolver::new()
        .with_solver(truncating)
        .with_threads(1)
        .solve_all_traced(std::slice::from_ref(&problem));
    let solution = results[0].as_ref().unwrap();
    assert!(solution.report().truncated, "safety net must have fired");
    assert_strict(&solution_to_json(solution), "truncated solution JSON");
    assert_strict(&trace.to_json(), "truncated batch trace");
    assert_eq!(trace.counter("ebf.truncations"), 1);
}

#[test]
fn lint_diagnostics_are_strict_json() {
    let problem = LubtBuilder::new(square())
        .bounds(DelayBounds::uniform(4, 0.0, 2.0))
        .build()
        .unwrap();
    let diags = problem.lint();
    assert!(
        !diags.is_empty(),
        "bounds are unreachable, lint must object"
    );
    assert_strict(
        &lubt::lint::diagnostics_to_json(&diags),
        "lint diagnostics JSON",
    );
}

#[test]
fn audit_findings_render_as_strict_json() {
    // A corrupted embedding: sink 1 sits one unit from the root but claims
    // a [5, 6] window, so the exact tree audit must object — and its
    // diagnostics must serialize strictly like every other lint finding.
    let parents = vec![0, 0];
    let lengths = vec![0.0, 1.0];
    let positions = vec![(0.0, 0.0), (1.0, 0.0)];
    let sinks = vec![(1usize, 5.0, 6.0)];
    let findings = lubt::audit::audit_tree(&parents, &lengths, &positions, &sinks, 0);
    assert!(!findings.is_empty(), "the bad window must be flagged");
    assert_strict(
        &lubt::lint::diagnostics_to_json(&findings),
        "audit findings JSON",
    );
}

/// A Prometheus text-exposition sample line must be `<name> <value>` with
/// a `lubt_`-prefixed metric name and a parseable (or canonical
/// non-finite) value; everything else must be a `# HELP` / `# TYPE`
/// comment.
fn assert_prometheus(exposition: &str, what: &str) {
    assert!(!exposition.is_empty(), "{what} is empty");
    for line in exposition.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{what}: malformed sample line {line:?}"));
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.starts_with("lubt_")
                && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "{what}: bad metric name in {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
            "{what}: bad sample value in {line:?}"
        );
    }
}

#[test]
fn bench_document_report_and_prometheus_expositions_are_strict() {
    let run = lubt_bench::suite::run(&lubt_bench::suite::SuiteConfig {
        label: "json-validity".to_string(),
        threads: 2,
        sizes: vec![5],
        interior_cap: 5,
        full: false,
        // Exercise the audit_overhead group too: its wall-clock keys land
        // in the exempt half and must keep the document strict.
        audit: true,
        // And the serve group: live daemon latency/throughput numbers are
        // exempt wall clock and must also keep the document strict.
        serve: true,
        // And the profile_overhead group: traced-vs-untraced wall keys are
        // exempt and the traced rows must not perturb the document.
        profile: true,
        // The par_intra scaling curve is pinned at 512 sinks — far too slow
        // for this strictness check, and its wall keys are covered by the
        // suite's own one-sided report-gate test.
        par_intra: false,
    })
    .expect("pinned suite solves");
    let doc = run.to_json();
    assert_strict(&doc, "bench document");
    assert!(doc.contains("\"schema\": \"lubt-bench-v1\""));
    assert_strict(&run.aggregate.to_json(), "aggregate trace JSON");

    let report =
        lubt_bench::report::compare(&doc, &doc, &lubt_bench::report::ReportOptions::default())
            .expect("a document compares to itself");
    assert!(!report.failed());
    assert_strict(&report.to_json(), "report JSON");

    assert_prometheus(&run.aggregate.to_prometheus(), "aggregate exposition");
}

#[test]
fn solve_trace_prometheus_exposition_is_well_formed() {
    let builder = LubtBuilder::new(square())
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 12.0, 15.0));
    let (result, trace) = builder.solve_traced();
    assert!(result.is_ok());
    let exposition = trace.to_prometheus();
    assert_prometheus(&exposition, "solve trace exposition");
    assert!(exposition.contains("lubt_simplex_pivots_total"));
    assert!(exposition.contains("lubt_time_lp_seconds_total"));
}
