//! Scale gate for the revised backend: the 512-sink clustered bench
//! instance once drove the basis singular through noise-level ratio-test
//! pivots (fixed by explicit basis membership tracking plus the two-pass
//! ratio tests in `lubt-lp::revised`). Too slow for the default suite;
//! run with `cargo test --release --test repro_c512 -- --ignored`.

use lubt::core::{DelayBounds, EbfSolver, LubtProblem, SolverBackend};
use lubt::data::synthetic;
use lubt::topology::{nearest_neighbor_topology, SourceMode};

#[test]
#[ignore]
fn c512_revised() {
    let inst = synthetic::clustered("c512", 512, 1000.0, 3, 0xC1A0 + 512);
    let radius = inst.radius();
    let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
    let problem = LubtProblem::new(
        inst.sinks.clone(),
        inst.source,
        topo,
        DelayBounds::uniform(512, 0.9 * radius, 1.4 * radius),
    )
    .unwrap();
    let result = EbfSolver::new()
        .with_backend(SolverBackend::Revised)
        .solve(&problem);
    match result {
        Ok((_, report)) => println!(
            "ok: rounds {} iters {}",
            report.separation_rounds, report.lp_iterations
        ),
        Err(e) => panic!("revised failed: {e}"),
    }
}
