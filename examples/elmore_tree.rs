//! The §7 Elmore-delay extension: bounded RC delays via sequential linear
//! programming.
//!
//! Solves a small clock net under the Elmore model twice — once with only
//! an upper bound (convex, reliable) and once with a lower bound that
//! forces deliberate wire elongation (the non-convex case the paper
//! delegates to a general NLP method).
//!
//! ```text
//! cargo run --release --example elmore_tree
//! ```

use lubt::core::{DelayBounds, ElmoreEbf, LubtBuilder, LubtError};
use lubt::delay::elmore::node_delays;
use lubt::delay::ElmoreParams;
use lubt::geom::Point;

fn main() -> Result<(), LubtError> {
    let sinks = vec![
        Point::new(0.0, 0.0),
        Point::new(20.0, 0.0),
        Point::new(0.0, 16.0),
        Point::new(20.0, 16.0),
        Point::new(10.0, 30.0),
    ];
    let source = Point::new(10.0, 8.0);
    let m = sinks.len();
    let params = ElmoreParams::uniform(0.05, 0.2, 1.0, m);

    // Probe: Elmore delays of the minimum-wirelength tree set the scale.
    let relaxed = LubtBuilder::new(sinks.clone())
        .source(source)
        .bounds(DelayBounds::unbounded(m))
        .build()?;
    let (lengths, _) = lubt::core::EbfSolver::new().solve(&relaxed)?;
    let d = node_delays(relaxed.topology(), &lengths, &params);
    let dmax = relaxed
        .topology()
        .sinks()
        .map(|s| d[s.index()])
        .fold(0.0f64, f64::max);
    println!(
        "min-wirelength tree: cost {:.1}, max Elmore delay {dmax:.2}",
        lubt::delay::linear::tree_cost(&lengths)
    );

    // Convex case: cap the Elmore delay 20% above the probe.
    let capped = LubtBuilder::new(sinks.clone())
        .source(source)
        .bounds(DelayBounds::upper_only(m, 1.2 * dmax))
        .build()?;
    let solver = ElmoreEbf::new(params.clone());
    let (lengths, report) = solver.solve(&capped)?;
    println!(
        "\nupper-bounded   : cost {:.1}, residual violation {:.2e}, {} SLP iterations",
        report.cost, report.violation, report.iterations
    );
    let d = node_delays(capped.topology(), &lengths, &params);
    for s in capped.topology().sinks() {
        println!("  sink {s}: Elmore delay {:.2}", d[s.index()]);
    }

    // Non-convex case: every sink must be *at least* 1.5x the probe delay
    // (deliberate slow-down, e.g. short-path fixing without buffers, §1).
    let windowed = LubtBuilder::new(sinks)
        .source(source)
        .bounds(DelayBounds::uniform(m, 1.5 * dmax, 3.0 * dmax))
        .build()?;
    let (lengths, report) = solver.solve(&windowed)?;
    println!(
        "\nlower+upper     : cost {:.1}, residual violation {:.2e}, {} SLP iterations",
        report.cost, report.violation, report.iterations
    );
    let d = node_delays(windowed.topology(), &lengths, &params);
    for s in windowed.topology().sinks() {
        println!("  sink {s}: Elmore delay {:.2}", d[s.index()]);
    }
    println!("\nThe lower bound forces wire elongation in place of delay buffers.");
    Ok(())
}
