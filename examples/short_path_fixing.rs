//! Short-path (hold-time) fixing by wire elongation — the §1 motivation:
//! "instead of inserting a delay buffer in the short path, we can adjust
//! wire length until the delay is larger than some lower bound".
//!
//! A data net has four receivers; two of them sit very close to the driver
//! and would violate hold time (their delay must be at least `l_hold`).
//! This example compares:
//!
//! * the **buffer-insertion** fix: keep the minimum-wirelength tree and pay
//!   one delay buffer per violating receiver (a fixed area/power cost per
//!   buffer, modeled abstractly);
//! * the **LUBT** fix: one LP solve with a lower bound — the wire snakes
//!   exactly as much as needed, no active devices.
//!
//! ```text
//! cargo run --release --example short_path_fixing
//! ```

use lubt::core::{DelayBounds, LubtBuilder, LubtError};
use lubt::geom::Point;

fn main() -> Result<(), LubtError> {
    let sinks = vec![
        Point::new(2.0, 1.0),   // hot: too close to the driver
        Point::new(1.0, -2.0),  // hot: too close to the driver
        Point::new(40.0, 10.0), // far receiver
        Point::new(35.0, -20.0),
    ];
    let source = Point::new(0.0, 0.0);
    let m = sinks.len();
    let l_hold = 12.0; // minimum tolerable delay (hold-time constraint)

    // Reference: minimum-wirelength tree, no delay control.
    let free = LubtBuilder::new(sinks.clone())
        .source(source)
        .bounds(DelayBounds::unbounded(m))
        .solve()?;
    let delays = free.sink_delays();
    let violators: Vec<usize> = delays
        .iter()
        .enumerate()
        .filter(|&(_, d)| *d < l_hold)
        .map(|(i, _)| i)
        .collect();
    println!("min-wirelength tree: cost {:.1}", free.cost());
    println!("sink delays         : {delays:?}");
    println!(
        "hold violations (< {l_hold}): sinks {:?}",
        violators.iter().map(|i| i + 1).collect::<Vec<_>>()
    );

    // Fix 1: delay buffers. Each buffer contributes enough delay but costs
    // area/power; model it as an abstract per-buffer cost for comparison.
    let buffer_cost_in_wire_units = 8.0;
    let buffered_cost = free.cost() + buffer_cost_in_wire_units * violators.len() as f64;
    println!(
        "\nbuffer fix          : {} buffers -> equivalent cost {:.1}",
        violators.len(),
        buffered_cost
    );

    // Fix 2: LUBT with a lower bound — wire elongation only where needed.
    let fixed = LubtBuilder::new(sinks)
        .source(source)
        .bounds(DelayBounds::uniform(m, l_hold, 100.0))
        .solve()?;
    fixed.verify()?;
    println!(
        "LUBT elongation fix : cost {:.1} (extra wire {:.1})",
        fixed.cost(),
        fixed.cost() - free.cost()
    );
    println!("fixed sink delays   : {:?}", fixed.sink_delays());

    let saving = buffered_cost - fixed.cost();
    println!(
        "\nwire elongation {} the buffer fix by {:.1} equivalent units",
        if saving >= 0.0 { "beats" } else { "loses to" },
        saving.abs()
    );
    println!("(and uses no active devices: no extra power rails, no process variation)");
    Ok(())
}
