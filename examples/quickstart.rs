//! Quickstart: solve a small LUBT instance end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a routing tree over nine sinks whose source-to-sink delays all
//! fall in a prescribed `[l, u]` window, prints the optimal edge lengths,
//! the realized delays and the physical wire routes.

use lubt::core::{DelayBounds, LubtBuilder, LubtError};
use lubt::geom::Point;

fn main() -> Result<(), LubtError> {
    // A 3x3 grid of sinks, source at the lower-left corner.
    let sinks: Vec<Point> = (0..9)
        .map(|i| Point::new(f64::from(i % 3) * 10.0, f64::from(i / 3) * 10.0))
        .collect();
    let source = Point::new(-5.0, -5.0);

    // Radius = distance to the farthest sink; bounds are chosen relative
    // to it, as in the paper's experiments.
    let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
    println!("radius = {radius}");

    let solution = LubtBuilder::new(sinks)
        .source(source)
        .bounds(DelayBounds::uniform(9, 1.1 * radius, 1.3 * radius))
        .solve()?;
    solution.verify()?;

    println!("tree cost          = {:.2}", solution.cost());
    println!("routed wirelength  = {:.2}", solution.routed_wirelength());
    let (short, long) = solution.delay_range();
    println!(
        "delay window       = [{:.2}, {:.2}]  (required [{:.2}, {:.2}])",
        short,
        long,
        1.1 * radius,
        1.3 * radius
    );
    println!("skew               = {:.4}", solution.skew());
    println!(
        "LP: {} pivots, {} separation rounds, {}/{} Steiner rows used",
        solution.report().lp_iterations,
        solution.report().separation_rounds,
        solution.report().steiner_rows,
        solution.report().total_pairs
    );

    println!("\nedge lengths (node: length):");
    for (i, len) in solution.edge_lengths().iter().enumerate().skip(1) {
        println!("  e{i}: {len:.2}");
    }

    println!("\nwire routes (parent -> child polylines):");
    for route in solution.routes() {
        let pts: Vec<String> = route
            .iter()
            .map(|p| format!("({:.1},{:.1})", p.x, p.y))
            .collect();
        println!("  {}", pts.join(" -> "));
    }
    Ok(())
}
