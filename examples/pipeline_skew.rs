//! Per-sink delay windows — the pipeline motivation from the paper's §1.
//!
//! A pipelined design whose stages have different combinational delays can
//! give each stage's flip-flops a *different* clock-arrival window. This
//! example builds a two-stage block: stage A (left half) tolerates early
//! clocks, stage B (right half) needs late ones. A uniform window must
//! satisfy the intersection of both requirements; per-sink windows let the
//! tree save wire.
//!
//! ```text
//! cargo run --release --example pipeline_skew
//! ```

use lubt::core::{DelayBounds, LubtBuilder, LubtError};
use lubt::geom::Point;

fn main() -> Result<(), LubtError> {
    // Stage A registers on the left, stage B registers on the right.
    let mut sinks = Vec::new();
    for i in 0..6 {
        sinks.push(Point::new(f64::from(i % 2) * 8.0, f64::from(i / 2) * 10.0));
    }
    for i in 0..6 {
        sinks.push(Point::new(
            60.0 + f64::from(i % 2) * 8.0,
            f64::from(i / 2) * 10.0,
        ));
    }
    let source = Point::new(35.0, -10.0);
    let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);

    // Stage A: clock may arrive any time in [1.0, 1.2] x radius.
    // Stage B: its longer logic path wants the clock in [1.2, 1.4] x radius.
    let mut pairs = Vec::new();
    for _ in 0..6 {
        pairs.push((1.0 * radius, 1.2 * radius));
    }
    for _ in 0..6 {
        pairs.push((1.2 * radius, 1.4 * radius));
    }

    let per_sink = LubtBuilder::new(sinks.clone())
        .source(source)
        .bounds(DelayBounds::from_pairs(pairs)?)
        .solve()?;
    per_sink.verify()?;

    // The uniform alternative must put *every* sink in the intersection
    // [1.2, 1.2] — i.e. a zero-skew tree at 1.2 x radius.
    let uniform = LubtBuilder::new(sinks)
        .source(source)
        .bounds(DelayBounds::zero_skew(12, 1.2 * radius))
        .solve()?;
    uniform.verify()?;

    println!("radius                      = {radius:.1}");
    println!("per-stage windows tree cost = {:.1}", per_sink.cost());
    println!("uniform (zero-skew) cost    = {:.1}", uniform.cost());
    println!(
        "saving from stage-aware windows = {:.1}%",
        100.0 * (uniform.cost() - per_sink.cost()) / uniform.cost()
    );

    let delays = per_sink.sink_delays();
    println!(
        "\nstage A arrivals: {:?}",
        &delays[..6]
            .iter()
            .map(|d| (d / radius * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "stage B arrivals: {:?}",
        &delays[6..]
            .iter()
            .map(|d| (d / radius * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
