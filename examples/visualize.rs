//! Writes side-by-side SVGs of the three constructions on the same net:
//! exact zero-skew DME, the bounded-skew baseline, and LUBT on the
//! baseline's window — open the files in any browser to compare the
//! geometry (snaked wires are drawn with their real elongation).
//!
//! ```text
//! cargo run --release --example visualize [out_dir]
//! ```

use lubt::baselines::{bounded_skew_tree, zero_skew_tree};
use lubt::core::{render_svg, render_tree_svg, DelayBounds, LubtBuilder, SvgOptions};
use lubt::data::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let inst = synthetic::prim1().subsample(40);
    let src = inst.source.expect("synthetic instances pin the source");
    let radius = inst.radius();
    let opts = SvgOptions::default();

    // 1. Zero-skew DME.
    let zst = zero_skew_tree(&inst.sinks, Some(src), None, None)?;
    let path = format!("{out_dir}/tree_zero_skew.svg");
    std::fs::write(
        &path,
        render_tree_svg(&zst.topology, &zst.positions, &zst.edge_lengths, &opts),
    )?;
    println!(
        "{path}: zero-skew DME, cost {:.0}, skew {:.2e}",
        zst.cost(),
        zst.skew()
    );

    // 2. Bounded-skew baseline at 0.5 x radius.
    let bst = bounded_skew_tree(&inst.sinks, Some(src), 0.5 * radius)?;
    let path = format!("{out_dir}/tree_bounded_skew.svg");
    std::fs::write(
        &path,
        render_tree_svg(&bst.topology, &bst.positions, &bst.edge_lengths, &opts),
    )?;
    println!(
        "{path}: bounded-skew baseline, cost {:.0}, skew {:.0}",
        bst.cost(),
        bst.skew()
    );

    // 3. LUBT on the baseline's own topology and window.
    let (short, long) = bst.delay_range();
    let sol = LubtBuilder::new(inst.sinks.clone())
        .source(src)
        .topology(bst.topology.clone())
        .bounds(DelayBounds::uniform(inst.sinks.len(), short, long))
        .solve()?;
    sol.verify()?;
    let path = format!("{out_dir}/tree_lubt.svg");
    std::fs::write(&path, render_svg(&sol))?;
    println!(
        "{path}: LUBT, cost {:.0} ({:.1}% below baseline), window [{:.2}R, {:.2}R]",
        sol.cost(),
        100.0 * (bst.cost() - sol.cost()) / bst.cost(),
        short / radius,
        long / radius
    );
    Ok(())
}
