//! Upper-bounded global routing (`l = 0`, finite `u`) — the §4.3 regime
//! that \[9\] cannot produce at all.
//!
//! Sweeps the delay cap `u` and shows the classic cost/performance
//! trade-off between the two extremes the paper names: the shortest-path
//! tree (minimum delay, maximum wire) and the unconstrained Steiner tree
//! (minimum wire, unbounded delay).
//!
//! ```text
//! cargo run --release --example global_routing
//! ```

use lubt::baselines::star_wirelength;
use lubt::core::{DelayBounds, LubtBuilder, LubtError};
use lubt::data::synthetic;

fn main() -> Result<(), LubtError> {
    let inst = synthetic::r1().subsample(28);
    let source = inst.source.expect("synthetic instances pin the source");
    let radius = inst.radius();
    let m = inst.sinks.len();
    println!("instance {} ({m} sinks, radius {radius:.0})", inst.name);
    println!(
        "shortest-path tree (u = radius lower limit): cost {:.0}\n",
        star_wirelength(source, &inst.sinks)
    );

    println!(
        "{:>8}  {:>12}  {:>14}",
        "u / R", "tree cost", "longest delay/R"
    );
    let mut last = f64::INFINITY;
    for cap in [1.0, 1.1, 1.25, 1.5, 2.0, 3.0, f64::INFINITY] {
        let bounds = if cap.is_finite() {
            DelayBounds::upper_only(m, cap * radius)
        } else {
            DelayBounds::unbounded(m)
        };
        let sol = LubtBuilder::new(inst.sinks.clone())
            .source(source)
            .bounds(bounds)
            .solve()?;
        sol.verify()?;
        let (_, longest) = sol.delay_range();
        println!(
            "{:>8}  {:>12.0}  {:>14.3}",
            if cap.is_finite() {
                format!("{cap:.2}")
            } else {
                "inf".into()
            },
            sol.cost(),
            longest / radius
        );
        assert!(
            sol.cost() <= last + 1e-6 * radius,
            "loosening the cap must never cost more"
        );
        last = sol.cost();
    }
    println!("\nTightening the delay cap buys performance with wirelength —");
    println!("at u = radius every sink is on a shortest path.");
    Ok(())
}
