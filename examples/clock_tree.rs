//! Tolerable-skew clock routing (paper §6): sweep the skew budget on a
//! synthetic `prim1` block and compare three constructions:
//!
//! * exact zero-skew DME (the `d = 0` anchor),
//! * the bounded-skew baseline (reference \[9\] stand-in),
//! * LUBT on the baseline's topology and realized delay window.
//!
//! ```text
//! cargo run --release --example clock_tree
//! ```

use lubt::baselines::{bounded_skew_tree, zero_skew_tree};
use lubt::core::{DelayBounds, EbfSolver, LubtProblem};
use lubt::data::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = synthetic::prim1().subsample(32);
    let radius = inst.radius();
    println!(
        "instance {} ({} sinks, radius {radius:.1})",
        inst.name,
        inst.sinks.len()
    );

    let zst = zero_skew_tree(&inst.sinks, inst.source, None, None)?;
    println!(
        "\nzero-skew DME: cost {:.1}, delay {:.1}, skew {:.2e}",
        zst.cost(),
        zst.delay,
        zst.skew()
    );

    println!(
        "\n{:>10}  {:>12}  {:>12}  {:>9}  {:>12}",
        "skew/R", "BST cost", "LUBT cost", "saving", "window/R"
    );
    for skew_norm in [0.0, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let bst = bounded_skew_tree(&inst.sinks, inst.source, skew_norm * radius)?;
        let (short, long) = bst.delay_range();
        let bounds = DelayBounds::uniform(inst.sinks.len(), short, long);
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            inst.source,
            bst.topology.clone(),
            bounds,
        )?;
        let (lengths, _) = EbfSolver::new().solve(&problem)?;
        let lubt_cost = lubt::delay::linear::tree_cost(&lengths);
        println!(
            "{:>10.2}  {:>12.1}  {:>12.1}  {:>8.2}%  [{:.2}, {:.2}]",
            skew_norm,
            bst.cost(),
            lubt_cost,
            100.0 * (bst.cost() - lubt_cost) / bst.cost(),
            short / radius,
            long / radius,
        );
    }
    println!("\nLUBT refines the baseline's own delay window at equal or lower cost,");
    println!("and both costs fall as the tolerable skew grows — the Table 1 story.");
    Ok(())
}
