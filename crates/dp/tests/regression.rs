//! Pinned regressions for the exact oracle, each caught by the three-way
//! differential wall (`crates/lp/tests/differential.rs` and
//! `tests/differential_three_way.rs`).

use lubt_dp::{solve, DpInstance, DpPair, DpSink, DpStatus};

/// The free-edge columns are numbered in depth order, not node order; the
/// objective vector must follow the same permutation. With the original
/// node-ordered objective this instance charged the sink-5 slack onto the
/// costed edge 3 (objective 3.4375) instead of the free leaf edge 5
/// (objective 0): node 5 sits at depth 2 but after node 4 (depth 3) in
/// node order, so their weights swapped columns.
#[test]
fn objective_weights_follow_the_column_permutation() {
    let inst = DpInstance {
        parents: vec![0, 0, 1, 0, 2, 3],
        root: 0,
        weights: vec![0.0, 0.0, 1.25, 0.25, 1.0, 0.0],
        zero_edges: vec![2],
        sinks: vec![
            DpSink {
                node: 4,
                lower: 1.25,
                upper: 5.75,
            },
            DpSink {
                node: 5,
                lower: 13.75,
                upper: 17.0,
            },
        ],
        pairs: vec![DpPair {
            a: 4,
            b: 5,
            dist: 0.75,
        }],
    };
    let sol = solve(&inst, u64::MAX).unwrap();
    assert_eq!(sol.status, DpStatus::Optimal);
    // Both binding paths can ride zero-weight edges (1 and 5), so the
    // exact optimum is free.
    assert_eq!(sol.objective, 0.0);
    assert_eq!(sol.lengths[5], 13.75);
    assert_eq!(sol.lengths[3], 0.0);
    // The zero edge stays exactly zero.
    assert_eq!(sol.lengths[2], 0.0);
}
