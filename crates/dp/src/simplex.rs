//! Stage 3: a fraction-free exact rational dual simplex.
//!
//! The reduced system stage 2 hands over is `min c^T x` subject to
//! `A x <= b`, `x >= 0`, with **integer** `A`, `b`, `c` and `c >= 0`
//! (non-negative objective weights, scaled onto a common power-of-two
//! denominator). The all-slack basis is therefore dual feasible and the
//! dual simplex runs with no phase 1 and no artificial variables:
//! it either reaches `b >= 0` (optimal) or finds a row with a negative
//! right-hand side and no negative entry (exactly infeasible).
//!
//! Arithmetic is integer-pivoting (Bareiss/Edmonds style): the tableau
//! `T` is kept as `p * S` where `S` is the true simplex tableau and
//! `p > 0` is the previous pivot value, so every entry stays a (signed)
//! minor-sized integer and every pivot divides **exactly** — no floats,
//! no gcd-reduced fractions, no rounding anywhere. Pivot selection is
//! Bland's rule for the dual simplex (leaving: smallest basis index among
//! negative rows; entering: smallest column among ratio-test winners),
//! which terminates without any cycling guard; a caller-supplied pivot
//! cap bounds the worst case anyway.
//!
//! This solver shares *nothing* with `lubt-lp` — not the model assembly,
//! not the numbering, not the arithmetic, not the pivot rule — which is
//! what makes three-way differential testing against the float backends
//! meaningful.

use std::cmp::Ordering;

use lubt_audit::{BigInt, BigUint};

/// One `<=` row of the integer system: sparse structural coefficients and
/// an integer right-hand side.
pub(crate) struct LeRow {
    /// `(column, coefficient)` pairs; columns below the structural count.
    pub coefs: Vec<(usize, i64)>,
    /// Right-hand side on the shared power-of-two denominator.
    pub rhs: BigInt,
}

/// Outcome of the exact core.
pub(crate) enum CoreOutcome {
    /// Optimal basic solution: structural values are
    /// `numerators[j] / denom`, exactly.
    Optimal {
        /// Per-structural-column numerators (non-negative).
        numerators: Vec<BigInt>,
        /// Shared positive denominator (the final pivot value).
        denom: BigUint,
        /// Pivots performed.
        pivots: u64,
    },
    /// A row certifies `sum(a_j x_j) = b < 0` with every `a_j >= 0`:
    /// exactly infeasible.
    Infeasible {
        /// Pivots performed before the certificate row appeared.
        pivots: u64,
    },
    /// The pivot cap was reached before termination.
    PivotLimit,
}

fn int(v: i64) -> BigInt {
    BigInt::new(v < 0, BigUint::from_u64(v.unsigned_abs()))
}

/// Exact signed division; the fraction-free invariant guarantees the
/// remainder is zero, and the check is kept on in release builds because
/// a silent integrality loss would corrupt every later pivot.
fn exact_div(a: &BigInt, d: &BigInt) -> BigInt {
    if a.is_zero() {
        return BigInt::zero();
    }
    let (q, r) = a.magnitude().div_rem(d.magnitude());
    assert!(r.is_zero(), "fraction-free pivot lost integrality");
    BigInt::new((a.signum() < 0) != (d.signum() < 0), q)
}

/// Solves `min c^T x, A x <= b, x >= 0` exactly. `obj` must be
/// non-negative (dual feasibility of the slack basis); `ncols` is the
/// structural column count.
pub(crate) fn solve_core(
    ncols: usize,
    obj: &[BigInt],
    rows: &[LeRow],
    max_pivots: u64,
) -> CoreOutcome {
    debug_assert_eq!(obj.len(), ncols);
    debug_assert!(obj.iter().all(|c| c.signum() >= 0));
    let m = rows.len();
    let width = ncols + m;
    let mut t: Vec<Vec<BigInt>> = Vec::with_capacity(m);
    let mut b: Vec<BigInt> = Vec::with_capacity(m);
    for (i, row) in rows.iter().enumerate() {
        let mut r = vec![BigInt::zero(); width];
        for &(j, coef) in &row.coefs {
            debug_assert!(j < ncols);
            r[j] = int(coef);
        }
        r[ncols + i] = int(1);
        t.push(r);
        b.push(row.rhs.clone());
    }
    let mut z: Vec<BigInt> = obj
        .iter()
        .cloned()
        .chain(std::iter::repeat_with(BigInt::zero).take(m))
        .collect();
    let mut basis: Vec<usize> = (ncols..width).collect();
    let mut p = int(1);
    let mut pivots = 0u64;

    loop {
        // Leaving row: Bland — smallest basis index among negative rows.
        let mut leave: Option<usize> = None;
        for i in 0..m {
            if b[i].signum() < 0 && leave.is_none_or(|l| basis[i] < basis[l]) {
                leave = Some(i);
            }
        }
        let Some(r) = leave else {
            // Primal feasible and dual feasible throughout: optimal.
            let mut numerators = vec![BigInt::zero(); ncols];
            for i in 0..m {
                if basis[i] < ncols {
                    numerators[basis[i]] = b[i].clone();
                }
            }
            return CoreOutcome::Optimal {
                numerators,
                denom: p.magnitude().clone(),
                pivots,
            };
        };
        if pivots >= max_pivots {
            return CoreOutcome::PivotLimit;
        }
        // Entering column: dual ratio test min z_j / (-T_rj) over
        // T_rj < 0, ties to the smallest column (Bland). Cross-multiplied
        // — everything stays integer.
        let mut enter: Option<usize> = None;
        for j in 0..width {
            if t[r][j].signum() < 0 {
                enter = Some(match enter {
                    None => j,
                    Some(k) => {
                        let lhs = z[j].mul(&t[r][k].neg());
                        let rhs = z[k].mul(&t[r][j].neg());
                        if lhs.cmp_val(&rhs) == Ordering::Less {
                            j
                        } else {
                            k
                        }
                    }
                });
            }
        }
        let Some(c) = enter else {
            // b_r < 0 with a non-negative row: no x >= 0 satisfies it.
            return CoreOutcome::Infeasible { pivots };
        };
        // Negate the leaving row so the pivot value is positive; rows are
        // equalities (slack included), so this is an equivalent system.
        for e in t[r].iter_mut() {
            *e = e.neg();
        }
        b[r] = b[r].neg();
        let piv = t[r][c].clone();
        debug_assert!(piv.signum() > 0);
        // Integer pivot: every row but r maps through
        // `e -> (piv * e - factor * row_r) / p`, which divides exactly.
        let row_r = t[r].clone();
        for i in 0..m {
            if i == r {
                continue;
            }
            let factor = t[i][c].clone();
            for (e, rr) in t[i].iter_mut().zip(&row_r) {
                *e = exact_div(&piv.mul(e).sub(&factor.mul(rr)), &p);
            }
            let num = piv.mul(&b[i]).sub(&factor.mul(&b[r]));
            b[i] = exact_div(&num, &p);
        }
        let zfac = z[c].clone();
        for (e, rr) in z.iter_mut().zip(&row_r) {
            *e = exact_div(&piv.mul(e).sub(&zfac.mul(rr)), &p);
        }
        basis[r] = c;
        p = piv;
        pivots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coefs: &[(usize, i64)], rhs: i64) -> LeRow {
        LeRow {
            coefs: coefs.to_vec(),
            rhs: int(rhs),
        }
    }

    fn value(numerators: &[BigInt], denom: &BigUint, j: usize) -> f64 {
        crate::ratio_to_f64(&numerators[j], denom)
    }

    #[test]
    fn single_bound_pair_pins_the_variable() {
        // min x s.t. x >= 3, x <= 5  ->  x = 3.
        let rows = vec![row(&[(0, -1)], -3), row(&[(0, 1)], 5)];
        match solve_core(1, &[int(1)], &rows, 10_000) {
            CoreOutcome::Optimal {
                numerators, denom, ..
            } => {
                assert_eq!(value(&numerators, &denom, 0), 3.0);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // min x+y+z s.t. x+y >= 1, y+z >= 1, x+z >= 1: the optimum is the
        // half-integral point (1/2, 1/2, 1/2) — the case that breaks any
        // integral-lattice DP and exactly why the rational core exists.
        let rows = vec![
            row(&[(0, -1), (1, -1)], -1),
            row(&[(1, -1), (2, -1)], -1),
            row(&[(0, -1), (2, -1)], -1),
        ];
        match solve_core(3, &[int(1), int(1), int(1)], &rows, 10_000) {
            CoreOutcome::Optimal {
                numerators, denom, ..
            } => {
                let total: f64 = (0..3).map(|j| value(&numerators, &denom, j)).sum();
                assert_eq!(total, 1.5);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn contradictory_bounds_are_infeasible() {
        // x <= 1 and x >= 3.
        let rows = vec![row(&[(0, 1)], 1), row(&[(0, -1)], -3)];
        assert!(matches!(
            solve_core(1, &[int(1)], &rows, 10_000),
            CoreOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn pivot_cap_stops_the_core() {
        let rows = vec![row(&[(0, -1), (1, -1)], -1)];
        assert!(matches!(
            solve_core(2, &[int(1), int(2)], &rows, 0),
            CoreOutcome::PivotLimit
        ));
    }

    #[test]
    fn weighted_objective_prefers_the_cheap_column() {
        // min 3x + y s.t. x + y >= 4: all on y.
        let rows = vec![row(&[(0, -1), (1, -1)], -4)];
        match solve_core(2, &[int(3), int(1)], &rows, 10_000) {
            CoreOutcome::Optimal {
                numerators, denom, ..
            } => {
                assert_eq!(value(&numerators, &denom, 0), 0.0);
                assert_eq!(value(&numerators, &denom, 1), 4.0);
            }
            _ => panic!("expected optimal"),
        }
    }

    #[test]
    fn degenerate_ties_terminate_under_bland() {
        // Many redundant copies of the same binding row force degenerate
        // dual pivots; Bland's rule must still terminate.
        let mut rows = Vec::new();
        for _ in 0..6 {
            rows.push(row(&[(0, -1), (1, -1)], -2));
        }
        rows.push(row(&[(0, 1)], 1));
        match solve_core(2, &[int(1), int(1)], &rows, 10_000) {
            CoreOutcome::Optimal {
                numerators, denom, ..
            } => {
                let total: f64 = (0..2).map(|j| value(&numerators, &denom, j)).sum();
                assert_eq!(total, 2.0);
            }
            _ => panic!("expected optimal"),
        }
    }
}
