//! Stage 1: dynamic programming over per-node feasible delay intervals.
//!
//! Every node `v` of the fixed topology carries an interval `[lo_v, hi_v]`
//! of source-to-`v` pathlengths (delays, under the paper's linear model)
//! that *every* feasible routing tree must realize. The intervals start
//! from the sink windows and the structural facts (`d_root = 0`,
//! `d_v >= 0`) and are tightened to a fixpoint by four sound rules:
//!
//! 1. monotonicity down: `lo_v >= lo_parent(v)`;
//! 2. monotonicity up: `hi_parent(v) <= hi_v`;
//! 3. zero edges: `d_v = d_parent(v)`, so the intervals intersect;
//! 4. §4.4 separation on a pair `(a, b)` with `c = lca(a, b)`:
//!    `d_a + d_b - 2 d_c >= D_ab` yields `lo_a >= D + 2 lo_c - hi_b`
//!    (and symmetrically) and `hi_c <= (hi_a + hi_b - D) / 2`.
//!
//! Each rule only ever combines valid bounds with a constraint every
//! feasible point satisfies, so the tightened intervals remain valid for
//! every feasible point: an **empty interval is an exact infeasibility
//! certificate**, and `lo_v = hi_v` pins `d_v` on the whole feasible set
//! (stage 2 exploits both). The fixpoint may converge only in the limit
//! (the pair rules can contract geometrically), so sweeps are bounded;
//! stopping early just leaves looser — still sound — intervals.
//!
//! All arithmetic is exact dyadic rational ([`lubt_audit::Rational`]):
//! the bounds and distances are `f64` data, and the rules use only `+`,
//! `-`, comparison, and an exact halving.

use std::cmp::Ordering;

use lubt_audit::Rational;

/// One §4.4 separation constraint, preprocessed for propagation:
/// `d_a + d_b - 2 d_lca >= dist`.
pub(crate) struct PairRow {
    /// First sink node.
    pub a: usize,
    /// Second sink node.
    pub b: usize,
    /// Lowest common ancestor of `a` and `b` in the topology.
    pub lca: usize,
    /// Exact Manhattan separation between the two sink positions.
    pub dist: Rational,
}

/// The propagated per-node delay intervals.
pub(crate) struct Intervals {
    /// Exact lower bound on `d_v` (always `>= 0`).
    pub lo: Vec<Rational>,
    /// Exact upper bound on `d_v`; `None` is `+inf`.
    pub hi: Vec<Option<Rational>>,
    /// Sweeps executed before reaching the fixpoint or the bound.
    pub sweeps: u64,
    /// A node whose interval came up empty — an exact infeasibility
    /// certificate for the whole instance.
    pub empty_at: Option<usize>,
}

fn raise(slot: &mut Rational, cand: &Rational, changed: &mut bool) {
    if cand.cmp_val(slot) == Ordering::Greater {
        *slot = cand.clone();
        *changed = true;
    }
}

fn cut(slot: &mut Option<Rational>, cand: &Rational, changed: &mut bool) {
    match slot {
        Some(cur) if cand.cmp_val(cur) != Ordering::Less => {}
        _ => {
            *slot = Some(cand.clone());
            *changed = true;
        }
    }
}

/// Runs the interval DP to a (bounded) fixpoint. `order_down` lists the
/// nodes by increasing depth (root first); `lo`/`hi` arrive seeded with
/// the sink windows and `[0, 0]` at the root.
pub(crate) fn propagate(
    parents: &[usize],
    root: usize,
    order_down: &[usize],
    zero_edges: &[usize],
    pairs: &[PairRow],
    mut lo: Vec<Rational>,
    mut hi: Vec<Option<Rational>>,
) -> Intervals {
    let n = parents.len();
    let half = Rational::from_f64(0.5).expect("0.5 is finite");
    let max_sweeps = 4 * n as u64 + 16;
    let mut sweeps = 0u64;
    let mut changed = true;
    while changed && sweeps < max_sweeps {
        changed = false;
        sweeps += 1;
        // Rule 1: lower bounds flow down the tree.
        for &v in order_down {
            if v == root {
                continue;
            }
            let cand = lo[parents[v]].clone();
            raise(&mut lo[v], &cand, &mut changed);
        }
        // Rule 3: a zero edge makes the two intervals one.
        for &v in zero_edges {
            if v == root {
                continue;
            }
            let p = parents[v];
            let cand = lo[v].clone();
            raise(&mut lo[p], &cand, &mut changed);
            let cand = lo[p].clone();
            raise(&mut lo[v], &cand, &mut changed);
            if let Some(h) = hi[v].clone() {
                cut(&mut hi[p], &h, &mut changed);
            }
            if let Some(h) = hi[p].clone() {
                cut(&mut hi[v], &h, &mut changed);
            }
        }
        // Rule 2: upper bounds flow up the tree.
        for &v in order_down.iter().rev() {
            if v == root {
                continue;
            }
            if let Some(h) = hi[v].clone() {
                cut(&mut hi[parents[v]], &h, &mut changed);
            }
        }
        // Rule 4: separation constraints couple siblings through the lca.
        for pair in pairs {
            let (a, b, c) = (pair.a, pair.b, pair.lca);
            if let Some(hb) = hi[b].clone() {
                let cand = pair.dist.add(&lo[c]).add(&lo[c]).sub(&hb);
                raise(&mut lo[a], &cand, &mut changed);
            }
            if let Some(ha) = hi[a].clone() {
                let cand = pair.dist.add(&lo[c]).add(&lo[c]).sub(&ha);
                raise(&mut lo[b], &cand, &mut changed);
            }
            if let (Some(ha), Some(hb)) = (hi[a].clone(), hi[b].clone()) {
                let cand = ha.add(&hb).sub(&pair.dist).mul(&half);
                cut(&mut hi[c], &cand, &mut changed);
            }
        }
        // An empty interval certifies infeasibility exactly.
        for v in 0..n {
            if let Some(h) = &hi[v] {
                if lo[v].cmp_val(h) == Ordering::Greater {
                    return Intervals {
                        lo,
                        hi,
                        sweeps,
                        empty_at: Some(v),
                    };
                }
            }
        }
    }
    Intervals {
        lo,
        hi,
        sweeps,
        empty_at: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: f64) -> Rational {
        Rational::from_f64(x).unwrap()
    }

    fn seed(n: usize, root: usize) -> (Vec<Rational>, Vec<Option<Rational>>) {
        let lo = vec![Rational::zero(); n];
        let mut hi = vec![None; n];
        hi[root] = Some(Rational::zero());
        (lo, hi)
    }

    #[test]
    fn monotonicity_flows_both_ways() {
        // Chain 0 -> 1 -> 2, sink 2 with window [3, 5]: node 1 inherits
        // the upper bound, and 2 keeps its own lower bound.
        let parents = vec![0, 0, 1];
        let (mut lo, mut hi) = seed(3, 0);
        lo[2] = r(3.0);
        hi[2] = Some(r(5.0));
        let iv = propagate(&parents, 0, &[0, 1, 2], &[], &[], lo, hi);
        assert!(iv.empty_at.is_none());
        assert_eq!(iv.hi[1].as_ref().unwrap().cmp_val(&r(5.0)), Ordering::Equal);
        assert_eq!(iv.lo[2].cmp_val(&r(3.0)), Ordering::Equal);
    }

    #[test]
    fn window_inversion_down_a_chain_is_caught() {
        // Sink 1 needs d >= 5, its child sink 2 allows at most 1: the
        // child's lower bound rises to 5 > 1 — empty interval.
        let parents = vec![0, 0, 1];
        let (mut lo, mut hi) = seed(3, 0);
        lo[1] = r(5.0);
        hi[1] = Some(r(6.0));
        hi[2] = Some(r(1.0));
        let iv = propagate(&parents, 0, &[0, 1, 2], &[], &[], lo, hi);
        assert!(iv.empty_at.is_some());
    }

    #[test]
    fn pair_rule_tightens_through_the_lca() {
        // Star root -> {1, 2}, D_12 = 10, both windows [0, 1]: the pair
        // rule forces lo_1 >= 10 - 1 = 9 > 1. Exact infeasibility.
        let parents = vec![0, 0, 0];
        let (mut lo, mut hi) = seed(3, 0);
        hi[1] = Some(r(1.0));
        hi[2] = Some(r(1.0));
        lo[1] = r(0.0);
        lo[2] = r(0.0);
        let pairs = vec![PairRow {
            a: 1,
            b: 2,
            lca: 0,
            dist: r(10.0),
        }];
        let iv = propagate(&parents, 0, &[0, 1, 2], &[], &pairs, lo, hi);
        assert!(iv.empty_at.is_some());
    }

    #[test]
    fn zero_edge_intersects_intervals() {
        // 0 -> 1 -> 2 with a zero edge into 2 and sink window [2, 3] on
        // node 2: node 1 must share the window exactly.
        let parents = vec![0, 0, 1];
        let (mut lo, mut hi) = seed(3, 0);
        lo[2] = r(2.0);
        hi[2] = Some(r(3.0));
        let iv = propagate(&parents, 0, &[0, 1, 2], &[2], &[], lo, hi);
        assert!(iv.empty_at.is_none());
        assert_eq!(iv.lo[1].cmp_val(&r(2.0)), Ordering::Equal);
        assert_eq!(iv.hi[1].as_ref().unwrap().cmp_val(&r(3.0)), Ordering::Equal);
    }

    #[test]
    fn sweeps_are_bounded_even_without_a_finite_fixpoint() {
        // Two sinks under the root with a pair constraint and staggered
        // windows contract geometrically; the sweep bound must stop the
        // loop with sound (non-empty) intervals.
        let parents = vec![0, 0, 0];
        let (lo, mut hi) = seed(3, 0);
        hi[1] = Some(r(3.0));
        hi[2] = Some(r(3.0));
        let pairs = vec![PairRow {
            a: 1,
            b: 2,
            lca: 0,
            dist: r(3.0),
        }];
        let iv = propagate(&parents, 0, &[0, 1, 2], &[], &pairs, lo, hi);
        assert!(iv.sweeps <= 4 * 3 + 16);
        assert!(iv.empty_at.is_none());
        // Sound: the point d_1 = d_2 = 3 is feasible, so lo <= 3.
        assert!(iv.lo[1].le(&r(3.0)));
    }
}
