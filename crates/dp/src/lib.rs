#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `lubt-dp`: an LP-free exact oracle for the paper's fixed-topology
//! lower/upper-bounded-delay routing-tree problem.
//!
//! The three float backends in `lubt-lp` (dense simplex, revised simplex,
//! interior point) share one model assembly and one kind of arithmetic, so
//! a common-mode bug is invisible to differential tests between them.
//! This crate solves the same problem along a completely independent
//! path, in three stages, all exact:
//!
//! 1. **Interval DP** ([`mod@intervals`]): bottom-up/top-down dynamic
//!    programming over per-node feasible delay intervals on the fixed
//!    topology. Empty interval ⇒ exact infeasibility; pinched interval ⇒
//!    the node's delay is fixed on the whole feasible set.
//! 2. **Folding**: zero edges and interval-pinched edges are substituted
//!    out, and separation rows already implied by the kept sink windows
//!    are pruned — soundly, using only constraints that remain in the
//!    system.
//! 3. **Exact rational core** ([`mod@simplex`]): the reduced edge-length
//!    system goes through a fraction-free (integer-pivoting) dual simplex
//!    with Bland's rule — BigInt arithmetic end to end, every pivot
//!    division exact, termination guaranteed.
//!
//! The pair rows (coefficients `1, 1, -2` in delay space) break total
//! unimodularity — optima can be half-integral — which is why a pure
//! lattice DP cannot be exact and stage 3 exists. Stages 1–2 are the DP
//! proper: on window-free or zero-skew instances they solve the problem
//! alone, and elsewhere they shrink what the rational core has to touch.
//!
//! Input is the plain-data [`DpInstance`] (no dependency on `lubt-core`);
//! output status and objective agree **exactly** with the LP formulation
//! of §4 — the crate's entire reason to exist is that a disagreement with
//! a float backend is always a real bug in one of the two.

mod intervals;
mod simplex;

use std::cmp::Ordering;
use std::fmt;
use std::time::Instant;

use lubt_audit::{BigInt, BigUint, Rational};

use intervals::PairRow;
use simplex::{CoreOutcome, LeRow};

/// One sink of a [`DpInstance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpSink {
    /// Node index of the sink in the topology.
    pub node: usize,
    /// Effective lower delay bound — the caller folds
    /// `max(l_i, dist(source, sink_i))` in, matching the LP's Equation 2
    /// rows. Values `<= 0` impose nothing (pathlengths are non-negative).
    pub lower: f64,
    /// Upper delay bound; `f64::INFINITY` imposes nothing.
    pub upper: f64,
}

/// One §4.4 separation constraint between two sinks: the tree pathlength
/// between them must be at least their Manhattan separation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpPair {
    /// First sink node.
    pub a: usize,
    /// Second sink node.
    pub b: usize,
    /// Manhattan distance between the two sink positions.
    pub dist: f64,
}

/// Plain-data description of one fixed-topology bounded-delay instance.
///
/// Deliberately independent of `lubt-core`'s problem types: the converter
/// lives on the core side, so a bug there cannot be mirrored here.
#[derive(Debug, Clone, PartialEq)]
pub struct DpInstance {
    /// `parents[v]` is the parent of node `v`; the root's entry is
    /// ignored.
    pub parents: Vec<usize>,
    /// Root (source) node.
    pub root: usize,
    /// `weights[v]` weighs the edge into `v` in the objective; the root's
    /// entry is ignored. Must be finite and non-negative.
    pub weights: Vec<f64>,
    /// Nodes whose incoming edge is fixed to length zero.
    pub zero_edges: Vec<usize>,
    /// Sinks with their effective delay windows.
    pub sinks: Vec<DpSink>,
    /// Separation constraints (typically all C(m,2) sink pairs).
    pub pairs: Vec<DpPair>,
}

/// Solve status of the exact oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpStatus {
    /// An optimal edge-length assignment was found.
    Optimal,
    /// The instance is exactly infeasible.
    Infeasible,
}

/// Work counters of one [`solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpReport {
    /// Interval-DP sweeps executed.
    pub sweeps: u64,
    /// Exact rational pivots performed.
    pub pivots: u64,
    /// Rows handed to the rational core.
    pub rows: u64,
    /// Rows pruned by the interval DP and the folding stage.
    pub rows_pruned: u64,
    /// Edge variables fixed before the core ran (zero edges plus
    /// interval-pinched edges).
    pub fixed_vars: u64,
    /// `true` when the interval DP alone certified infeasibility and the
    /// rational core never ran.
    pub interval_infeasible: bool,
}

/// Wall-clock phase breakdown of one [`solve_profiled`] call. Purely
/// informational (profiling spans); never part of the deterministic
/// output — hit counts for the matching spans come from [`DpReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpPhases {
    /// Stage 1: interval-DP window propagation sweeps.
    pub sweeps_ns: u64,
    /// Stage 2: folding fixed edges, row assembly, and integer scaling.
    pub fold_ns: u64,
    /// Stage 3: the fraction-free rational dual-simplex core.
    pub dual_simplex_ns: u64,
}

/// Result of one [`solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Optimal or exactly infeasible.
    pub status: DpStatus,
    /// Per-node edge lengths (entry `root` is zero); empty when
    /// infeasible.
    pub lengths: Vec<f64>,
    /// Objective value `sum(weights[v] * lengths[v])`; NaN when
    /// infeasible.
    pub objective: f64,
    /// Work counters.
    pub report: DpReport,
}

/// Failure of one [`solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpError {
    /// The instance is structurally invalid (bad indices, cycles,
    /// non-finite data, negative weights).
    Malformed(String),
    /// The exact core exceeded the caller's pivot cap.
    PivotLimit {
        /// The cap that was hit.
        limit: u64,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::Malformed(msg) => write!(f, "malformed DP instance: {msg}"),
            DpError::PivotLimit { limit } => {
                write!(f, "exact rational core exceeded {limit} pivots")
            }
        }
    }
}

impl std::error::Error for DpError {}

fn malformed(msg: impl Into<String>) -> DpError {
    DpError::Malformed(msg.into())
}

/// Node depths with cycle detection.
fn depths(parents: &[usize], root: usize) -> Result<Vec<usize>, DpError> {
    let n = parents.len();
    let mut depth = vec![usize::MAX; n];
    depth[root] = 0;
    for start in 0..n {
        if depth[start] != usize::MAX {
            continue;
        }
        let mut chain = Vec::new();
        let mut cur = start;
        while depth[cur] == usize::MAX {
            chain.push(cur);
            if chain.len() > n {
                return Err(malformed(format!("parent pointers cycle near node {cur}")));
            }
            let p = parents[cur];
            if p >= n {
                return Err(malformed(format!("node {cur} has out-of-range parent {p}")));
            }
            cur = p;
        }
        let mut d = depth[cur];
        for &v in chain.iter().rev() {
            d += 1;
            depth[v] = d;
        }
    }
    Ok(depth)
}

fn lca(parents: &[usize], depth: &[usize], mut a: usize, mut b: usize) -> usize {
    while depth[a] > depth[b] {
        a = parents[a];
    }
    while depth[b] > depth[a] {
        b = parents[b];
    }
    while a != b {
        a = parents[a];
        b = parents[b];
    }
    a
}

/// Nodes whose incoming edge lies on the path from `v` up to (excluding)
/// `ancestor`.
fn path_up(parents: &[usize], mut v: usize, ancestor: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while v != ancestor {
        out.push(v);
        v = parents[v];
    }
    out
}

/// Rounds `num / den` to `f64` with ~1 ulp of slack: gcd-reduce, rescale
/// the numerator so the integer quotient keeps 64 significant bits, then
/// undo the scaling in the float domain.
pub(crate) fn ratio_to_f64(num: &BigInt, den: &BigUint) -> f64 {
    if num.is_zero() {
        return 0.0;
    }
    let g = num.magnitude().gcd(den);
    let (n, _) = num.magnitude().div_rem(&g);
    let (d, _) = den.div_rem(&g);
    let shift = (d.bit_len() + 64).saturating_sub(n.bit_len());
    let (q, _) = n.shl(shift).div_rem(&d);
    let v = q.to_f64() * 2.0f64.powi(-(shift.min(i32::MAX as u64) as i32));
    if num.signum() < 0 {
        -v
    } else {
        v
    }
}

struct Window {
    lo: Rational,
    hi: Option<Rational>,
}

enum Sense {
    Ge,
    Le,
}

/// Collected `<=` rows with exact dyadic right-hand sides, pre-scaling:
/// `(free columns, shared coefficient ±1, rhs)`.
struct Assembly {
    rows: Vec<(Vec<usize>, i64, Rational)>,
    pruned: u64,
}

impl Assembly {
    /// Folds a path-sum row `sum(path) {>=,<=} bound` into the system:
    /// fixed edges move to the right-hand side, trivially satisfied rows
    /// are pruned, and an exactly violated row (all-fixed, or an upper
    /// bound a non-negative sum can never reach) is infeasibility
    /// (`Err`).
    fn push(
        &mut self,
        nodes: &[usize],
        sense: Sense,
        bound: &Rational,
        var_of: &[Option<usize>],
        fixed: &[Option<Rational>],
    ) -> Result<(), ()> {
        let mut cols = Vec::new();
        let mut rhs = bound.clone();
        for &v in nodes {
            if let Some(k) = var_of[v] {
                cols.push(k);
            } else {
                let f = fixed[v].as_ref().expect("non-variable edges are fixed");
                rhs = rhs.sub(f);
            }
        }
        match sense {
            Sense::Ge => {
                // sum(free) >= rhs: trivially true when rhs <= 0 (the sum
                // is non-negative), exactly violated when no free edge
                // remains and rhs > 0.
                if rhs.signum() <= 0 {
                    self.pruned += 1;
                } else if cols.is_empty() {
                    return Err(());
                } else {
                    self.rows.push((cols, -1, rhs.neg()));
                }
            }
            Sense::Le => {
                // sum(free) <= rhs: a non-negative sum can never land
                // below a negative rhs.
                if rhs.signum() < 0 {
                    return Err(());
                }
                if cols.is_empty() {
                    self.pruned += 1;
                } else {
                    self.rows.push((cols, 1, rhs));
                }
            }
        }
        Ok(())
    }
}

/// Solves one instance exactly. `max_pivots` caps the rational core
/// (pass `u64::MAX` for no cap).
///
/// # Errors
///
/// [`DpError::Malformed`] on structurally invalid instances,
/// [`DpError::PivotLimit`] when the cap is hit. Infeasibility is **not**
/// an error: it comes back as [`DpStatus::Infeasible`].
pub fn solve(inst: &DpInstance, max_pivots: u64) -> Result<DpSolution, DpError> {
    let mut phases = DpPhases::default();
    solve_with_phases(inst, max_pivots, &mut phases)
}

/// Like [`solve`], also reporting the wall clock spent in each stage
/// (interval sweeps / fold / rational dual simplex) for span profiling.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_profiled(
    inst: &DpInstance,
    max_pivots: u64,
) -> Result<(DpSolution, DpPhases), DpError> {
    let mut phases = DpPhases::default();
    let sol = solve_with_phases(inst, max_pivots, &mut phases)?;
    Ok((sol, phases))
}

fn saturating_elapsed(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn solve_with_phases(
    inst: &DpInstance,
    max_pivots: u64,
    phases: &mut DpPhases,
) -> Result<DpSolution, DpError> {
    let n = inst.parents.len();
    if n == 0 {
        return Err(malformed("empty topology"));
    }
    if inst.root >= n {
        return Err(malformed(format!("root {} out of range", inst.root)));
    }
    if inst.weights.len() != n {
        return Err(malformed(format!(
            "{} weights for {} nodes",
            inst.weights.len(),
            n
        )));
    }
    for (v, &w) in inst.weights.iter().enumerate() {
        if v != inst.root && (!w.is_finite() || w < 0.0) {
            return Err(malformed(format!("weight of edge into node {v} is {w}")));
        }
    }
    for &z in &inst.zero_edges {
        if z >= n {
            return Err(malformed(format!("zero edge on out-of-range node {z}")));
        }
    }
    for s in &inst.sinks {
        if s.node >= n {
            return Err(malformed(format!("sink on out-of-range node {}", s.node)));
        }
        if s.lower.is_nan() || s.upper.is_nan() || s.upper == f64::NEG_INFINITY {
            return Err(malformed(format!(
                "sink {} has window [{}, {}]",
                s.node, s.lower, s.upper
            )));
        }
    }
    for p in &inst.pairs {
        if p.a >= n || p.b >= n {
            return Err(malformed(format!("pair ({}, {}) out of range", p.a, p.b)));
        }
        if !p.dist.is_finite() {
            return Err(malformed(format!(
                "pair ({}, {}) has distance {}",
                p.a, p.b, p.dist
            )));
        }
    }
    let depth = depths(&inst.parents, inst.root)?;

    // ---- Seed the windows. --------------------------------------------
    let mut window: Vec<Window> = (0..n)
        .map(|_| Window {
            lo: Rational::zero(),
            hi: None,
        })
        .collect();
    window[inst.root].hi = Some(Rational::zero());
    for s in &inst.sinks {
        let w = &mut window[s.node];
        if s.lower > 0.0 {
            let lo = Rational::from_f64(s.lower).expect("validated finite");
            if lo.cmp_val(&w.lo) == Ordering::Greater {
                w.lo = lo;
            }
        }
        if s.upper.is_finite() {
            let hi = Rational::from_f64(s.upper).expect("validated finite");
            match &w.hi {
                Some(cur) if cur.cmp_val(&hi) != Ordering::Greater => {}
                _ => w.hi = Some(hi),
            }
        }
    }
    let init_lo: Vec<Rational> = window.iter().map(|w| w.lo.clone()).collect();
    let init_hi: Vec<Option<Rational>> = window.iter().map(|w| w.hi.clone()).collect();

    // ---- Stage 1: interval DP. ----------------------------------------
    let mut order_down: Vec<usize> = (0..n).collect();
    order_down.sort_by_key(|&v| (depth[v], v));
    let pair_rows: Vec<PairRow> = inst
        .pairs
        .iter()
        .filter(|p| p.dist > 0.0)
        .map(|p| PairRow {
            a: p.a,
            b: p.b,
            lca: lca(&inst.parents, &depth, p.a, p.b),
            dist: Rational::from_f64(p.dist).expect("validated finite"),
        })
        .collect();
    let t_sweeps = Instant::now();
    let iv = intervals::propagate(
        &inst.parents,
        inst.root,
        &order_down,
        &inst.zero_edges,
        &pair_rows,
        init_lo.clone(),
        init_hi.clone(),
    );
    phases.sweeps_ns = saturating_elapsed(t_sweeps);
    let mut report = DpReport {
        sweeps: iv.sweeps,
        ..DpReport::default()
    };
    let infeasible = |report: DpReport| {
        Ok(DpSolution {
            status: DpStatus::Infeasible,
            lengths: Vec::new(),
            objective: f64::NAN,
            report,
        })
    };
    if iv.empty_at.is_some() {
        report.interval_infeasible = true;
        return infeasible(report);
    }

    // ---- Stage 2: fold fixed edges, number the rest. ------------------
    // `fixed[v]` is the exact length of the edge into `v` when the
    // intervals pin it on the whole feasible set; `var_of[v]` numbers the
    // remaining free edges.
    let t_fold = Instant::now();
    let zero_edge = {
        let mut mask = vec![false; n];
        for &z in &inst.zero_edges {
            mask[z] = true;
        }
        mask
    };
    let mut fixed: Vec<Option<Rational>> = vec![None; n];
    let mut var_of: Vec<Option<usize>> = vec![None; n];
    let mut ncols = 0usize;
    for &v in &order_down {
        if v == inst.root {
            continue;
        }
        let p = inst.parents[v];
        if zero_edge[v] {
            fixed[v] = Some(Rational::zero());
        } else if iv.hi[v]
            .as_ref()
            .is_some_and(|h| h.cmp_val(&iv.lo[p]) == Ordering::Equal)
        {
            // d_v <= hi_v = lo_p <= d_p <= d_v on every feasible point.
            fixed[v] = Some(Rational::zero());
        } else if iv.lo[v].cmp_val(iv.hi[v].as_ref().unwrap_or(&iv.lo[v])) == Ordering::Equal
            && iv.hi[v].is_some()
            && iv.lo[p].cmp_val(iv.hi[p].as_ref().unwrap_or(&iv.lo[p])) == Ordering::Equal
            && iv.hi[p].is_some()
        {
            // Both endpoint delays are pinned, so the edge length is too.
            fixed[v] = Some(iv.lo[v].sub(&iv.lo[p]));
        } else {
            var_of[v] = Some(ncols);
            ncols += 1;
        }
    }
    report.fixed_vars = fixed.iter().flatten().count() as u64;

    // ---- Assemble the edge-length rows. -------------------------------
    let mut asm = Assembly {
        rows: Vec::new(),
        pruned: 0,
    };
    // Sink windows: pathlength rows against the seeded windows.
    for v in 0..n {
        let path = path_up(&inst.parents, v, inst.root);
        if init_lo[v].signum() > 0
            && asm
                .push(&path, Sense::Ge, &init_lo[v].clone(), &var_of, &fixed)
                .is_err()
        {
            return infeasible(report);
        }
        if let Some(hi) = init_hi[v].clone() {
            if v != inst.root && asm.push(&path, Sense::Le, &hi, &var_of, &fixed).is_err() {
                return infeasible(report);
            }
        }
    }
    // Separation rows, with the sound window-based prune: d_c is bounded
    // above by every descendant sink's window (and is zero at the root),
    // and the kept window rows enforce lo_a, lo_b — so
    // `lo_a + lo_b - 2 min(u_a, u_b) >= D` (or `lo_a + lo_b >= D` at the
    // root) proves the row redundant *in the reduced system*.
    for p in &inst.pairs {
        if p.dist <= 0.0 {
            asm.pruned += 1;
            continue;
        }
        let c = lca(&inst.parents, &depth, p.a, p.b);
        let dist = Rational::from_f64(p.dist).expect("validated finite");
        let lo_sum = init_lo[p.a].add(&init_lo[p.b]);
        let implied = if c == inst.root {
            lo_sum.ge(&dist)
        } else {
            match (&init_hi[p.a], &init_hi[p.b]) {
                (Some(ua), Some(ub)) => {
                    let u = if ua.le(ub) { ua } else { ub };
                    lo_sum.sub(u).sub(u).ge(&dist)
                }
                _ => false,
            }
        };
        if implied {
            asm.pruned += 1;
            continue;
        }
        let mut nodes = path_up(&inst.parents, p.a, c);
        nodes.extend(path_up(&inst.parents, p.b, c));
        if asm.push(&nodes, Sense::Ge, &dist, &var_of, &fixed).is_err() {
            return infeasible(report);
        }
    }
    report.rows_pruned = asm.pruned;
    report.rows = asm.rows.len() as u64;

    // ---- Scale onto a common power-of-two denominator. ----------------
    let k_rhs = asm
        .rows
        .iter()
        .map(|(_, _, rhs)| rhs.exponent())
        .max()
        .unwrap_or(0);
    let core_rows: Vec<LeRow> = asm
        .rows
        .iter()
        .map(|(cols, coef, rhs)| LeRow {
            coefs: cols.iter().map(|&k| (k, *coef)).collect(),
            rhs: rhs.numerator().shl(k_rhs - rhs.exponent()),
        })
        .collect();
    // Index the objective by *column*: `var_of` numbers the free edges in
    // depth order, which need not match ascending node order.
    let mut obj_rat: Vec<Rational> = vec![Rational::zero(); ncols];
    for (v, slot) in var_of.iter().enumerate() {
        if let Some(k) = *slot {
            obj_rat[k] = Rational::from_f64(inst.weights[v]).expect("validated finite");
        }
    }
    let k_obj = obj_rat.iter().map(Rational::exponent).max().unwrap_or(0);
    let obj: Vec<BigInt> = obj_rat
        .iter()
        .map(|w| w.numerator().shl(k_obj - w.exponent()))
        .collect();

    // ---- Stage 3: exact rational core. --------------------------------
    phases.fold_ns = saturating_elapsed(t_fold);
    let t_core = Instant::now();
    let outcome = simplex::solve_core(ncols, &obj, &core_rows, max_pivots);
    phases.dual_simplex_ns = saturating_elapsed(t_core);
    match outcome {
        CoreOutcome::PivotLimit => Err(DpError::PivotLimit { limit: max_pivots }),
        CoreOutcome::Infeasible { pivots } => {
            report.pivots = pivots;
            infeasible(report)
        }
        CoreOutcome::Optimal {
            numerators,
            denom,
            pivots,
        } => {
            report.pivots = pivots;
            let len_den = denom.shl(k_rhs);
            let mut lengths = vec![0.0; n];
            let mut obj_fixed = Rational::zero();
            for v in 0..n {
                if v == inst.root {
                    continue;
                }
                if let Some(k) = var_of[v] {
                    lengths[v] = ratio_to_f64(&numerators[k], &len_den);
                } else {
                    let f = fixed[v].as_ref().expect("non-variable edges are fixed");
                    lengths[v] = f.to_f64();
                    let w = Rational::from_f64(inst.weights[v]).expect("validated finite");
                    obj_fixed = obj_fixed.add(&w.mul(f));
                }
            }
            let mut obj_num = BigInt::zero();
            for (k, c) in obj.iter().enumerate() {
                obj_num = obj_num.add(&c.mul(&numerators[k]));
            }
            let obj_den = denom.shl(k_rhs + k_obj);
            let objective = ratio_to_f64(&obj_num, &obj_den) + obj_fixed.to_f64();
            Ok(DpSolution {
                status: DpStatus::Optimal,
                lengths,
                objective,
                report,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3(lower: f64, upper: f64) -> DpInstance {
        // 0 -> 1 -> 2, sink at 2.
        DpInstance {
            parents: vec![0, 0, 1],
            root: 0,
            weights: vec![1.0; 3],
            zero_edges: vec![],
            sinks: vec![DpSink {
                node: 2,
                lower,
                upper,
            }],
            pairs: vec![],
        }
    }

    #[test]
    fn lower_bound_pads_the_path() {
        let sol = solve(&chain3(3.5, 6.0), u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        assert_eq!(sol.lengths[1] + sol.lengths[2], 3.5);
        assert_eq!(sol.objective, 3.5);
    }

    #[test]
    fn unbounded_window_costs_nothing() {
        let sol = solve(&chain3(0.0, f64::INFINITY), u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);
        // No rows survive: the whole solve is the interval DP.
        assert_eq!(sol.report.rows, 0);
        assert_eq!(sol.report.pivots, 0);
    }

    #[test]
    fn interval_dp_certifies_window_inversion() {
        // Sink 1 in [5, 6], its child sink 2 in [0, 1]: monotonicity makes
        // this empty before any LP-like machinery runs.
        let inst = DpInstance {
            parents: vec![0, 0, 1],
            root: 0,
            weights: vec![1.0; 3],
            zero_edges: vec![],
            sinks: vec![
                DpSink {
                    node: 1,
                    lower: 5.0,
                    upper: 6.0,
                },
                DpSink {
                    node: 2,
                    lower: 0.0,
                    upper: 1.0,
                },
            ],
            pairs: vec![],
        };
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Infeasible);
        assert!(sol.report.interval_infeasible);
        assert!(sol.objective.is_nan());
    }

    #[test]
    fn half_integral_separation_optimum_is_exact() {
        // Three sinks under the root, pairwise distance 1: the unique
        // optimum is l = (1/2, 1/2, 1/2), objective 3/2 — beyond any
        // integral DP, exact for the rational core.
        let inst = DpInstance {
            parents: vec![0, 0, 0, 0],
            root: 0,
            weights: vec![1.0; 4],
            zero_edges: vec![],
            sinks: (1..4)
                .map(|v| DpSink {
                    node: v,
                    lower: 0.0,
                    upper: f64::INFINITY,
                })
                .collect(),
            pairs: vec![
                DpPair {
                    a: 1,
                    b: 2,
                    dist: 1.0,
                },
                DpPair {
                    a: 2,
                    b: 3,
                    dist: 1.0,
                },
                DpPair {
                    a: 1,
                    b: 3,
                    dist: 1.0,
                },
            ],
        };
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        assert_eq!(sol.objective, 1.5);
        for v in 1..4 {
            assert_eq!(sol.lengths[v], 0.5);
        }
        assert!(sol.report.pivots > 0);
    }

    #[test]
    fn separation_vs_windows_infeasibility_is_exact() {
        // Two sinks in [0, 1] that must sit 10 apart: infeasible, caught
        // exactly (by the interval DP's pair rule here).
        let inst = DpInstance {
            parents: vec![0, 0, 0],
            root: 0,
            weights: vec![1.0; 3],
            zero_edges: vec![],
            sinks: (1..3)
                .map(|v| DpSink {
                    node: v,
                    lower: 0.0,
                    upper: 1.0,
                })
                .collect(),
            pairs: vec![DpPair {
                a: 1,
                b: 2,
                dist: 10.0,
            }],
        };
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Infeasible);
    }

    #[test]
    fn zero_edges_are_folded_out() {
        // 0 -> 1 -> 2 with a zero edge into 1 and sink 2 in [2, 2]: all
        // length on edge 2, edge 1 exactly zero.
        let inst = DpInstance {
            parents: vec![0, 0, 1],
            root: 0,
            weights: vec![1.0; 3],
            zero_edges: vec![1],
            sinks: vec![DpSink {
                node: 2,
                lower: 2.0,
                upper: 2.0,
            }],
            pairs: vec![],
        };
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        assert_eq!(sol.lengths[1], 0.0);
        assert_eq!(sol.lengths[2], 2.0);
        assert!(sol.report.fixed_vars >= 1);
    }

    #[test]
    fn weights_scale_the_objective() {
        let mut inst = chain3(4.0, 8.0);
        inst.weights = vec![0.0, 3.0, 0.25];
        // Cheapest padding goes on the 0.25-weighted edge.
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        assert_eq!(sol.lengths[1], 0.0);
        assert_eq!(sol.lengths[2], 4.0);
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn pivot_cap_is_enforced() {
        let inst = chain3(3.0, 6.0);
        assert!(matches!(
            solve(&inst, 0),
            Err(DpError::PivotLimit { limit: 0 })
        ));
    }

    #[test]
    fn malformed_instances_are_rejected() {
        let mut cyc = chain3(1.0, 2.0);
        cyc.parents = vec![0, 2, 1];
        assert!(matches!(solve(&cyc, u64::MAX), Err(DpError::Malformed(_))));

        let mut bad_w = chain3(1.0, 2.0);
        bad_w.weights[2] = -1.0;
        assert!(matches!(
            solve(&bad_w, u64::MAX),
            Err(DpError::Malformed(_))
        ));

        let mut bad_sink = chain3(1.0, 2.0);
        bad_sink.sinks[0].node = 9;
        assert!(matches!(
            solve(&bad_sink, u64::MAX),
            Err(DpError::Malformed(_))
        ));

        let mut bad_pair = chain3(1.0, 2.0);
        bad_pair.pairs = vec![DpPair {
            a: 1,
            b: 2,
            dist: f64::NAN,
        }];
        assert!(matches!(
            solve(&bad_pair, u64::MAX),
            Err(DpError::Malformed(_))
        ));
    }

    #[test]
    fn solves_are_deterministic() {
        let inst = DpInstance {
            parents: vec![0, 0, 1, 1, 0],
            root: 0,
            weights: vec![1.0, 2.0, 1.0, 0.5, 1.5],
            zero_edges: vec![],
            sinks: vec![
                DpSink {
                    node: 2,
                    lower: 3.25,
                    upper: 7.5,
                },
                DpSink {
                    node: 3,
                    lower: 2.0,
                    upper: 6.0,
                },
                DpSink {
                    node: 4,
                    lower: 1.0,
                    upper: 4.0,
                },
            ],
            pairs: vec![
                DpPair {
                    a: 2,
                    b: 3,
                    dist: 2.5,
                },
                DpPair {
                    a: 2,
                    b: 4,
                    dist: 4.0,
                },
                DpPair {
                    a: 3,
                    b: 4,
                    dist: 3.0,
                },
            ],
        };
        let a = solve(&inst, u64::MAX).unwrap();
        let b = solve(&inst, u64::MAX).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.lengths.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            b.lengths.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn optimal_solutions_satisfy_every_constraint_exactly() {
        // Re-check a solved instance with exact arithmetic: pathlengths in
        // window, separation satisfied (up to the f64 rounding of the
        // reported lengths — bounded by 1e-12 relative here).
        let inst = DpInstance {
            parents: vec![0, 0, 1, 1, 0, 4],
            root: 0,
            weights: vec![1.0; 6],
            zero_edges: vec![4],
            sinks: vec![
                DpSink {
                    node: 2,
                    lower: 4.5,
                    upper: 9.0,
                },
                DpSink {
                    node: 3,
                    lower: 4.0,
                    upper: 8.0,
                },
                DpSink {
                    node: 5,
                    lower: 2.25,
                    upper: 5.0,
                },
            ],
            pairs: vec![
                DpPair {
                    a: 2,
                    b: 3,
                    dist: 3.0,
                },
                DpPair {
                    a: 2,
                    b: 5,
                    dist: 6.5,
                },
                DpPair {
                    a: 3,
                    b: 5,
                    dist: 5.75,
                },
            ],
        };
        let sol = solve(&inst, u64::MAX).unwrap();
        assert_eq!(sol.status, DpStatus::Optimal);
        let d = |mut v: usize| {
            let mut s = 0.0;
            while v != 0 {
                s += sol.lengths[v];
                v = inst.parents[v];
            }
            s
        };
        let tol = 1e-9;
        for s in &inst.sinks {
            assert!(d(s.node) >= s.lower - tol, "sink {}", s.node);
            assert!(d(s.node) <= s.upper + tol, "sink {}", s.node);
        }
        assert_eq!(sol.lengths[4], 0.0, "zero edge");
        for p in &inst.pairs {
            let c = super::lca(&inst.parents, &depths(&inst.parents, 0).unwrap(), p.a, p.b);
            assert!(d(p.a) + d(p.b) - 2.0 * d(c) >= p.dist - tol);
        }
        // The objective matches the reported lengths.
        let total: f64 = (1..6).map(|v| inst.weights[v] * sol.lengths[v]).sum();
        assert!((sol.objective - total).abs() <= tol);
    }
}
