//! Linear delay model: `delay(s_i) = sum of edge lengths on path(s0, s_i)`.

use lubt_topology::{NodeId, Topology};

/// Delay (cumulative wirelength from the root) at every node.
///
/// `lengths[i]` is the length of edge `e_i` (above node `i`); `lengths[0]`
/// is ignored. Runs in O(n) by accumulating along a preorder traversal.
///
/// # Panics
///
/// Panics when `lengths.len() != topo.num_nodes()`.
pub fn node_delays(topo: &Topology, lengths: &[f64]) -> Vec<f64> {
    assert_eq!(
        lengths.len(),
        topo.num_nodes(),
        "one length per node (index 0 unused)"
    );
    let mut d = vec![0.0; topo.num_nodes()];
    for v in topo.preorder() {
        if let Some(p) = topo.parent(v) {
            d[v.index()] = d[p.index()] + lengths[v.index()];
        }
    }
    d
}

/// Delays of the sinks only, indexed by sink node (`out[0]` is the delay of
/// sink node 1, etc.).
pub fn sink_delays(topo: &Topology, lengths: &[f64]) -> Vec<f64> {
    let d = node_delays(topo, lengths);
    topo.sinks().map(|s| d[s.index()]).collect()
}

/// Total tree cost: the sum of all edge lengths (the EBF objective).
pub fn tree_cost(lengths: &[f64]) -> f64 {
    lengths.iter().skip(1).sum()
}

/// `pathlength(a, b)`: total length of the unique tree path between two
/// nodes — the quantity the Steiner constraints bound from below.
///
/// Computed as `D(a) + D(b) - 2 D(lca(a, b))` from precomputed node delays,
/// in O(log n).
pub fn path_length(topo: &Topology, delays: &[f64], a: NodeId, b: NodeId) -> f64 {
    let l = topo.lca(a, b);
    delays[a.index()] + delays[b.index()] - 2.0 * delays[l.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Topology, Vec<f64>) {
        // s0 -> s7 -> [s5 -> [s1, s2], s6 -> [s3, s4]]
        let t = Topology::from_parents(4, &[0, 5, 5, 6, 6, 7, 7, 0]).unwrap();
        //            e0   e1   e2   e3   e4   e5   e6   e7
        let lengths = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0].to_vec();
        (t, lengths)
    }

    #[test]
    fn delays_accumulate_down_the_tree() {
        let (t, l) = sample();
        let d = node_delays(&t, &l);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[7], 7.0);
        assert_eq!(d[5], 12.0);
        assert_eq!(d[1], 13.0);
        assert_eq!(d[4], 17.0);
    }

    #[test]
    fn sink_delays_in_order() {
        let (t, l) = sample();
        assert_eq!(sink_delays(&t, &l), vec![13.0, 14.0, 16.0, 17.0]);
    }

    #[test]
    fn cost_sums_edges() {
        let (_, l) = sample();
        assert_eq!(tree_cost(&l), 28.0);
    }

    #[test]
    fn path_length_uses_lca() {
        let (t, l) = sample();
        let d = node_delays(&t, &l);
        // s1..s2 via s5: e1 + e2.
        assert_eq!(path_length(&t, &d, NodeId(1), NodeId(2)), 3.0);
        // s1..s4 via s7: e1 + e5 + e6 + e4.
        assert_eq!(path_length(&t, &d, NodeId(1), NodeId(4)), 16.0);
        // Node to itself.
        assert_eq!(path_length(&t, &d, NodeId(3), NodeId(3)), 0.0);
        // Node to its own ancestor.
        assert_eq!(path_length(&t, &d, NodeId(1), NodeId(7)), 6.0);
    }

    #[test]
    #[should_panic(expected = "one length per node")]
    fn wrong_length_vector_panics() {
        let (t, _) = sample();
        let _ = node_delays(&t, &[0.0; 3]);
    }
}
