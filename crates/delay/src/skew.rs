//! Skew and the paper's *radius* normalization.
//!
//! All bounds in the paper's experiments (Tables 1–3, Figure 8) are
//! normalized to the **radius**: the distance from the source to the
//! farthest sink when the source location is given, or half the sink-set
//! diameter when it is free.

use lubt_geom::{diameter, Point};
use lubt_topology::Topology;

/// Skew of a delay assignment: `max sink delay - min sink delay`.
///
/// Returns `0` for a single sink.
///
/// # Panics
///
/// Panics when `node_delays.len() != topo.num_nodes()`.
pub fn skew(topo: &Topology, node_delays: &[f64]) -> f64 {
    let (lo, hi) = delay_range(topo, node_delays);
    hi - lo
}

/// `(shortest, longest)` sink delay — the columns reported by Table 1.
///
/// # Panics
///
/// Panics when `node_delays.len() != topo.num_nodes()` or the topology has
/// no sinks (impossible for a valid [`Topology`]).
pub fn delay_range(topo: &Topology, node_delays: &[f64]) -> (f64, f64) {
    assert_eq!(node_delays.len(), topo.num_nodes());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in topo.sinks() {
        let d = node_delays[s.index()];
        lo = lo.min(d);
        hi = hi.max(d);
    }
    (lo, hi)
}

/// Radius with a given source: `max_i dist(source, sink_i)` (Equation 3).
///
/// Returns `0` for an empty sink set.
pub fn radius_with_source(source: Point, sinks: &[Point]) -> f64 {
    sinks.iter().map(|s| source.dist(*s)).fold(0.0, f64::max)
}

/// Radius without a source: half the Manhattan diameter of the sink set
/// (Equation 4).
pub fn radius_free(sinks: &[Point]) -> f64 {
    diameter(sinks.iter().copied()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Topology, Vec<f64>) {
        let t = Topology::from_parents(4, &[0, 5, 5, 6, 6, 7, 7, 0]).unwrap();
        let delays = vec![0.0, 13.0, 14.0, 16.0, 17.0, 12.0, 13.0, 7.0];
        (t, delays)
    }

    #[test]
    fn skew_is_sink_spread() {
        let (t, d) = sample();
        assert_eq!(delay_range(&t, &d), (13.0, 17.0));
        assert_eq!(skew(&t, &d), 4.0);
    }

    #[test]
    fn zero_skew_detected() {
        let t = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        let d = vec![0.0, 5.0, 5.0, 2.0];
        assert_eq!(skew(&t, &d), 0.0);
    }

    #[test]
    fn radius_with_source_is_farthest_sink() {
        let src = Point::new(0.0, 0.0);
        let sinks = [Point::new(1.0, 1.0), Point::new(-4.0, 2.0)];
        assert_eq!(radius_with_source(src, &sinks), 6.0);
        assert_eq!(radius_with_source(src, &[]), 0.0);
    }

    #[test]
    fn radius_free_is_half_diameter() {
        let sinks = [Point::new(0.0, 0.0), Point::new(6.0, 2.0)];
        assert_eq!(radius_free(&sinks), 4.0);
    }
}
