//! Delay models for routing trees.
//!
//! The LUBT paper's optimality results hold under the **linear delay
//! model** — the delay to a sink is the total wirelength of its source path
//! (Equation 1). §7 extends the EBF to the **Elmore delay model**, where
//! delay is quadratic in the edge lengths; the extension is solved
//! heuristically by sequential linear programming, which needs the delay
//! *gradients* this crate also provides.
//!
//! * [`linear`] — linear-delay evaluation: per-node delays, tree cost,
//!   path lengths.
//! * [`elmore`] — Elmore-delay evaluation with per-sink load capacitances,
//!   subtree capacitance accumulation, and exact analytic gradients.
//! * [`skew`] — skew, shortest/longest sink delay, and the paper's *radius*
//!   normalization (all experimental bounds are expressed in radius units).
//!
//! # Example
//!
//! ```
//! use lubt_delay::linear::node_delays;
//! use lubt_topology::Topology;
//!
//! // s0 -> s3 -> {s1, s2}; edge lengths e1=2, e2=3, e3=1.
//! let topo = Topology::from_parents(2, &[0, 3, 3, 0])?;
//! let d = node_delays(&topo, &[0.0, 2.0, 3.0, 1.0]);
//! assert_eq!(d[1], 3.0); // e3 + e1
//! assert_eq!(d[2], 4.0); // e3 + e2
//! # Ok::<(), lubt_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elmore;
pub mod linear;
pub mod skew;

pub use elmore::ElmoreParams;
