//! Elmore (RC) delay model — the §7 extension of the EBF.
//!
//! With unit wire resistance `r_w` and capacitance `c_w`, the Elmore delay
//! at sink `s_j` is (Equation 12)
//!
//! ```text
//! delay(s_j) = sum over e_k in path(s0, s_j) of  r_w e_k (c_w e_k / 2 + C_k)
//! ```
//!
//! where `C_k` is the total capacitance of the subtree hanging below edge
//! `e_k` (downstream wire capacitance plus sink loads). The delay is
//! *quadratic* in the edge lengths, which makes the bounded-delay EBF a
//! non-convex program when lower bounds are active; the core crate solves it
//! by sequential linear programming using the exact gradients provided here.

use lubt_topology::{NodeId, Topology};

/// Electrical parameters of the routing layer plus per-sink load
/// capacitances.
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreParams {
    /// Wire resistance per unit length.
    pub r_w: f64,
    /// Wire capacitance per unit length.
    pub c_w: f64,
    /// Load capacitance of each sink, indexed by sink order (sink node
    /// `i + 1` has load `sink_caps[i]`). Missing entries default to 0.
    pub sink_caps: Vec<f64>,
}

impl ElmoreParams {
    /// Uniform parameters: every sink carries the same load.
    pub fn uniform(r_w: f64, c_w: f64, sink_cap: f64, num_sinks: usize) -> Self {
        ElmoreParams {
            r_w,
            c_w,
            sink_caps: vec![sink_cap; num_sinks],
        }
    }

    fn sink_cap(&self, sink_index0: usize) -> f64 {
        self.sink_caps.get(sink_index0).copied().unwrap_or(0.0)
    }
}

/// Subtree capacitance `C_k` at every node: downstream wire capacitance plus
/// the sink loads in the subtree. (`C_k` of the paper is the capacitance of
/// the subtree *rooted at* `s_k`, i.e. excluding edge `e_k` itself — the
/// half-capacitance of `e_k` appears separately in the delay formula.)
///
/// # Panics
///
/// Panics when `lengths.len() != topo.num_nodes()`.
pub fn subtree_caps(topo: &Topology, lengths: &[f64], params: &ElmoreParams) -> Vec<f64> {
    assert_eq!(lengths.len(), topo.num_nodes());
    let mut cap = vec![0.0; topo.num_nodes()];
    for v in topo.postorder() {
        let mut c = if topo.is_sink(v) {
            params.sink_cap(v.index() - 1)
        } else {
            0.0
        };
        for ch in topo.children(v) {
            c += cap[ch.index()] + params.c_w * lengths[ch.index()];
        }
        cap[v.index()] = c;
    }
    cap
}

/// Elmore delay at every node (for internal nodes: the delay to that node).
///
/// # Panics
///
/// Panics when `lengths.len() != topo.num_nodes()`.
pub fn node_delays(topo: &Topology, lengths: &[f64], params: &ElmoreParams) -> Vec<f64> {
    let caps = subtree_caps(topo, lengths, params);
    let mut d = vec![0.0; topo.num_nodes()];
    for v in topo.preorder() {
        if let Some(p) = topo.parent(v) {
            let e = lengths[v.index()];
            d[v.index()] = d[p.index()] + params.r_w * e * (params.c_w * e / 2.0 + caps[v.index()]);
        }
    }
    d
}

/// Exact gradient of `delay(sink)` with respect to every edge length.
///
/// For edge `e_t` and sink `s_j` with root-path `P`:
///
/// * if `t` in `P`: the direct term `r_w (c_w e_t + C_t)`;
/// * for every `k` in `P` whose subtree *properly* contains `t` (note `C_k`
///   excludes `e_k` itself), the load term `r_w c_w e_k` — these `k` are the
///   edges of `path(s0, lca(j, t))`, minus `e_t` itself when `t` lies on
///   `P`, so the load contribution is `r_w c_w * wirelength(s0 -> lca)`
///   with that correction.
///
/// Used by the sequential-LP solver for the §7 Elmore EBF.
///
/// # Panics
///
/// Panics when `lengths.len() != topo.num_nodes()` or `sink` is not a sink.
pub fn delay_gradient(
    topo: &Topology,
    lengths: &[f64],
    params: &ElmoreParams,
    sink: NodeId,
) -> Vec<f64> {
    assert!(topo.is_sink(sink), "gradient is defined for sinks");
    let caps = subtree_caps(topo, lengths, params);
    // Plain wirelength prefix from the root (linear-delay style).
    let plen = crate::linear::node_delays(topo, lengths);

    let on_path: std::collections::HashSet<usize> = topo
        .path_to_ancestor(sink, topo.root())
        .into_iter()
        .map(NodeId::index)
        .collect();

    let mut grad = vec![0.0; topo.num_nodes()];
    for t in 1..topo.num_nodes() {
        let tn = NodeId(t);
        let mut g = 0.0;
        let l = topo.lca(sink, tn);
        let mut load_upto = plen[l.index()];
        if on_path.contains(&t) {
            g += params.r_w * (params.c_w * lengths[t] + caps[t]);
            // Here lca(j, t) == t; only *proper* ancestors of t contribute
            // the c_w load term (C_k excludes e_k itself), so stop at the
            // parent of t.
            load_upto -= lengths[t];
        }
        g += params.r_w * params.c_w * load_upto;
        grad[t] = g;
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> (Topology, Vec<f64>, ElmoreParams) {
        // s0 -> s7 -> [s5 -> [s1, s2], s6 -> [s3, s4]]
        let t = Topology::from_parents(4, &[0, 5, 5, 6, 6, 7, 7, 0]).unwrap();
        let lengths = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let params = ElmoreParams::uniform(0.1, 0.2, 1.0, 4);
        (t, lengths, params)
    }

    #[test]
    fn caps_accumulate_bottom_up() {
        let (t, l, p) = sample();
        let caps = subtree_caps(&t, &l, &p);
        // Leaf sinks: just their load.
        assert_eq!(caps[1], 1.0);
        // s5: loads of s1, s2 plus wire of e1, e2.
        assert!((caps[5] - (2.0 + 0.2 * 3.0)).abs() < 1e-12);
        // Root includes everything except e0 (which does not exist).
        let total_wire: f64 = l.iter().skip(1).sum();
        assert!((caps[0] - (4.0 + 0.2 * total_wire)).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_two_sink_delay() {
        // s0 -> s3 -> {s1, s2}; e3=2, e1=1, e2=3. r=1, c=1, loads 0.5.
        let t = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        let l = vec![0.0, 1.0, 3.0, 2.0];
        let p = ElmoreParams::uniform(1.0, 1.0, 0.5, 2);
        let d = node_delays(&t, &l, &p);
        // C3 = wire(e1) + wire(e2) + loads = 1 + 3 + 1 = 5.
        // d3 = e3*(e3/2 + C3) = 2*(1 + 5) = 12.
        assert!((d[3] - 12.0).abs() < 1e-12);
        // C1 = 0.5; d1 = d3 + 1*(0.5 + 0.5) = 13.
        assert!((d[1] - 13.0).abs() < 1e-12);
        // C2 = 0.5; d2 = d3 + 3*(1.5 + 0.5) = 18.
        assert!((d[2] - 18.0).abs() < 1e-12);
    }

    #[test]
    fn elongation_increases_downstream_and_upstream_delays() {
        let (t, mut l, p) = sample();
        let before = node_delays(&t, &l, &p);
        l[6] += 1.0; // lengthen e6 (above s6)
        let after = node_delays(&t, &l, &p);
        // Sinks under s6 get slower.
        assert!(after[3] > before[3]);
        // Sinks in the sibling subtree also get slower: e7 now drives more
        // capacitance.
        assert!(after[1] > before[1]);
    }

    proptest! {
        /// Analytic gradient matches central finite differences.
        #[test]
        fn prop_gradient_matches_finite_difference(
            e in proptest::collection::vec(0.5..5.0f64, 7),
            sink_idx in 0usize..4,
        ) {
            let t = Topology::from_parents(4, &[0, 5, 5, 6, 6, 7, 7, 0]).unwrap();
            let mut lengths = vec![0.0];
            lengths.extend(e);
            let p = ElmoreParams::uniform(0.7, 0.3, 0.9, 4);
            let sink = NodeId(sink_idx + 1);
            let grad = delay_gradient(&t, &lengths, &p, sink);
            let h = 1e-6;
            for tdx in 1..lengths.len() {
                let mut up = lengths.clone();
                up[tdx] += h;
                let mut dn = lengths.clone();
                dn[tdx] -= h;
                let fd = (node_delays(&t, &up, &p)[sink.index()]
                    - node_delays(&t, &dn, &p)[sink.index()])
                    / (2.0 * h);
                prop_assert!((grad[tdx] - fd).abs() < 1e-5,
                    "edge {}: analytic {} vs fd {}", tdx, grad[tdx], fd);
            }
        }
    }
}
