//! Command implementations for the `lubt` binary.

use crate::args::{parse, Parsed};
use lubt_baselines::{bounded_skew_tree, zero_skew_tree};
use lubt_core::{
    analyze, bound_aware_topology, render_svg, BatchSolver, DelayBounds, EbfSolver, LubtBuilder,
    SolverBackend,
};
use lubt_data::{io as data_io, synthetic, Instance};
use lubt_topology::{bipartition_topology, matching_topology, SourceMode, Topology};

const USAGE: &str = "usage:
  lubt solve <input> --lower L --upper U [--absolute] \
[--topology nn|matching|bisect|aware] [--lp-backend simplex|ipm|revised|dp] [--threads N] \
[--max-lp-iterations N] [--audit] [--svg out.svg] [--json out.json] [--trace-json [out.json]] \
[--profile [out.json]] [--profile-folded [out.txt]] [--trace-event-cap N]
  lubt batch <input>... --lower L --upper U [--absolute] \
[--topology nn|matching|bisect|aware] [--lp-backend simplex|ipm|revised|dp] [--threads N] \
[--max-lp-iterations N] [--audit] [--json out.json] [--metrics [out.json]] \
[--metrics-prom [out.prom]] [--profile [out.json]] [--profile-folded [out.txt]] \
[--trace-event-cap N]
  lubt audit <input> --lower L --upper U [--absolute] \
[--topology nn|matching|bisect|aware] [--lp-backend simplex|ipm|revised|dp] [--json [out.json]]
  lubt profile <input> --lower L --upper U [--absolute] \
[--topology nn|matching|bisect|aware] [--lp-backend simplex|ipm|revised|dp] \
[--format chrome|folded|tree|shape] [--out file] | lubt profile --check-folded file
  lubt bench [--label L] [--threads N] [--sizes A,B,C] [--interior-cap K] [--full] [--audit] \
[--serve] [--profile] [--par-intra] [--out file]
  lubt report --baseline A.json --current B.json [--timing-threshold F] \
[--ignore-timings] [--json [out.json]]
  lubt lint <input> [--lower L] [--upper U] [--absolute] \
[--topology nn|matching|bisect|aware] [--json [out.json]]
  lubt zeroskew <input> [--target T] [--absolute] [--svg out.svg]
  lubt bst <input> --skew S [--absolute]
  lubt gen <prim1|prim2|r1|r3|uniform|clustered> [--sinks N] [--seed K] [--die D] [--out file]
  lubt serve [--addr H:P] [--workers N] [--queue-depth N] [--cache-entries N] \
[--session-entries N] [--max-request-bytes N] [--default-deadline-ms N] [--allow-shutdown] \
[--trace-event-cap N] [--access-log [path]]
  lubt help";

/// Entry point shared by `main` and the integration tests.
///
/// # Errors
///
/// Returns a human-readable message for any usage or processing failure.
pub fn run(argv: &[String]) -> Result<(), String> {
    let parsed = parse(argv);
    match parsed.positional.first().map(String::as_str) {
        Some("solve") => cmd_solve(&parsed),
        Some("batch") => cmd_batch(&parsed),
        Some("audit") => cmd_audit(&parsed),
        Some("profile") => cmd_profile(&parsed),
        Some("bench") => cmd_bench(&parsed),
        Some("report") => cmd_report(&parsed),
        Some("lint") => cmd_lint(&parsed),
        Some("zeroskew") => cmd_zeroskew(&parsed),
        Some("bst") => cmd_bst(&parsed),
        Some("gen") => cmd_gen(&parsed),
        Some("serve") => cmd_serve(&parsed),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn load_instance(parsed: &Parsed) -> Result<Instance, String> {
    let path = parsed
        .positional
        .get(1)
        .ok_or_else(|| format!("missing <input>\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    data_io::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Converts a possibly radius-normalized value to absolute units.
fn to_absolute(value: f64, radius: f64, absolute: bool) -> f64 {
    if absolute {
        value
    } else {
        value * radius
    }
}

/// True when `--{key}` appeared at all — bare switch or with a value.
fn wants(parsed: &Parsed, key: &str) -> bool {
    parsed.has(key) || parsed.get(key).is_some()
}

/// Emits a JSON document for an optional-value flag: `--{key} path` writes
/// the file, a bare `--{key}` prints to stdout (the `lint --json`
/// convention).
fn emit_json(parsed: &Parsed, key: &str, label: &str, json: &str) -> Result<(), String> {
    match parsed.get(key) {
        Some(path) => {
            lubt_obs::fsio::write_atomic(path, json)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("{label} written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Emits a diagnostic document for an optional-value flag, keeping stdout
/// clean: `--{key} path` writes the file (confirmation on stdout), a bare
/// `--{key}` prints the document to **stderr**. Metrics documents carry
/// timings and scheduling counters that legitimately vary with `--threads`,
/// so routing them through stdout would break the byte-identity contract
/// on the default stream.
fn emit_diagnostic(parsed: &Parsed, key: &str, label: &str, text: &str) -> Result<(), String> {
    match parsed.get(key) {
        Some(path) => {
            lubt_obs::fsio::write_atomic(path, text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("{label} written to {path}");
        }
        None => eprint!("{text}"),
    }
    Ok(())
}

/// Surfaces a bounded-log overflow as a warning on stderr: a truncated
/// event log silently weakens any trace-based diagnosis.
fn warn_dropped_events(trace: &lubt_obs::SolveTrace) {
    if let Some(note) = trace.events_dropped_note() {
        eprintln!("{note}");
    }
}

/// Reads `--trace-event-cap`, rejecting a bare switch.
fn trace_event_cap(parsed: &Parsed) -> Result<Option<usize>, String> {
    if parsed.has("trace-event-cap") && parsed.get("trace-event-cap").is_none() {
        return Err("--trace-event-cap requires a value".to_string());
    }
    parsed.get_usize("trace-event-cap")
}

/// True when either span-profile export was requested.
fn wants_profile(parsed: &Parsed) -> bool {
    wants(parsed, "profile") || wants(parsed, "profile-folded")
}

/// Emits a span-profile document. Everything — the document on a bare
/// flag *and* the confirmation line for a path — goes to stderr, so
/// `--profile` can never perturb the solver's stdout bytes (the
/// profile-on-vs-off byte-identity contract, DESIGN.md §16).
fn emit_profile_doc(parsed: &Parsed, key: &str, label: &str, text: &str) -> Result<(), String> {
    match parsed.get(key) {
        Some(path) => {
            lubt_obs::fsio::write_atomic(path, text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("{label} written to {path}");
        }
        None => eprint!("{text}"),
    }
    Ok(())
}

/// Emits the `--profile` (Chrome trace-event JSON) and `--profile-folded`
/// (collapsed stacks) exports from a solve trace's span tree.
fn emit_profiles(parsed: &Parsed, trace: &lubt_obs::SolveTrace) -> Result<(), String> {
    if wants(parsed, "profile") {
        emit_profile_doc(parsed, "profile", "profile", &trace.spans.to_chrome_trace())?;
    }
    if wants(parsed, "profile-folded") {
        emit_profile_doc(
            parsed,
            "profile-folded",
            "folded profile",
            &trace.spans.to_folded(),
        )?;
    }
    Ok(())
}

/// Rejects a value-carrying flag that appeared bare (`--sizes` with
/// nothing after it would otherwise be silently ignored).
fn reject_bare(parsed: &Parsed, keys: &[&str]) -> Result<(), String> {
    for key in keys {
        if parsed.has(key) && parsed.get(key).is_none() {
            return Err(format!("--{key} requires a value"));
        }
    }
    Ok(())
}

/// Reads `--max-lp-iterations`, rejecting a bare switch (a silently
/// ignored budget is worse than no budget).
fn lp_budget(parsed: &Parsed) -> Result<Option<usize>, String> {
    if parsed.has("max-lp-iterations") && parsed.get("max-lp-iterations").is_none() {
        return Err("--max-lp-iterations requires a value".to_string());
    }
    parsed.get_usize("max-lp-iterations")
}

/// Renders a solver failure, appending the lint-style diagnostic when the
/// error carries one (e.g. LP iteration-limit exhaustion).
fn render_lubt_error(e: &lubt_core::LubtError) -> String {
    match e.diagnostic() {
        Some(d) => format!("{e}\n{d}"),
        None => e.to_string(),
    }
}

fn write_svg(parsed: &Parsed, svg: &str) -> Result<(), String> {
    if let Some(path) = parsed.get("svg") {
        lubt_obs::fsio::write_atomic(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("svg written to {path}");
    }
    Ok(())
}

/// Resolves the LP backend from `--lp-backend` (or its original spelling
/// `--backend`; `--lp-backend` wins when both appear). Shared by `solve`
/// and `batch`.
fn choose_backend(parsed: &Parsed) -> Result<SolverBackend, String> {
    match parsed
        .get("lp-backend")
        .or_else(|| parsed.get("backend"))
        .unwrap_or("simplex")
    {
        "simplex" => Ok(SolverBackend::Simplex),
        "ipm" => Ok(SolverBackend::InteriorPoint),
        "revised" => Ok(SolverBackend::Revised),
        "dp" => Ok(SolverBackend::Dp),
        other => Err(format!(
            "unknown backend {other:?} (simplex|ipm|revised|dp)"
        )),
    }
}

/// Resolves the `--topology` flag (`None` = builder's nearest-neighbor
/// default). Shared by `solve` and `lint` so both analyze the same tree.
fn choose_topology(
    parsed: &Parsed,
    inst: &Instance,
    bounds: &DelayBounds,
) -> Result<Option<Topology>, String> {
    let mode = if inst.source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    match parsed.get("topology").unwrap_or("nn") {
        "nn" => Ok(None), // builder default
        "matching" => Ok(Some(matching_topology(&inst.sinks, mode))),
        "bisect" => Ok(Some(bipartition_topology(&inst.sinks, mode))),
        "aware" => Ok(Some(
            bound_aware_topology(&inst.sinks, inst.source, bounds).map_err(|e| e.to_string())?,
        )),
        other => Err(format!(
            "unknown topology {other:?} (nn|matching|bisect|aware)"
        )),
    }
}

fn cmd_solve(parsed: &Parsed) -> Result<(), String> {
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let m = inst.sinks.len();
    let absolute = parsed.has("absolute");
    let lower = parsed.get_f64("lower")?.unwrap_or(0.0);
    let upper = parsed
        .get_f64("upper")?
        .ok_or_else(|| format!("--upper is required\n{USAGE}"))?;
    let bounds = DelayBounds::uniform(
        m,
        to_absolute(lower, radius, absolute),
        to_absolute(upper, radius, absolute),
    );

    let topology = choose_topology(parsed, &inst, &bounds)?;
    let backend = choose_backend(parsed)?;

    let mut builder = LubtBuilder::new(inst.sinks.clone())
        .bounds(bounds)
        .backend(backend);
    if let Some(src) = inst.source {
        builder = builder.source(src);
    }
    if let Some(t) = topology {
        builder = builder.topology(t);
    }
    if let Some(limit) = lp_budget(parsed)? {
        builder = builder.max_lp_iterations(limit);
    }
    // Intra-solve worker count: 0 = one worker per core, 1 (the default) =
    // the exact sequential path. Output bytes are identical for every
    // value (DESIGN.md §17), so no determinism caveat applies here.
    reject_bare(parsed, &["threads"])?;
    if let Some(threads) = parsed.get_usize("threads")? {
        builder = builder.threads(threads);
    }
    let audit = parsed.has("audit");
    builder = builder.audit(audit);

    let cap = trace_event_cap(parsed)?;
    let tracing = wants(parsed, "trace-json") || wants_profile(parsed) || cap.is_some();
    let (solution_result, trace) = if tracing {
        let rec = std::sync::Arc::new(lubt_obs::TraceRecorder::with_event_cap(
            cap.unwrap_or(lubt_obs::DEFAULT_EVENT_CAP),
        ));
        let r = builder
            .solve_recorded(std::sync::Arc::clone(&rec) as std::sync::Arc<dyn lubt_obs::Recorder>);
        (r, Some(rec.snapshot()))
    } else {
        (builder.solve(), None)
    };
    let solution = match solution_result {
        Ok(s) => s,
        Err(e) => {
            // The trace matters most on failure: emit it before bailing.
            if let Some(trace) = &trace {
                if wants(parsed, "trace-json") {
                    emit_json(parsed, "trace-json", "trace", &trace.to_json())?;
                }
                emit_profiles(parsed, trace)?;
                warn_dropped_events(trace);
            }
            return Err(render_lubt_error(&e));
        }
    };
    solution
        .verify()
        .map_err(|e| format!("verification failed: {e}"))?;

    let (short, long) = solution.delay_range();
    println!("instance        {}", inst.name);
    println!("sinks           {m}");
    println!("radius          {radius:.3}");
    println!("tree cost       {:.3}", solution.cost());
    println!(
        "delay window    [{:.3}, {:.3}]  ({:.3}R .. {:.3}R)",
        short,
        long,
        short / radius,
        long / radius
    );
    println!("skew            {:.6}", solution.skew());
    println!(
        "lp              {} pivots, {} rounds, {}/{} steiner rows",
        solution.report().lp_iterations,
        solution.report().separation_rounds,
        solution.report().steiner_rows,
        solution.report().total_pairs
    );
    if let Some(d) = solution.report().truncation_diagnostic() {
        println!("{d}");
    }
    if audit {
        println!("audit           certificates verified exactly (lp + tree)");
    }
    let stats = analyze(&solution);
    println!(
        "edges           {} tight, {} elongated, {} degenerate; snaked surplus {:.3} ({:.1}% of wire)",
        stats.tight,
        stats.elongated,
        stats.degenerate,
        stats.total_surplus,
        100.0 * stats.surplus_fraction()
    );
    if let Some(path) = parsed.get("json") {
        lubt_obs::fsio::write_atomic(path, &lubt_core::solution_to_json(&solution))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("json written to {path}");
    }
    if let Some(trace) = &trace {
        if wants(parsed, "trace-json") {
            emit_json(parsed, "trace-json", "trace", &trace.to_json())?;
        }
        emit_profiles(parsed, trace)?;
        warn_dropped_events(trace);
    }
    write_svg(parsed, &render_svg(&solution))
}

/// `lubt batch <input>...`: solves many instances through the
/// work-stealing pool. One delay window (shared, per-instance radius
/// normalized unless `--absolute`) applies to every input. Output carries
/// no timings and the per-instance solves are bit-for-bit independent of
/// `--threads`, so two runs differing only in thread count print identical
/// bytes. Exits non-zero when any instance fails.
fn cmd_batch(parsed: &Parsed) -> Result<(), String> {
    let inputs = &parsed.positional[1..];
    if inputs.is_empty() {
        return Err(format!("missing <input>...\n{USAGE}"));
    }
    if parsed.has("threads") && parsed.get("threads").is_none() {
        return Err("--threads requires a value".to_string());
    }
    let threads = match parsed.get_usize("threads")? {
        Some(0) => {
            return Err(
                "--threads must be at least 1 (omit the flag to use every core)".to_string(),
            )
        }
        Some(n) => n,
        None => lubt_par::available_parallelism(),
    };
    let absolute = parsed.has("absolute");
    let lower = parsed.get_f64("lower")?.unwrap_or(0.0);
    let upper = parsed
        .get_f64("upper")?
        .ok_or_else(|| format!("--upper is required\n{USAGE}"))?;
    let backend = choose_backend(parsed)?;

    // Assemble every problem up front (cheap), then hand the whole slice to
    // the pool: the parallelism budget is spent across instances.
    let mut names = Vec::with_capacity(inputs.len());
    let mut problems = Vec::with_capacity(inputs.len());
    for path in inputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let inst = data_io::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let radius = inst.radius();
        let bounds = DelayBounds::uniform(
            inst.sinks.len(),
            to_absolute(lower, radius, absolute),
            to_absolute(upper, radius, absolute),
        );
        let topology = choose_topology(parsed, &inst, &bounds)?;
        let mut builder = LubtBuilder::new(inst.sinks.clone()).bounds(bounds);
        if let Some(src) = inst.source {
            builder = builder.source(src);
        }
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        names.push(inst.name.clone());
        problems.push(builder.build().map_err(|e| format!("{path}: {e}"))?);
    }

    let audit = parsed.has("audit");
    let mut solver = EbfSolver::new().with_backend(backend).with_audit(audit);
    if let Some(limit) = lp_budget(parsed)? {
        solver = solver.with_max_lp_iterations(limit);
    }
    let cap = trace_event_cap(parsed)?;
    let batch = BatchSolver::new()
        .with_solver(solver)
        .with_threads(threads)
        .with_event_cap(cap.unwrap_or(lubt_obs::DEFAULT_EVENT_CAP));
    // Only the metrics/profile documents (timings, scheduling counters)
    // may vary with `--threads`; results and the default stdout stay
    // byte-identical.
    let tracing = wants(parsed, "metrics")
        || wants(parsed, "metrics-prom")
        || wants_profile(parsed)
        || cap.is_some();
    let (results, trace) = if tracing {
        let (r, t) = batch.solve_all_traced(&problems);
        (r, Some(t))
    } else {
        (batch.solve_all(&problems), None)
    };

    let mut failures = 0usize;
    let mut json = String::from("{\n  \"instances\": [\n");
    for (k, (name, result)) in names.iter().zip(&results).enumerate() {
        match result {
            Ok(solution) => {
                // Under --audit the LP certificates were already verified in
                // the solver; the embedding is audited here per instance.
                let tree_findings = if audit {
                    solution.audit_tree()
                } else {
                    Vec::new()
                };
                if !tree_findings.is_empty() {
                    failures += 1;
                    println!("{name}  tree audit failed:");
                    for d in &tree_findings {
                        println!("{d}");
                    }
                    let _ = std::fmt::Write::write_fmt(
                        &mut json,
                        format_args!(
                            "    {{\"name\": {name:?}, \"status\": \"error\", \
                             \"error\": \"tree audit failed\"}}"
                        ),
                    );
                } else if let Err(e) = solution.verify() {
                    failures += 1;
                    println!("{name}  verification failed: {e}");
                    let _ = std::fmt::Write::write_fmt(
                        &mut json,
                        format_args!(
                            "    {{\"name\": {name:?}, \"status\": \"error\", \
                             \"error\": \"verification failed\"}}"
                        ),
                    );
                } else {
                    println!(
                        "{name}  cost {:.3}  skew {:.6}  rounds {}  rows {}/{}",
                        solution.cost(),
                        solution.skew(),
                        solution.report().separation_rounds,
                        solution.report().steiner_rows,
                        solution.report().total_pairs
                    );
                    if let Some(d) = solution.report().truncation_diagnostic() {
                        println!("{d}");
                    }
                    let _ = std::fmt::Write::write_fmt(
                        &mut json,
                        format_args!(
                            "    {{\"name\": {name:?}, \"status\": \"ok\", \"solution\": {}}}",
                            lubt_core::solution_to_json(solution).trim_end()
                        ),
                    );
                }
            }
            Err(e) => {
                failures += 1;
                println!("{name}  error: {e}");
                if let Some(d) = e.diagnostic() {
                    println!("{d}");
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut json,
                    format_args!(
                        "    {{\"name\": {name:?}, \"status\": \"error\", \"error\": {:?}}}",
                        e.to_string()
                    ),
                );
            }
        }
        json.push_str(if k + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    println!("{}/{} solved", results.len() - failures, results.len());

    if let Some(path) = parsed.get("json") {
        lubt_obs::fsio::write_atomic(path, &json)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("json written to {path}");
    }
    if let Some(trace) = &trace {
        if wants(parsed, "metrics") {
            emit_diagnostic(parsed, "metrics", "metrics", &trace.to_json())?;
        }
        if wants(parsed, "metrics-prom") {
            emit_diagnostic(
                parsed,
                "metrics-prom",
                "prometheus metrics",
                &trace.to_prometheus(),
            )?;
        }
        emit_profiles(parsed, trace)?;
        warn_dropped_events(trace);
    }

    if failures > 0 {
        Err(format!(
            "{failures} of {} instance(s) failed",
            results.len()
        ))
    } else {
        Ok(())
    }
}

/// `lubt audit <input>`: solves the instance with the exact certificate
/// audit enabled and reports what was proven. Every LP outcome must carry
/// a verifying proof object — an optimality certificate (basis + duals,
/// checked for primal/dual feasibility and complementary slackness in
/// exact rational arithmetic) or a Farkas infeasibility ray — and the
/// embedded tree's sink pathlengths are re-derived exactly against their
/// `[l, u]` windows. The pre-solve lint is bypassed so hopeless instances
/// reach the LP and produce a ray instead of a lint rejection.
///
/// Exits non-zero only when a certificate fails to verify; a *verified*
/// infeasibility is a successful audit of a negative result.
fn cmd_audit(parsed: &Parsed) -> Result<(), String> {
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let m = inst.sinks.len();
    let absolute = parsed.has("absolute");
    let lower = parsed.get_f64("lower")?.unwrap_or(0.0);
    let upper = parsed
        .get_f64("upper")?
        .ok_or_else(|| format!("--upper is required\n{USAGE}"))?;
    let bounds = DelayBounds::uniform(
        m,
        to_absolute(lower, radius, absolute),
        to_absolute(upper, radius, absolute),
    );
    let topology = choose_topology(parsed, &inst, &bounds)?;
    let backend = choose_backend(parsed)?;
    let backend_name = match backend {
        SolverBackend::Simplex => "simplex",
        SolverBackend::InteriorPoint => "ipm",
        SolverBackend::Revised => "revised",
        SolverBackend::Dp => "dp",
    };

    let mut builder = LubtBuilder::new(inst.sinks.clone())
        .bounds(bounds)
        .backend(backend)
        .audit(true)
        .prelint(false);
    if let Some(src) = inst.source {
        builder = builder.source(src);
    }
    if let Some(t) = topology {
        builder = builder.topology(t);
    }
    if let Some(limit) = lp_budget(parsed)? {
        builder = builder.max_lp_iterations(limit);
    }

    let (result, trace) = builder.solve_traced();
    let (status, cost, findings) = match &result {
        Ok(solution) => ("verified", Some(solution.cost()), Vec::new()),
        Err(lubt_core::LubtError::Infeasible) => ("infeasible", None, Vec::new()),
        Err(lubt_core::LubtError::Audit(diags)) => ("failed", None, diags.clone()),
        Err(e) => return Err(render_lubt_error(e)),
    };
    let counters = [
        ("lp_optimality_verified", "audit.optimality_verified"),
        ("lp_primal_verified", "audit.primal_verified"),
        ("lp_farkas_verified", "audit.farkas_verified"),
        ("tree_verified", "audit.tree_verified"),
        ("audit_failures", "audit.failures"),
    ];

    if wants(parsed, "json") {
        let mut json = String::from("{\n  \"schema\": \"lubt-audit-v1\",\n");
        json.push_str(&format!(
            "  \"instance\": \"{}\",\n",
            lubt_obs::json::json_escape(&inst.name)
        ));
        json.push_str(&format!("  \"backend\": \"{backend_name}\",\n"));
        json.push_str(&format!("  \"status\": \"{status}\",\n"));
        json.push_str(&format!(
            "  \"cost\": {},\n",
            cost.map_or_else(|| "null".to_string(), lubt_obs::json::json_f64)
        ));
        for (field, key) in counters {
            json.push_str(&format!("  \"{field}\": {},\n", trace.counter(key)));
        }
        json.push_str(&format!(
            "  \"diagnostics\": {}\n}}\n",
            lubt_lint::diagnostics_to_json(&findings).replace('\n', "\n  ")
        ));
        emit_json(parsed, "json", "audit", &json)?;
    } else {
        println!("instance        {}", inst.name);
        println!("sinks           {m}");
        println!("backend         {backend_name}");
        println!("audit status    {status}");
        if let Some(c) = cost {
            println!("tree cost       {c:.3}");
        }
        for (field, key) in counters {
            let n = trace.counter(key);
            if n > 0 {
                println!("{field:<22} {n}");
            }
        }
        for d in &findings {
            println!("{d}");
        }
    }

    if status == "failed" {
        Err(format!(
            "certificate audit failed with {} deny-level finding(s)",
            findings.iter().filter(|d| d.is_deny()).count()
        ))
    } else {
        Ok(())
    }
}

/// `lubt profile <input>`: solves the instance with span profiling on and
/// exports the span tree — Chrome trace-event JSON (default; loads in
/// `chrome://tracing` / Perfetto), collapsed stacks for flamegraph
/// tooling, an indented human-readable tree, or the duration-free
/// `shape` lines the CI determinism job `cmp`s across thread counts.
/// With `--check-folded file` it instead lints an existing folded
/// artifact (the CI validity gate) and solves nothing.
fn cmd_profile(parsed: &Parsed) -> Result<(), String> {
    reject_bare(parsed, &["format", "out", "check-folded", "threads"])?;
    if let Some(path) = parsed.get("check-folded") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        lubt_obs::lint_folded(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: folded profile ok ({} line(s))",
            text.lines().count()
        );
        return Ok(());
    }
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let m = inst.sinks.len();
    let absolute = parsed.has("absolute");
    let lower = parsed.get_f64("lower")?.unwrap_or(0.0);
    let upper = parsed
        .get_f64("upper")?
        .ok_or_else(|| format!("--upper is required\n{USAGE}"))?;
    let bounds = DelayBounds::uniform(
        m,
        to_absolute(lower, radius, absolute),
        to_absolute(upper, radius, absolute),
    );
    let topology = choose_topology(parsed, &inst, &bounds)?;
    let backend = choose_backend(parsed)?;
    let mut builder = LubtBuilder::new(inst.sinks.clone())
        .bounds(bounds)
        .backend(backend);
    if let Some(src) = inst.source {
        builder = builder.source(src);
    }
    if let Some(t) = topology {
        builder = builder.topology(t);
    }
    if let Some(limit) = lp_budget(parsed)? {
        builder = builder.max_lp_iterations(limit);
    }
    if let Some(threads) = parsed.get_usize("threads")? {
        builder = builder.threads(threads);
    }
    let cap = trace_event_cap(parsed)?;
    let rec = std::sync::Arc::new(lubt_obs::TraceRecorder::with_event_cap(
        cap.unwrap_or(lubt_obs::DEFAULT_EVENT_CAP),
    ));
    let result = builder
        .solve_recorded(std::sync::Arc::clone(&rec) as std::sync::Arc<dyn lubt_obs::Recorder>);
    let trace = rec.snapshot();
    let doc = match parsed.get("format").unwrap_or("chrome") {
        "chrome" => trace.spans.to_chrome_trace(),
        "folded" => trace.spans.to_folded(),
        "tree" => trace.spans.render_text(),
        "shape" => trace.spans.shape_text(),
        other => {
            return Err(format!(
                "unknown format {other:?} (chrome|folded|tree|shape)"
            ))
        }
    };
    match parsed.get("out") {
        Some(path) => {
            lubt_obs::fsio::write_atomic(path, &doc)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("profile written to {path}");
        }
        None => print!("{doc}"),
    }
    warn_dropped_events(&trace);
    // The profile itself is the product and was exported above even for
    // a failed solve (failures are where profiles matter most), but a
    // failure still exits non-zero.
    result.map(|_| ()).map_err(|e| render_lubt_error(&e))
}

/// `lubt bench`: runs the pinned benchmark suite (both LP backends, a
/// serial and a parallel leg with a built-in determinism cross-check) and
/// writes the schema-versioned `lubt-bench-v1` document, default
/// `BENCH_<label>.json`. The document's `"deterministic"` section is
/// byte-identical across thread counts and machines; wall clock and
/// machine facts live under `"determinism_exempt"`.
fn cmd_bench(parsed: &Parsed) -> Result<(), String> {
    reject_bare(
        parsed,
        &["label", "threads", "sizes", "interior-cap", "out"],
    )?;
    let mut config = lubt_bench::suite::SuiteConfig {
        label: parsed.get("label").unwrap_or("local").to_string(),
        ..lubt_bench::suite::SuiteConfig::default()
    };
    match parsed.get_usize("threads")? {
        Some(0) => {
            return Err(
                "--threads must be at least 1 (omit the flag to use every core)".to_string(),
            )
        }
        Some(n) => config.threads = n,
        None => {}
    }
    if let Some(csv) = parsed.get("sizes") {
        config.sizes = csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("--sizes expects integers, got {s:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if config.sizes.is_empty() {
            return Err("--sizes must name at least one size".to_string());
        }
    }
    if let Some(cap) = parsed.get_usize("interior-cap")? {
        config.interior_cap = cap;
    }
    config.full = parsed.has("full");
    config.audit = parsed.has("audit");
    config.serve = parsed.has("serve");
    config.profile = parsed.has("profile");
    config.par_intra = parsed.has("par-intra");
    let run = lubt_bench::suite::run(&config)?;
    let out = parsed
        .get("out")
        .map_or_else(|| format!("BENCH_{}.json", run.label), String::from);
    lubt_obs::fsio::write_atomic(&out, &run.to_json())
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "bench \"{}\": {} solves over {} instance/backend rows (sizes {:?}, {} worker(s)); \
         written to {out}",
        run.label,
        run.aggregate.solves,
        run.rows.len(),
        run.sizes,
        run.threads
    );
    if let Some(serve) = &run.serve {
        println!(
            "serve group ({} workers, {} requests/pass, byte-identical across passes):",
            serve.workers, serve.requests_per_pass
        );
        for (name, pass) in &serve.passes {
            println!(
                "  {name:<6} p50 {:>9} ns   p99 {:>9} ns   {:>8.1} req/s",
                pass.latency.percentile(0.50).unwrap_or(0),
                pass.latency.percentile(0.99).unwrap_or(0),
                pass.throughput_rps()
            );
        }
    }
    Ok(())
}

/// `lubt report`: diffs two benchmark documents and exits non-zero when
/// the current run regressed. Deterministic counters compare exactly;
/// wall-clock totals compare against `--timing-threshold` (default 25%
/// slack) unless `--ignore-timings`.
fn cmd_report(parsed: &Parsed) -> Result<(), String> {
    reject_bare(parsed, &["baseline", "current", "timing-threshold"])?;
    let baseline_path = parsed
        .get("baseline")
        .ok_or_else(|| format!("--baseline is required\n{USAGE}"))?;
    let current_path = parsed
        .get("current")
        .ok_or_else(|| format!("--current is required\n{USAGE}"))?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let current = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read {current_path}: {e}"))?;
    let mut opts = lubt_bench::report::ReportOptions {
        ignore_timings: parsed.has("ignore-timings"),
        ..lubt_bench::report::ReportOptions::default()
    };
    if let Some(t) = parsed.get_f64("timing-threshold")? {
        if t <= 0.0 || t.is_nan() {
            return Err("--timing-threshold must be positive".to_string());
        }
        opts.timing_threshold = t;
    }
    let report = lubt_bench::report::compare(&baseline, &current, &opts)?;
    if wants(parsed, "json") {
        emit_json(parsed, "json", "report", &report.to_json())?;
    } else {
        print!("{}", report.to_text());
    }
    if report.failed() {
        Err(format!(
            "benchmark regression: {} deterministic, {} timing (see report above)",
            report.regressions(),
            report.timing_regressions()
        ))
    } else {
        Ok(())
    }
}

/// `lubt lint <input>`: static analysis without solving. Prints every
/// diagnostic (human-readable, or JSON with `--json`), exits non-zero when
/// any deny-level finding proves the instance unusable.
fn cmd_lint(parsed: &Parsed) -> Result<(), String> {
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let m = inst.sinks.len();
    let absolute = parsed.has("absolute");
    // A bare `--lower`/`--upper` parses as a switch; silently falling back
    // to the default window would report "clean" for bounds never applied.
    for key in ["lower", "upper"] {
        if parsed.has(key) && parsed.get(key).is_none() {
            return Err(format!("--{key} requires a value"));
        }
    }
    let lower = to_absolute(parsed.get_f64("lower")?.unwrap_or(0.0), radius, absolute);
    let upper = match parsed.get_f64("upper")? {
        Some(u) => to_absolute(u, radius, absolute),
        None => f64::INFINITY,
    };
    let bounds = DelayBounds::from_pairs(vec![(lower, upper); m]).map_err(|e| e.to_string())?;

    let topology = choose_topology(parsed, &inst, &bounds)?;
    let mut builder = LubtBuilder::new(inst.sinks.clone()).bounds(bounds);
    if let Some(src) = inst.source {
        builder = builder.source(src);
    }
    if let Some(t) = topology {
        builder = builder.topology(t);
    }
    let problem = builder.build().map_err(|e| e.to_string())?;
    let diags = problem.lint();

    if parsed.has("json") || parsed.get("json").is_some() {
        let json = lubt_lint::diagnostics_to_json(&diags);
        match parsed.get("json") {
            Some(path) => {
                lubt_obs::fsio::write_atomic(path, &json)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("json written to {path}");
            }
            None => println!("{json}"),
        }
    } else {
        println!("instance        {}", inst.name);
        println!("sinks           {m}");
        if diags.is_empty() {
            println!("lint            clean");
        }
        for d in &diags {
            println!("{d}");
        }
    }

    let denials = diags.iter().filter(|d| d.is_deny()).count();
    if denials > 0 {
        Err(format!(
            "{denials} deny-level lint finding(s): no LUBT exists for these bounds and topology"
        ))
    } else {
        Ok(())
    }
}

/// `lubt serve`: boots the long-lived solver daemon and blocks until a
/// graceful shutdown is signaled over the wire (`--allow-shutdown`).
/// The listening line is flushed eagerly so scripted harnesses can read
/// the resolved port even when stdout is a pipe.
fn cmd_serve(parsed: &Parsed) -> Result<(), String> {
    reject_bare(
        parsed,
        &[
            "addr",
            "workers",
            "queue-depth",
            "cache-entries",
            "session-entries",
            "max-request-bytes",
            "default-deadline-ms",
            "trace-event-cap",
        ],
    )?;
    let mut config = lubt_serve::ServeConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:4600").to_string(),
        allow_shutdown: parsed.has("allow-shutdown"),
        ..lubt_serve::ServeConfig::default()
    };
    if let Some(cap) = parsed.get_usize("trace-event-cap")? {
        config.trace_event_cap = cap;
    }
    if wants(parsed, "access-log") {
        // A bare `--access-log` gets the conventional filename.
        config.access_log = Some(
            parsed
                .get("access-log")
                .unwrap_or("lubt-access.jsonl")
                .to_string(),
        );
    }
    if let Some(n) = parsed.get_usize("workers")? {
        config.workers = n;
    }
    if let Some(n) = parsed.get_usize("queue-depth")? {
        config.queue_depth = n;
    }
    if let Some(n) = parsed.get_usize("cache-entries")? {
        config.cache_entries = n;
    }
    if let Some(n) = parsed.get_usize("session-entries")? {
        config.session_entries = n;
    }
    if let Some(n) = parsed.get_usize("max-request-bytes")? {
        config.max_request_bytes = n;
    }
    if let Some(ms) = parsed.get_usize("default-deadline-ms")? {
        config.default_deadline_ms = Some(ms as u64);
    }
    let server = lubt_serve::Server::start(config.clone())
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "lubt-serve {} listening on {} ({} workers, queue {}, cache {}, sessions {})",
        lubt_serve::PROTOCOL,
        server.addr(),
        config.effective_workers(),
        config.queue_depth,
        config.cache_entries,
        config.session_entries
    );
    if let Some(path) = &config.access_log {
        println!("access log appending to {path}");
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.wait();
    println!("lubt-serve drained and stopped");
    Ok(())
}

fn cmd_zeroskew(parsed: &Parsed) -> Result<(), String> {
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let absolute = parsed.has("absolute");
    let target = parsed
        .get_f64("target")?
        .map(|t| to_absolute(t, radius, absolute));
    let zst = zero_skew_tree(&inst.sinks, inst.source, None, target).map_err(|e| e.to_string())?;
    println!("instance        {}", inst.name);
    println!("tree cost       {:.3}", zst.cost());
    println!(
        "common delay    {:.3}  ({:.3}R)",
        zst.delay,
        zst.delay / radius
    );
    println!("skew            {:.3e}", zst.skew());
    if parsed.get("svg").is_some() {
        let svg = lubt_core::render_tree_svg(
            &zst.topology,
            &zst.positions,
            &zst.edge_lengths,
            &lubt_core::SvgOptions::default(),
        );
        write_svg(parsed, &svg)?;
    }
    Ok(())
}

fn cmd_bst(parsed: &Parsed) -> Result<(), String> {
    let inst = load_instance(parsed)?;
    let radius = inst.radius();
    let absolute = parsed.has("absolute");
    let skew = parsed
        .get_f64("skew")?
        .ok_or_else(|| format!("--skew is required\n{USAGE}"))?;
    let bst = bounded_skew_tree(
        &inst.sinks,
        inst.source,
        to_absolute(skew, radius, absolute),
    )
    .map_err(|e| e.to_string())?;
    let (short, long) = bst.delay_range();
    println!("instance        {}", inst.name);
    println!("skew budget     {:.3}", bst.skew_bound);
    println!("tree cost       {:.3}", bst.cost());
    println!(
        "delay window    [{:.3}, {:.3}]  ({:.3}R .. {:.3}R)",
        short,
        long,
        short / radius,
        long / radius
    );
    println!("realized skew   {:.6}", bst.skew());
    Ok(())
}

fn cmd_gen(parsed: &Parsed) -> Result<(), String> {
    let kind = parsed
        .positional
        .get(1)
        .ok_or_else(|| format!("missing generator name\n{USAGE}"))?;
    let sinks = parsed.get_usize("sinks")?;
    let seed = parsed.get_usize("seed")?.unwrap_or(1) as u64;
    let die = parsed.get_f64("die")?.unwrap_or(10_000.0);
    let inst = match kind.as_str() {
        "prim1" => synthetic::prim1(),
        "prim2" => synthetic::prim2(),
        "r1" => synthetic::r1(),
        "r2" => synthetic::r2(),
        "r3" => synthetic::r3(),
        "r4" => synthetic::r4(),
        "r5" => synthetic::r5(),
        "uniform" => synthetic::uniform("uniform-cli", sinks.unwrap_or(64), die, seed),
        "clustered" => synthetic::clustered("clustered-cli", sinks.unwrap_or(64), die, 8, seed),
        other => return Err(format!("unknown generator {other:?}\n{USAGE}")),
    };
    let inst = match sinks {
        Some(k) if k < inst.sinks.len() => inst.subsample(k),
        _ => inst,
    };
    let text = data_io::write(&inst);
    match parsed.get("out") {
        Some(path) => {
            lubt_obs::fsio::write_atomic(path, &text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} sinks to {path}", inst.sinks.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}
