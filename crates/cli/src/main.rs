//! `lubt` — command-line front end for the LUBT routing-tree toolkit.
//!
//! ```text
//! lubt solve <input> --lower 0.9 --upper 1.3 [--absolute] [--topology nn|matching|bisect|aware]
//!                     [--backend simplex|ipm] [--max-lp-iterations N] [--svg out.svg]
//!                     [--trace-json [out.json]] [--audit]
//! lubt batch <input>... --lower L --upper U [--threads N] [--audit] [--metrics [out.json]]
//!                       [--metrics-prom [out.prom]]
//! lubt audit <input> --lower L --upper U [--absolute] [--lp-backend simplex|ipm|revised|dp]
//!                    [--json [out.json]]
//! lubt bench [--label L] [--threads N] [--sizes A,B,C] [--full] [--audit] [--out file]
//! lubt report --baseline A.json --current B.json [--ignore-timings] [--json [out.json]]
//! lubt lint <input> [--lower L] [--upper U] [--absolute] [--json [out.json]]
//! lubt zeroskew <input> [--target T] [--svg out.svg]
//! lubt bst <input> --skew 0.1 [--absolute]
//! lubt gen <prim1|prim2|r1|r3|uniform|clustered> [--sinks N] [--seed K] [--die D] [--out file]
//! ```
//!
//! `<input>` is the plain-text instance format of `lubt-data` (`name`,
//! optional `source x y`, `sink x y` lines). Bounds and skew values are
//! normalized to the instance radius unless `--absolute` is given.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
