//! Minimal flag parsing: `--key value` pairs and positional arguments.

use std::collections::HashMap;

/// Parsed command line: positionals in order, flags as a map.
#[derive(Debug, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Splits `argv` into positionals, `--key value` flags and bare `--switch`
/// toggles (a `--key` followed by another `--…` or nothing is a switch).
pub fn parse(argv: &[String]) -> Parsed {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            let next_is_value = argv.get(i + 1).is_some_and(|n| !n.starts_with("--"));
            if next_is_value {
                out.flags.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                out.switches.push(key.to_string());
                i += 1;
            }
        } else {
            out.positional.push(a.clone());
            i += 1;
        }
    }
    out
}

impl Parsed {
    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Float flag.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Integer flag.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Bare switch presence (`--absolute`).
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn mixed_parse() {
        let p = parse(&argv("solve file.pts --lower 0.9 --absolute --upper 1.3"));
        assert_eq!(p.positional, vec!["solve", "file.pts"]);
        assert_eq!(p.get_f64("lower").unwrap(), Some(0.9));
        assert_eq!(p.get_f64("upper").unwrap(), Some(1.3));
        assert!(p.has("absolute"));
        assert!(!p.has("svg"));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn bad_numbers_error() {
        let p = parse(&argv("--lower abc"));
        assert!(p.get_f64("lower").is_err());
        let p = parse(&argv("--sinks 1.5"));
        assert!(p.get_usize("sinks").is_err());
    }

    #[test]
    fn trailing_switch() {
        let p = parse(&argv("gen prim1 --absolute"));
        assert!(p.has("absolute"));
        assert_eq!(p.positional, vec!["gen", "prim1"]);
    }
}
