//! End-to-end tests of the `lubt` binary.

use std::path::PathBuf;
use std::process::Command;

fn lubt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lubt"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lubt-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = lubt().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("lubt solve"));
    assert!(text.contains("lubt gen"));
}

#[test]
fn unknown_command_fails() {
    let out = lubt().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn gen_solve_roundtrip_with_svg() {
    let pts = tmp("inst.pts");
    let svg = tmp("tree.svg");

    // Generate a small instance.
    let out = lubt()
        .args([
            "gen", "uniform", "--sinks", "12", "--seed", "7", "--die", "1000", "--out",
        ])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Solve it with a normalized window and write an SVG.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--svg"])
        .arg(&svg)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tree cost"));
    assert!(text.contains("delay window"));
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));

    let _ = std::fs::remove_file(&pts);
    let _ = std::fs::remove_file(&svg);
}

#[test]
fn zeroskew_and_bst_commands() {
    let pts = tmp("inst2.pts");
    let out = lubt()
        .args(["gen", "clustered", "--sinks", "10", "--seed", "3", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = lubt().args(["zeroskew"]).arg(&pts).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("common delay"));

    let out = lubt()
        .args(["bst"])
        .arg(&pts)
        .args(["--skew", "0.1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("realized skew"));

    let _ = std::fs::remove_file(&pts);
}

#[test]
fn infeasible_window_reports_cleanly() {
    let pts = tmp("inst3.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "6", "--seed", "1", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    // u = 0.5R violates Equation 3: must fail with the certificate message.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--upper", "0.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no LUBT exists"), "stderr: {err}");

    let _ = std::fs::remove_file(&pts);
}

#[test]
fn lint_reports_deny_findings_with_nonzero_exit() {
    let pts = tmp("inst5.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "6", "--seed", "1", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    // u = 0.5R violates Equation 3: deny-level finding, non-zero exit,
    // and the offending sinks named on stdout.
    let out = lubt()
        .args(["lint"])
        .arg(&pts)
        .args(["--upper", "0.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[sink-reachability]"), "stdout: {text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no LUBT exists"), "stderr: {err}");

    let _ = std::fs::remove_file(&pts);
}

#[test]
fn lint_clean_instance_exits_zero_and_emits_json() {
    let pts = tmp("inst6.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "6", "--seed", "1", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Generous window: no findings, exit 0.
    let out = lubt()
        .args(["lint"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("lint            clean"), "stdout: {text}");

    // JSON mode on an infeasible window: the array carries the pass slug.
    let out = lubt()
        .args(["lint"])
        .arg(&pts)
        .args(["--upper", "0.5", "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.trim_start().starts_with('['), "stdout: {text}");
    assert!(
        text.contains("\"pass\": \"sink-reachability\""),
        "stdout: {text}"
    );
    assert!(text.contains("\"level\": \"error\""), "stdout: {text}");

    let _ = std::fs::remove_file(&pts);
}

/// Generates `count` small instances and returns their paths.
fn gen_batch(tag: &str, count: usize, sinks: usize) -> Vec<PathBuf> {
    (0..count)
        .map(|k| {
            let pts = tmp(&format!("{tag}-{k}.pts"));
            let out = lubt()
                .args([
                    "gen",
                    if k % 2 == 0 { "uniform" } else { "clustered" },
                    "--sinks",
                ])
                .arg(sinks.to_string())
                .args(["--seed"])
                .arg((k + 1).to_string())
                .args(["--out"])
                .arg(&pts)
                .output()
                .unwrap();
            assert!(out.status.success());
            pts
        })
        .collect()
}

#[test]
fn batch_rejects_zero_threads() {
    let pts = gen_batch("batch-zero", 1, 6);
    let out = lubt()
        .args(["batch"])
        .args(&pts)
        .args(["--upper", "1.5", "--threads", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--threads must be at least 1"),
        "stderr: {err}"
    );
    for p in pts {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_output_is_identical_across_thread_counts() {
    let pts = gen_batch("batch-det", 12, 8);
    let json1 = tmp("batch-det-1.json");
    let json8 = tmp("batch-det-8.json");
    let run = |threads: &str, json: &PathBuf| {
        let out = lubt()
            .args(["batch"])
            .args(&pts)
            .args(["--lower", "0.9", "--upper", "1.5", "--threads", threads])
            .args(["--json"])
            .arg(json)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let stdout1 = run("1", &json1);
    let stdout8 = run("8", &json8);
    // The JSON path differs between invocations, so strip its report line
    // before comparing; everything else must match byte for byte.
    let strip = |bytes: &[u8]| -> String {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("json written to"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&stdout1), strip(&stdout8));
    let j1 = std::fs::read(&json1).unwrap();
    let j8 = std::fs::read(&json8).unwrap();
    assert_eq!(j1, j8, "batch JSON differs between 1 and 8 threads");
    assert!(String::from_utf8(j1)
        .unwrap()
        .contains("\"status\": \"ok\""));
    for p in pts {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&json1);
    let _ = std::fs::remove_file(&json8);
}

#[test]
fn batch_mixed_feasibility_exits_nonzero_but_reports_every_instance() {
    let pts = gen_batch("batch-mixed", 3, 6);
    // u = 0.5R is infeasible for every instance (Equation 3), but the batch
    // must still report all of them before failing.
    let out = lubt()
        .args(["batch"])
        .args(&pts)
        .args(["--upper", "0.5", "--threads", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        text.matches("error:").count(),
        3,
        "every instance reported: {text}"
    );
    assert!(text.contains("0/3 solved"), "stdout: {text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("3 of 3 instance(s) failed"), "stderr: {err}");
    for p in pts {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn solve_trace_json_is_valid_and_reports_the_solve() {
    let pts = tmp("trace1.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "8", "--seed", "2", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    // `--trace-json out.json` writes the trace to a file.
    let trace_path = tmp("trace1.json");
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--trace-json"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tree cost"));
    assert!(text.contains("trace written to"), "stdout: {text}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    lubt_obs::json::validate(&trace).expect("trace JSON must be strictly valid");
    for key in [
        "\"schema\": \"lubt-trace-v1\"",
        "simplex.pivots",
        "ebf.rounds",
        "embed.fr_constructions",
        "time.lp",
    ] {
        assert!(trace.contains(key), "trace missing {key}: {trace}");
    }

    // A bare `--trace-json` prints the trace to stdout after the report.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--trace-json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let json_start = text.find("{\n").expect("trace JSON on stdout");
    lubt_obs::json::validate(&text[json_start..]).expect("stdout trace must be strictly valid");

    let _ = std::fs::remove_file(&pts);
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn solve_iteration_limit_fails_with_diagnostic_but_still_writes_the_trace() {
    let pts = tmp("limit1.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "8", "--seed", "4", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    let trace_path = tmp("limit1.json");
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args([
            "--lower",
            "0.9",
            "--upper",
            "1.4",
            "--max-lp-iterations",
            "2",
        ])
        .args(["--trace-json"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("iteration limit 2"), "stderr: {err}");
    assert!(err.contains("error[iteration-limit]"), "stderr: {err}");
    // The trace survives the failed solve and records the exhaustion.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    lubt_obs::json::validate(&trace).expect("failure trace must be strictly valid");
    assert!(
        trace.contains("simplex.iteration_limit_hits"),
        "trace: {trace}"
    );

    // A bare `--max-lp-iterations` is rejected, not silently ignored.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--upper", "1.4", "--max-lp-iterations"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--max-lp-iterations requires a value"),
        "stderr: {err}"
    );

    let _ = std::fs::remove_file(&pts);
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn batch_metrics_are_valid_json_and_leave_the_report_deterministic() {
    let pts = gen_batch("batch-metrics", 6, 8);
    let run = |threads: &str, metrics: &PathBuf| {
        let out = lubt()
            .args(["batch"])
            .args(&pts)
            .args(["--lower", "0.9", "--upper", "1.5", "--threads", threads])
            .args(["--metrics"])
            .arg(metrics)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let m1 = tmp("batch-metrics-1.json");
    let m8 = tmp("batch-metrics-8.json");
    let stdout1 = run("1", &m1);
    let stdout8 = run("8", &m8);

    // Timings and scheduling counters live in the metrics file; the report
    // on stdout stays byte-identical across thread counts.
    let strip = |bytes: &[u8]| -> String {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("metrics written to"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&stdout1), strip(&stdout8));

    for path in [&m1, &m8] {
        let metrics = std::fs::read_to_string(path).unwrap();
        lubt_obs::json::validate(&metrics).expect("metrics must be strictly valid JSON");
        for key in ["batch.instances", "batch.solved", "simplex.solves"] {
            assert!(metrics.contains(key), "metrics missing {key}: {metrics}");
        }
    }

    for p in pts {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&m1);
    let _ = std::fs::remove_file(&m8);
}

#[test]
fn alternate_topologies_and_backend() {
    let pts = tmp("inst4.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "8", "--seed", "5", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    for topo in ["nn", "matching", "bisect", "aware"] {
        let out = lubt()
            .args(["solve"])
            .arg(&pts)
            .args(["--lower", "0.8", "--upper", "1.5", "--topology", topo])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "topology {topo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--upper", "1.5", "--backend", "ipm"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&pts);
}

#[test]
fn revised_backend_via_cli_solves_batches_and_rejects_unknown() {
    // Usage advertises the new backend and the bench --full switch.
    let help = lubt().arg("help").output().unwrap();
    let text = String::from_utf8(help.stdout).unwrap();
    assert!(
        text.contains("--lp-backend simplex|ipm|revised|dp"),
        "{text}"
    );
    assert!(text.contains("--full"), "{text}");

    let pts = gen_batch("revised-cli", 4, 8);
    let out = lubt()
        .args(["solve"])
        .arg(&pts[0])
        .args([
            "--lower",
            "0.9",
            "--upper",
            "1.5",
            "--lp-backend",
            "revised",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Batch output through the revised backend must stay byte-identical
    // across thread counts (the determinism contract at the binary level).
    let run = |threads: &str| {
        let out = lubt()
            .args(["batch"])
            .args(&pts)
            .args(["--lower", "0.9", "--upper", "1.5"])
            .args(["--lp-backend", "revised", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    assert_eq!(run("1"), run("8"), "revised batch differs across threads");

    let out = lubt()
        .args(["solve"])
        .arg(&pts[0])
        .args(["--upper", "1.5", "--lp-backend", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown backend"), "stderr: {err}");
    // The rejection enumerates every valid backend, dp included.
    assert!(err.contains("simplex|ipm|revised|dp"), "stderr: {err}");

    for p in pts {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn dp_backend_via_cli_solves_batches_and_audits() {
    let pts = gen_batch("dp-cli", 4, 8);
    // `--lp-backend dp` solves a single instance.
    let out = lubt()
        .args(["solve"])
        .arg(&pts[0])
        .args(["--lower", "0.9", "--upper", "1.5", "--lp-backend", "dp"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The dp solve lands on the same cost the simplex backend reports.
    let cost_of = |stdout: &[u8]| -> String {
        let text = String::from_utf8_lossy(stdout).to_string();
        text.lines()
            .find(|l| l.contains("cost"))
            .unwrap_or_else(|| panic!("no cost line in {text}"))
            .to_string()
    };
    let simplex = lubt()
        .args(["solve"])
        .arg(&pts[0])
        .args(["--lower", "0.9", "--upper", "1.5"])
        .output()
        .unwrap();
    assert_eq!(cost_of(&out.stdout), cost_of(&simplex.stdout));

    // Batch output through the dp backend is byte-identical across thread
    // counts — the solve itself is single-threaded and exact.
    let run = |threads: &str| {
        let out = lubt()
            .args(["batch"])
            .args(&pts)
            .args(["--lower", "0.9", "--upper", "1.5"])
            .args(["--lp-backend", "dp", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    assert_eq!(run("1"), run("8"), "dp batch differs across threads");

    // `lubt audit --lp-backend dp` exercises the exact-oracle audit path.
    let out = lubt()
        .args(["audit"])
        .arg(&pts[0])
        .args(["--lower", "0.9", "--upper", "1.5", "--lp-backend", "dp"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("dp"), "{text}");

    for p in pts {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_bare_metrics_go_to_stderr_and_leave_stdout_identical() {
    let pts = gen_batch("batch-stderr", 4, 8);
    let run = |threads: &str| {
        let out = lubt()
            .args(["batch"])
            .args(&pts)
            .args(["--lower", "0.9", "--upper", "1.5", "--threads", threads])
            .args(["--metrics", "--metrics-prom"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, out.stderr)
    };
    let (stdout1, stderr1) = run("1");
    let (stdout8, _) = run("8");
    // With no output path the metrics documents land on stderr, so the
    // default stdout keeps the byte-identity contract even while tracing.
    assert_eq!(
        stdout1, stdout8,
        "stdout must not carry thread-dependent metrics"
    );
    let stdout = String::from_utf8(stdout1).unwrap();
    assert!(!stdout.contains("lubt-trace-v1"), "stdout: {stdout}");
    let stderr = String::from_utf8(stderr1).unwrap();
    assert!(
        stderr.contains("\"schema\": \"lubt-trace-v1\""),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("# TYPE lubt_simplex_pivots_total counter"),
        "stderr: {stderr}"
    );
    for p in pts {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_metrics_prom_file_is_a_prometheus_exposition() {
    let pts = gen_batch("batch-prom", 3, 8);
    let prom = tmp("batch.prom");
    let out = lubt()
        .args(["batch"])
        .args(&pts)
        .args(["--lower", "0.9", "--upper", "1.5", "--threads", "2"])
        .args(["--metrics-prom"])
        .arg(&prom)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("prometheus metrics written to"),
        "stdout: {text}"
    );
    let exposition = std::fs::read_to_string(&prom).unwrap();
    for needle in [
        "# HELP lubt_simplex_pivots_total",
        "# TYPE lubt_simplex_pivots_total counter",
        "lubt_batch_instances_total 3",
        "lubt_time_lp_seconds_total",
    ] {
        assert!(
            exposition.contains(needle),
            "exposition missing {needle}:\n{exposition}"
        );
    }
    for p in pts {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&prom);
}

#[test]
fn audit_command_verifies_solves_and_emits_strict_json() {
    let pts = tmp("audit1.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "10", "--seed", "9", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    for backend in ["simplex", "revised"] {
        // Feasible window: everything verifies, exit zero.
        let out = lubt()
            .args(["audit"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4", "--lp-backend", backend])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("verified"), "{backend} stdout: {text}");

        // JSON mode: a strict lubt-audit-v1 document with the verification
        // counters, still exit zero.
        let out = lubt()
            .args(["audit"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4", "--lp-backend", backend])
            .args(["--json"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{backend} --json");
        let text = String::from_utf8(out.stdout).unwrap();
        let json_start = text.find("{\n").expect("audit JSON on stdout");
        let doc = &text[json_start..];
        lubt_obs::json::validate(doc).expect("audit JSON must be strictly valid");
        assert!(doc.contains("\"schema\": \"lubt-audit-v1\""), "{doc}");
        assert!(doc.contains("\"status\": \"verified\""), "{doc}");
        assert!(doc.contains("\"lp_optimality_verified\": 1"), "{doc}");
        assert!(doc.contains("\"tree_verified\": 1"), "{doc}");
    }

    // An infeasible window is a *successful* audit of a Farkas ray: the
    // refusal is proven, so the exit stays zero.
    let out = lubt()
        .args(["audit"])
        .arg(&pts)
        .args(["--upper", "0.5", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "verified infeasibility must exit zero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let json_start = text.find("{\n").expect("audit JSON on stdout");
    let doc = &text[json_start..];
    lubt_obs::json::validate(doc).expect("infeasible audit JSON must be strictly valid");
    assert!(doc.contains("\"status\": \"infeasible\""), "{doc}");
    assert!(doc.contains("\"lp_farkas_verified\": 1"), "{doc}");

    let _ = std::fs::remove_file(&pts);
}

#[test]
fn solve_batch_and_bench_accept_the_audit_flag() {
    let pts = gen_batch("audit-flag", 2, 8);
    let out = lubt()
        .args(["solve"])
        .arg(&pts[0])
        .args(["--lower", "0.9", "--upper", "1.4", "--audit"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("certificates verified exactly"), "{text}");

    let out = lubt()
        .args(["batch"])
        .args(&pts)
        .args([
            "--lower",
            "0.9",
            "--upper",
            "1.4",
            "--threads",
            "2",
            "--audit",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bench_out = tmp("audit-bench.json");
    let out = lubt()
        .args([
            "bench",
            "--label",
            "audit-cli",
            "--sizes",
            "5",
            "--interior-cap",
            "4",
            "--threads",
            "1",
            "--audit",
            "--out",
        ])
        .arg(&bench_out)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&bench_out).unwrap();
    lubt_obs::json::validate(&doc).expect("audited bench document must be strict JSON");
    assert!(doc.contains("time.suite.audit_overhead."), "{doc}");

    for p in pts {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_file(&bench_out);
}

/// The `"deterministic"` member of a bench document, as raw bytes.
fn deterministic_section(doc: &str) -> &str {
    let start = doc
        .find("\"deterministic\"")
        .expect("deterministic section");
    let end = doc.find("\"determinism_exempt\"").expect("exempt section");
    &doc[start..end]
}

#[test]
fn bench_deterministic_section_is_byte_identical_across_thread_counts() {
    let a = tmp("bench-t1.json");
    let b = tmp("bench-t8.json");
    let run = |threads: &str, out_path: &PathBuf| {
        let out = lubt()
            .args([
                "bench",
                "--label",
                "cli-test",
                "--sizes",
                "5",
                "--interior-cap",
                "5",
            ])
            .args(["--threads", threads, "--out"])
            .arg(out_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("bench \"cli-test\""), "stdout: {text}");
    };
    run("1", &a);
    run("8", &b);
    let doc_a = std::fs::read_to_string(&a).unwrap();
    let doc_b = std::fs::read_to_string(&b).unwrap();
    lubt_obs::json::validate(&doc_a).expect("bench document must be strict JSON");
    assert!(doc_a.contains("\"schema\": \"lubt-bench-v1\""), "{doc_a}");
    assert_eq!(
        deterministic_section(&doc_a),
        deterministic_section(&doc_b),
        "deterministic section must not depend on --threads"
    );
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn report_passes_on_identical_runs_and_fails_on_a_perturbed_counter() {
    let base = tmp("report-base.json");
    let out = lubt()
        .args([
            "bench",
            "--label",
            "base",
            "--sizes",
            "5",
            "--interior-cap",
            "4",
        ])
        .args(["--threads", "2", "--out"])
        .arg(&base)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Identical documents pass with a zero exit.
    let out = lubt()
        .args(["report", "--baseline"])
        .arg(&base)
        .args(["--current"])
        .arg(&base)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verdict: PASS"), "stdout: {text}");

    // Bump one deterministic work counter in a copy: the gate must fail.
    let doc = std::fs::read_to_string(&base).unwrap();
    let needle = "\"lp_iterations\": ";
    let at = doc.find(needle).expect("bench rows carry lp_iterations") + needle.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    let bumped: u64 = digits.parse::<u64>().unwrap() + 1;
    let perturbed_doc = format!("{}{}{}", &doc[..at], bumped, &doc[at + digits.len()..]);
    let perturbed = tmp("report-perturbed.json");
    std::fs::write(&perturbed, &perturbed_doc).unwrap();

    let json_out = tmp("report-delta.json");
    let out = lubt()
        .args(["report", "--baseline"])
        .arg(&base)
        .args(["--current"])
        .arg(&perturbed)
        .args(["--json"])
        .arg(&json_out)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a regressed counter must exit nonzero"
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("benchmark regression"), "stderr: {err}");
    let delta = std::fs::read_to_string(&json_out).unwrap();
    lubt_obs::json::validate(&delta).expect("report JSON must be strictly valid");
    assert!(delta.contains("\"failed\": true"), "{delta}");
    assert!(delta.contains("lp_iterations"), "{delta}");

    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&perturbed);
    let _ = std::fs::remove_file(&json_out);
}

#[test]
fn serve_boots_answers_and_drains_on_wire_shutdown() {
    use std::io::{BufRead, BufReader, Write};

    let mut child = lubt()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--allow-shutdown",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    assert!(
        banner.contains("lubt-serve lubt-serve-v1 listening on "),
        "{banner}"
    );
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("banner carries the resolved address");

    let conn = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut ask = |line: &str, reader: &mut BufReader<std::net::TcpStream>| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    let pong = ask(r#"{"op":"ping","id":"cli"}"#, &mut reader);
    assert!(pong.contains("\"status\":\"ok\""), "{pong}");
    let solved = ask(
        r#"{"op":"solve","id":"s","upper":1.4,"instance":{"source":[5,5],"sinks":[[0,0],[10,0],[0,10],[10,10]]}}"#,
        &mut reader,
    );
    assert!(solved.contains("\"status\":\"ok\""), "{solved}");
    assert!(solved.contains("\"solution\":{"), "{solved}");
    let bye = ask(r#"{"op":"shutdown","id":"bye"}"#, &mut reader);
    assert!(bye.contains("\"draining\":true"), "{bye}");

    let status = child.wait().unwrap();
    assert!(status.success(), "graceful exit after wire shutdown");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(rest.contains("drained and stopped"), "{rest}");
}

#[test]
fn file_outputs_are_atomic_and_leave_no_temp_siblings() {
    let pts = gen_batch("atomic", 1, 8).pop().unwrap();
    let trace = tmp("atomic-trace.json");
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--upper", "1.4", "--trace-json"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&trace).unwrap();
    lubt_obs::json::validate(&doc).expect("trace must be complete, never torn");
    // The atomic write path stages into `<name>.tmp.<pid>` next to the
    // target and renames; success must leave no staging files behind.
    let dir = trace.parent().unwrap();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("lubt-cli-test-") && n.contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "staging files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&pts);
}

/// Generates the pinned 10-sink instance used by the profiling tests.
fn gen_profile_instance(tag: &str) -> PathBuf {
    let pts = tmp(&format!("{tag}.pts"));
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "10", "--seed", "2", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());
    pts
}

#[test]
fn profile_flags_leave_solver_stdout_byte_identical() {
    let pts = gen_profile_instance("prof-stdout");
    let solve = |extra: &[&std::ffi::OsStr]| {
        let mut cmd = lubt();
        cmd.args(["solve"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4"]);
        for a in extra {
            cmd.arg(a);
        }
        cmd.output().unwrap()
    };
    let plain = solve(&[]);
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );

    // Bare `--profile` streams the Chrome doc to stderr; stdout must stay
    // byte-identical to the unprofiled run.
    let bare = solve(&[std::ffi::OsStr::new("--profile")]);
    assert!(bare.status.success());
    assert_eq!(
        plain.stdout, bare.stdout,
        "--profile must not perturb stdout"
    );
    let err = String::from_utf8(bare.stderr).unwrap();
    let json_start = err.find('{').expect("chrome doc on stderr");
    lubt_obs::json::validate(&err[json_start..])
        .expect("bare --profile emits strict chrome JSON on stderr");
    assert!(err.contains("\"traceEvents\""), "{err}");

    // File exports: stdout still identical, both artifacts strictly valid.
    let chrome = tmp("prof-stdout.chrome.json");
    let folded = tmp("prof-stdout.folded.txt");
    let out = solve(&[
        std::ffi::OsStr::new("--profile"),
        chrome.as_os_str(),
        std::ffi::OsStr::new("--profile-folded"),
        folded.as_os_str(),
    ]);
    assert!(out.status.success());
    assert_eq!(
        plain.stdout, out.stdout,
        "file exports must not perturb stdout"
    );
    let doc = std::fs::read_to_string(&chrome).unwrap();
    lubt_obs::json::validate(&doc).expect("chrome export must be strictly valid");
    assert!(doc.ends_with('\n'), "chrome export ends with a newline");
    let folded_doc = std::fs::read_to_string(&folded).unwrap();
    lubt_obs::lint_folded(&folded_doc).expect("folded export must lint clean");
    assert!(folded_doc.contains("solve"), "{folded_doc}");

    // The built-in linter agrees with the library.
    let check = lubt()
        .args(["profile", "--check-folded"])
        .arg(&folded)
        .output()
        .unwrap();
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let text = String::from_utf8(check.stdout).unwrap();
    assert!(text.contains("folded profile ok"), "{text}");

    let _ = std::fs::remove_file(&pts);
    let _ = std::fs::remove_file(&chrome);
    let _ = std::fs::remove_file(&folded);
}

#[test]
fn trace_event_cap_zero_and_one_warn_about_dropped_events() {
    let pts = gen_profile_instance("prof-cap");
    // The pinned instance records two `ebf.round` events, so caps 0 and 1
    // both overflow while the solve itself still succeeds.
    for cap in ["0", "1"] {
        let out = lubt()
            .args(["solve"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4", "--trace-event-cap", cap])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "cap {cap}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("warning[trace-events-dropped]"),
            "cap {cap} must warn: {err}"
        );
    }
    // A roomy cap keeps every event and stays silent.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args([
            "--lower",
            "0.9",
            "--upper",
            "1.4",
            "--trace-event-cap",
            "256",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        !err.contains("warning[trace-events-dropped]"),
        "roomy cap must not warn: {err}"
    );
    // A bare switch is rejected, not silently ignored.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--upper", "1.4", "--trace-event-cap"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--trace-event-cap requires a value"), "{err}");
    let _ = std::fs::remove_file(&pts);
}

#[test]
fn profile_subcommand_exports_valid_documents_across_backends_and_outcomes() {
    let pts = gen_profile_instance("prof-backends");
    for backend in ["simplex", "ipm", "revised", "dp"] {
        // Feasible: the Chrome doc lands on stdout and validates strictly.
        let out = lubt()
            .args(["profile"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4", "--backend", backend])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = String::from_utf8(out.stdout).unwrap();
        lubt_obs::json::validate(&doc)
            .unwrap_or_else(|e| panic!("{backend} feasible chrome doc invalid: {e}"));
        assert!(doc.contains("\"traceEvents\""), "{backend}: {doc}");

        // Infeasible: the command exits non-zero but still exports the
        // profile of the failed solve.
        let out = lubt()
            .args(["profile"])
            .arg(&pts)
            .args(["--upper", "0.5", "--backend", backend])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{backend}: infeasible must fail");
        let doc = String::from_utf8(out.stdout).unwrap();
        lubt_obs::json::validate(&doc)
            .unwrap_or_else(|e| panic!("{backend} infeasible chrome doc invalid: {e}"));
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("no LUBT exists"), "{backend}: {err}");

        // Truncated event log: span exporters are unaffected; the folded
        // doc still lints clean.
        let out = lubt()
            .args(["profile"])
            .arg(&pts)
            .args([
                "--lower",
                "0.9",
                "--upper",
                "1.4",
                "--backend",
                backend,
                "--trace-event-cap",
                "0",
                "--format",
                "folded",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = String::from_utf8(out.stdout).unwrap();
        lubt_obs::lint_folded(&doc)
            .unwrap_or_else(|e| panic!("{backend} truncated folded doc invalid: {e}"));
    }
    let _ = std::fs::remove_file(&pts);
}

#[test]
fn profile_shape_is_thread_count_invariant() {
    let pts = gen_profile_instance("prof-shape");
    let shape = |threads: &str| {
        let out = lubt()
            .args(["profile"])
            .arg(&pts)
            .args([
                "--lower",
                "0.9",
                "--upper",
                "1.4",
                "--format",
                "shape",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let solo = shape("1");
    assert!(solo.contains("solve/lp"), "shape: {solo}");
    assert!(solo.contains("embed"), "shape: {solo}");
    assert_eq!(solo, shape("8"), "span shape must not depend on --threads");

    // The human-readable tree renders the same spans with hit counts.
    let out = lubt()
        .args(["profile"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--format", "tree"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let tree = String::from_utf8(out.stdout).unwrap();
    assert!(tree.contains("solve"), "{tree}");

    // Unknown formats fail loudly.
    let out = lubt()
        .args(["profile"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--format", "dot"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown format"), "{err}");
    let _ = std::fs::remove_file(&pts);
}

#[test]
fn solve_threads_flag_is_byte_identical_and_validated() {
    let pts = tmp("solve-threads.pts");
    let out = lubt()
        .args(["gen", "uniform", "--sinks", "24", "--seed", "19", "--out"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Byte-identical stdout across thread counts, including 0 (= all
    // cores) on the assisted revised backend.
    let run = |threads: &str| {
        let out = lubt()
            .args(["solve"])
            .arg(&pts)
            .args(["--lower", "0.9", "--upper", "1.4"])
            .args(["--lp-backend", "revised", "--threads", threads])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let solo = run("1");
    for threads in ["2", "8", "0"] {
        assert_eq!(
            run(threads),
            solo,
            "solve stdout differs between 1 and {threads} threads"
        );
    }

    // Negative counts are rejected with the integer-flag error style.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--threads", "-1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--threads expects an integer"), "{err}");

    // A bare --threads is rejected instead of silently ignored.
    let out = lubt()
        .args(["solve"])
        .arg(&pts)
        .args(["--lower", "0.9", "--upper", "1.4", "--threads"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--threads requires a value"), "{err}");

    let _ = std::fs::remove_file(&pts);
}
