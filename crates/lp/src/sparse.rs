//! Column-wise **sparse** standard form `min c'x  s.t.  A x = b, x >= 0`,
//! the representation behind the revised simplex backend.
//!
//! Semantically this is [`crate::standard::StandardForm`] — the same
//! variable shift, the same slack/surplus column numbering (one column per
//! inequality row, assigned in row order), the same `b >= 0` row
//! normalization — but the matrix is stored as growable sparse columns and
//! is **never densified**. A Steiner path row has `O(tree depth)` nonzeros
//! out of `n` edge columns, so the column store is typically two orders of
//! magnitude smaller than the dense image.
//!
//! Keeping the column numbering identical to the dense form is what makes
//! [`crate::WarmStart`] tokens transferable between the two backends.

use crate::model::{Cmp, Model};

/// One sparse column: `(row, coefficient)` pairs sorted by row index.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// Sparse standard-form image of a model, growable by appended rows.
#[derive(Debug, Clone)]
pub(crate) struct SparseForm {
    /// Number of rows.
    pub m: usize,
    /// Number of *original* (shifted) variables.
    pub n_orig: usize,
    /// Total columns: originals + slacks/surpluses.
    pub n: usize,
    /// Column-major sparse matrix; `cols[j]` is sorted by row index.
    pub cols: Vec<SparseCol>,
    /// Right-hand side (entries of *initial* rows are `>= 0`; appended
    /// rows skip normalization, exactly like the dense session tableau).
    pub b: Vec<f64>,
    /// Costs over all columns (zero on slack columns).
    pub c: Vec<f64>,
    /// Lower-bound shift per original variable.
    pub shift: Vec<f64>,
    /// Whether row `i` was multiplied by -1 during normalization.
    pub row_negated: Vec<bool>,
    /// Column index of the slack/surplus of row `i` (`usize::MAX` for
    /// equality rows).
    pub slack_col: Vec<usize>,
}

/// Sorts terms by column and combines duplicates (dropping exact zeros),
/// mirroring the `+=` accumulation of the dense builder.
fn combine(terms: &mut Vec<(usize, f64)>) {
    terms.sort_by_key(|&(j, _)| j);
    let mut out = 0usize;
    let mut i = 0usize;
    while i < terms.len() {
        let (j, mut v) = terms[i];
        i += 1;
        while i < terms.len() && terms[i].0 == j {
            v += terms[i].1;
            i += 1;
        }
        if v != 0.0 {
            terms[out] = (j, v);
            out += 1;
        }
    }
    terms.truncate(out);
}

impl SparseForm {
    /// Builds the sparse standard form. The model must already be
    /// validated. Column numbering, shifts and row normalization match
    /// [`crate::standard::StandardForm::build`] exactly.
    pub fn build(model: &Model) -> SparseForm {
        let n_orig = model.num_vars();
        let m = model.num_constraints();
        let n_slack = model
            .constraints
            .iter()
            .filter(|c| c.cmp != Cmp::Eq)
            .count();
        let n = n_orig + n_slack;

        let mut cols: Vec<SparseCol> = vec![Vec::new(); n];
        let mut b = vec![0.0; m];
        let mut c = vec![0.0; n];
        let mut row_negated = vec![false; m];
        let mut slack_col = vec![usize::MAX; m];

        c[..n_orig].copy_from_slice(&model.costs);
        let shift = model.lower.clone();

        let mut next_slack = n_orig;
        let mut row_terms: Vec<(usize, f64)> = Vec::new();
        for (i, con) in model.constraints.iter().enumerate() {
            row_terms.clear();
            let mut rhs = con.rhs;
            for &(v, coef) in con.expr.terms() {
                row_terms.push((v.index(), coef));
                rhs -= coef * shift[v.index()];
            }
            combine(&mut row_terms);
            match con.cmp {
                Cmp::Le => {
                    row_terms.push((next_slack, 1.0));
                    slack_col[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row_terms.push((next_slack, -1.0));
                    slack_col[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Eq => {}
            }
            if rhs < 0.0 {
                for t in row_terms.iter_mut() {
                    t.1 = -t.1;
                }
                rhs = -rhs;
                row_negated[i] = true;
            }
            b[i] = rhs;
            // Rows are visited in ascending order, so pushing keeps every
            // column sorted by row index.
            for &(j, v) in row_terms.iter() {
                cols[j].push((i, v));
            }
        }

        SparseForm {
            m,
            n_orig,
            n,
            cols,
            b,
            c,
            shift,
            row_negated,
            slack_col,
        }
    }

    /// Coefficient at `(row, col)` — `O(log nnz(col))`, used only on the
    /// cold-start and test paths.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        match self.cols[col].binary_search_by_key(&row, |&(r, _)| r) {
            Ok(k) => self.cols[col][k].1,
            Err(_) => 0.0,
        }
    }

    /// Appends an equality row `terms·x + s = rhs` with a fresh `+1` slack
    /// `s` (the orientation the incremental session produces: `<=` rows
    /// pass through, `>=` rows arrive pre-negated). `terms` must be sorted
    /// by column, combined, and reference structural columns only.
    pub fn append_row(&mut self, terms: &[(usize, f64)], rhs: f64) {
        let row = self.m;
        let slack = self.n;
        for &(j, v) in terms {
            debug_assert!(j < self.n_orig, "appended row references a slack column");
            debug_assert!(v != 0.0);
            self.cols[j].push((row, v));
        }
        self.cols.push(vec![(row, 1.0)]);
        self.b.push(rhs);
        self.c.push(0.0);
        self.row_negated.push(false);
        self.slack_col.push(slack);
        self.m += 1;
        self.n += 1;
    }

    /// Maps a standard-form solution vector back to original variable
    /// values (undoing the lower-bound shift).
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        self.shift
            .iter()
            .enumerate()
            .map(|(j, lb)| x_std[j] + lb)
            .collect()
    }

    /// Recovers duals for the *original* rows from standard-form duals
    /// (undoing the row negation).
    pub fn recover_duals(&self, y_std: &[f64]) -> Vec<f64> {
        y_std
            .iter()
            .zip(&self.row_negated)
            .map(|(y, neg)| if *neg { -y } else { *y })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;
    use crate::standard::StandardForm;

    /// The sparse form must be entry-for-entry identical to the dense one.
    #[test]
    fn matches_dense_standard_form() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(2.0, 3.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 10.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 4.0);
        m.add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Eq, 1.0); // negated
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (x, 2.0)]), Cmp::Le, 9.0); // dup terms

        let dense = StandardForm::build(&m);
        let sparse = SparseForm::build(&m);
        assert_eq!(sparse.m, dense.m);
        assert_eq!(sparse.n, dense.n);
        assert_eq!(sparse.n_orig, dense.n_orig);
        assert_eq!(sparse.b, dense.b);
        assert_eq!(sparse.c, dense.c);
        assert_eq!(sparse.shift, dense.shift);
        assert_eq!(sparse.row_negated, dense.row_negated);
        assert_eq!(sparse.slack_col, dense.slack_col);
        for r in 0..dense.m {
            for j in 0..dense.n {
                assert_eq!(sparse.at(r, j), dense.at(r, j), "entry ({r},{j})");
            }
        }
    }

    #[test]
    fn columns_stay_sorted_after_append() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        let mut sf = SparseForm::build(&m);
        let (m0, n0) = (sf.m, sf.n);
        sf.append_row(&[(0, -1.0)], -2.0); // x >= 2, session orientation
        assert_eq!(sf.m, m0 + 1);
        assert_eq!(sf.n, n0 + 1);
        assert_eq!(sf.at(m0, 0), -1.0);
        assert_eq!(sf.at(m0, n0), 1.0);
        assert_eq!(sf.b[m0], -2.0); // appended rows are not sign-normalized
        for col in &sf.cols {
            assert!(col.windows(2).all(|w| w[0].0 < w[1].0), "unsorted column");
        }
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(
            LinExpr::from_terms([(x, 1.0), (x, -1.0), (y, 2.0)]),
            Cmp::Le,
            4.0,
        );
        let sf = SparseForm::build(&m);
        assert!(sf.cols[0].is_empty());
        assert_eq!(sf.at(0, 1), 2.0);
    }
}
