// Index-based loops are the natural idiom for the dense kernels here.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;
use std::time::Instant;

use lubt_obs::Recorder;

use crate::certificate::{compute, CertSeed, Certificate, ColumnRole};
use crate::linalg::SquareMatrix;
use crate::standard::StandardForm;
use crate::{LpError, LpSolve, Model, Solution, Status};

/// Opaque warm-start token: the optimal basis of a previous solve, reusable
/// after the model has *grown* (same variables, rows only appended — the
/// lazy-separation pattern of the EBF).
///
/// Obtained from [`SimplexSolver::solve_warm`]; feeding it back turns the
/// re-solve into a **dual simplex** run that starts from the old optimum
/// and only repairs the newly violated rows.
#[derive(Debug, Clone)]
pub struct WarmStart {
    pub(crate) basis: Vec<usize>,
    pub(crate) num_vars: usize,
    pub(crate) num_rows: usize,
}

/// Two-phase primal simplex on a dense tableau.
///
/// * **Phase 1** minimizes the sum of artificial variables to find a basic
///   feasible solution (or certify infeasibility).
/// * **Phase 2** minimizes the true objective; a costless entering column
///   with no blocking row certifies unboundedness.
///
/// Pricing is Dantzig's most-negative-reduced-cost rule; after a long run of
/// degenerate (non-improving) pivots the solver permanently switches to
/// Bland's smallest-index rule, which guarantees termination.
///
/// Constraint duals are recovered exactly from the final basis by solving
/// `B' y = c_B` with a dense LU factorization.
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    max_iterations: usize,
    stall_limit: usize,
    recorder: Arc<dyn Recorder>,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        SimplexSolver {
            max_iterations: 200_000,
            stall_limit: 1_000,
            recorder: lubt_obs::noop(),
        }
    }
}

impl SimplexSolver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the hard pivot limit (default 200 000).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the number of consecutive non-improving pivots tolerated before
    /// switching to Bland's rule (default 1 000).
    #[must_use]
    pub fn with_stall_limit(mut self, stall_limit: usize) -> Self {
        self.stall_limit = stall_limit;
        self
    }

    /// Routes `simplex.*` instrumentation (pivot counts, degenerate pivots,
    /// Bland-rule activations, iteration-limit proximity) into `recorder`.
    /// The default is the no-op recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    pub(crate) fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Solve-level counters, shared by the cold, warm, and session paths.
    fn note_solve(&self, iterations: usize) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.incr("simplex.solves", 1);
        self.recorder
            .record_max("simplex.peak_pivots", iterations as u64);
        self.recorder.gauge(
            "simplex.limit_fraction",
            iterations as f64 / self.max_iterations.max(1) as f64,
        );
    }
}

const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-9;

/// Dense simplex tableau: `m` constraint rows over `width` columns, the last
/// column being the right-hand side, plus one objective (reduced-cost) row.
pub(crate) struct Tableau {
    pub(crate) m: usize,
    /// Total structural + artificial columns (rhs excluded).
    pub(crate) cols: usize,
    pub(crate) width: usize,
    pub(crate) rows: Vec<f64>,
    pub(crate) obj: Vec<f64>,
    pub(crate) basis: Vec<usize>,
    /// Columns barred from entering (artificials in phase 2).
    pub(crate) blocked: Vec<bool>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.rows[r * self.width + c]
    }

    pub(crate) fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.width - 1)
    }

    /// A zero-row tableau whose reduced costs are the raw objective —
    /// the optimal tableau of an unconstrained non-negative-cost model.
    pub(crate) fn from_costs(costs: &[f64]) -> Tableau {
        let cols = costs.len();
        let mut obj = costs.to_vec();
        obj.push(0.0);
        Tableau {
            m: 0,
            cols,
            width: cols + 1,
            rows: Vec::new(),
            obj,
            basis: Vec::new(),
            blocked: vec![false; cols],
        }
    }

    /// Single-row convenience over [`Tableau::append_rows`].
    #[cfg(test)]
    pub(crate) fn append_row(&mut self, raw: &[(usize, f64)], rhs: f64) {
        self.append_rows(&[(raw.to_vec(), rhs)]);
    }

    /// Appends a batch of equality rows `raw·x + s = rhs` (each with a
    /// fresh slack `s` carrying +1) to an optimal tableau, eliminating the
    /// current basic variables so the tableau stays in basis coordinates.
    /// Every new row's slack joins the basis (duals start at zero, so dual
    /// feasibility is preserved). One re-layout covers the whole batch.
    ///
    /// Each `raw` holds `(structural column, coefficient)` pairs — new rows
    /// never reference each other's slacks, so their eliminations are
    /// independent and only run against the pre-existing basic rows.
    pub(crate) fn append_rows(&mut self, batch: &[(Vec<(usize, f64)>, f64)]) {
        if batch.is_empty() {
            return;
        }
        let k = batch.len();
        let old_width = self.width;
        let old_cols = self.cols;
        let new_cols = old_cols + k;
        let new_width = new_cols + 1;

        // Re-layout existing rows with the widened stride.
        let mut rows = Vec::with_capacity((self.m + k) * new_width);
        for r in 0..self.m {
            let row = &self.rows[r * old_width..(r + 1) * old_width];
            rows.extend_from_slice(&row[..old_cols]);
            rows.extend(std::iter::repeat_n(0.0, k)); // new slack columns
            rows.push(row[old_width - 1]); // rhs
        }
        for (i, (raw, rhs)) in batch.iter().enumerate() {
            let mut new_row = vec![0.0; new_width];
            for &(c, v) in raw {
                debug_assert!(c < old_cols, "raw row references a slack column");
                new_row[c] = v;
            }
            new_row[old_cols + i] = 1.0;
            new_row[new_width - 1] = *rhs;
            // Eliminate the pre-existing basic variables (row reduction
            // against each basic row's unit column).
            for r in 0..self.m {
                let b = self.basis[r];
                let f = new_row[b];
                if f.abs() <= 1e-13 {
                    continue;
                }
                let row = &rows[r * new_width..(r + 1) * new_width];
                for (nv, rv) in new_row.iter_mut().zip(row) {
                    *nv -= f * rv;
                }
                new_row[b] = 0.0;
            }
            rows.extend_from_slice(&new_row);
        }

        // Objective row: unchanged entries, zeros for the new slacks.
        let mut obj = Vec::with_capacity(new_width);
        obj.extend_from_slice(&self.obj[..old_cols]);
        obj.extend(std::iter::repeat_n(0.0, k));
        obj.push(self.obj[old_width - 1]);

        self.rows = rows;
        self.obj = obj;
        self.cols = new_cols;
        self.width = new_width;
        for i in 0..k {
            self.basis.push(old_cols + i);
            self.blocked.push(false);
        }
        self.m += k;
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.width;
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > PIVOT_TOL);
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.rows[row * w + c] *= inv;
        }
        // Exact unity on the pivot to avoid drift.
        self.rows[row * w + col] = 1.0;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f.abs() <= 1e-13 {
                continue;
            }
            for c in 0..w {
                let sub = f * self.rows[row * w + c];
                self.rows[r * w + c] -= sub;
            }
            self.rows[r * w + col] = 0.0;
        }
        let f = self.obj[col];
        if f.abs() > 1e-13 {
            for c in 0..w {
                self.obj[c] -= f * self.rows[row * w + c];
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Entering column under the current pricing rule, or `None` at
    /// optimality.
    fn choose_entering(&self, bland: bool) -> Option<usize> {
        if bland {
            (0..self.cols).find(|&j| !self.blocked[j] && self.obj[j] < -COST_TOL)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.cols {
                if self.blocked[j] {
                    continue;
                }
                let r = self.obj[j];
                if r < -COST_TOL && best.is_none_or(|(_, br)| r < br) {
                    best = Some((j, r));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Leaving row by the minimum-ratio test; `None` means the column is
    /// unblocked (unbounded direction).
    fn choose_leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.m {
            let a = self.at(r, col);
            if a > PIVOT_TOL {
                let ratio = self.rhs(r) / a;
                let better = match best {
                    None => true,
                    Some((br, bratio)) => {
                        ratio < bratio - 1e-12
                            || ((ratio - bratio).abs() <= 1e-12 && self.basis[r] < self.basis[br])
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
        }
        best.map(|(r, _)| r)
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Nanoseconds since `t0`, saturating.
pub(crate) fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Wall clock and hit count of one simplex phase, aggregated locally in
/// the inner loop so the profiling span costs one recorder call per
/// `run_phase` invocation — never one per pivot.
#[derive(Default, Clone, Copy)]
pub(crate) struct PhaseAgg {
    pub hits: u64,
    pub ns: u64,
}

impl PhaseAgg {
    /// Times `f` when `on`, adding one hit and the elapsed nanoseconds.
    pub fn time<T>(&mut self, on: bool, f: impl FnOnce() -> T) -> T {
        if !on {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        self.hits += 1;
        self.ns = self.ns.saturating_add(elapsed_ns(t0));
        out
    }
}

fn run_phase(
    t: &mut Tableau,
    iters: &mut usize,
    max_iterations: usize,
    stall_limit: usize,
    rec: &dyn Recorder,
) -> Result<PhaseOutcome, LpError> {
    let start = *iters;
    let mut degenerate = 0u64;
    let mut activations = 0u64;
    // Span phases are aggregated locally and recorded once at the end:
    // the `enabled()` pre-check keeps the untraced hot loop free of even
    // the `Instant::now` pair (satellite: fast path).
    let profiling = rec.enabled();
    let mut pricing = PhaseAgg::default();
    let mut ratio = PhaseAgg::default();
    let mut pivots = PhaseAgg::default();
    let out = (|| {
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        loop {
            if *iters >= max_iterations {
                return Err(LpError::IterationLimit {
                    limit: max_iterations,
                });
            }
            let Some(col) = pricing.time(profiling, || t.choose_entering(bland)) else {
                return Ok(PhaseOutcome::Optimal);
            };
            let Some(row) = ratio.time(profiling, || t.choose_leaving(col)) else {
                return Ok(PhaseOutcome::Unbounded);
            };
            pivots.time(profiling, || t.pivot(row, col));
            *iters += 1;
            let obj = t.obj[t.width - 1];
            if obj < last_obj - 1e-12 {
                stall = 0;
                last_obj = obj;
            } else {
                degenerate += 1;
                stall += 1;
                if stall > stall_limit && !bland {
                    bland = true;
                    activations += 1;
                }
            }
        }
    })();
    if rec.enabled() {
        rec.incr("simplex.pivots", (*iters - start) as u64);
        rec.incr("simplex.degenerate_pivots", degenerate);
        rec.incr("simplex.bland_activations", activations);
        if out.is_err() {
            rec.incr("simplex.iteration_limit_hits", 1);
        }
        rec.span_record("pricing", pricing.hits, pricing.ns);
        rec.span_record("ratio_test", ratio.hits, ratio.ns);
        rec.span_record("pivot", pivots.hits, pivots.ns);
    }
    out
}

enum DualOutcome {
    PrimalFeasible,
    /// The dual ratio test found no entering column for `row`: that row
    /// certifies an empty feasible region (it seeds a Farkas ray).
    Infeasible {
        row: usize,
    },
}

/// Outcome of a dual-then-primal re-optimization, carrying the certifying
/// row position on infeasibility so incremental sessions can seed a
/// [`CertSeed::DualRow`] Farkas certificate. Shared by both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReoptOutcome {
    Optimal,
    Unbounded,
    Infeasible { row: usize },
}

/// Dual simplex: starting from a dual-feasible tableau (all reduced costs
/// non-negative) with possibly negative basic values, pivots until the
/// basis is primal feasible (optimal) or a row certifies infeasibility.
fn run_dual_phase(
    t: &mut Tableau,
    iters: &mut usize,
    max_iterations: usize,
    rec: &dyn Recorder,
) -> Result<DualOutcome, LpError> {
    let start = *iters;
    let mut activations = 0u64;
    let t0 = rec.enabled().then(Instant::now);
    let out = run_dual_phase_inner(t, iters, max_iterations, &mut activations);
    if rec.enabled() {
        rec.incr("simplex.dual_pivots", (*iters - start) as u64);
        rec.incr("simplex.bland_activations", activations);
        if out.is_err() {
            rec.incr("simplex.iteration_limit_hits", 1);
        }
        if let Some(t0) = t0 {
            rec.span_record("dual", (*iters - start) as u64, elapsed_ns(t0));
        }
    }
    out
}

fn run_dual_phase_inner(
    t: &mut Tableau,
    iters: &mut usize,
    max_iterations: usize,
    activations: &mut u64,
) -> Result<DualOutcome, LpError> {
    let feas_tol = {
        let max_rhs = (0..t.m).fold(0.0f64, |a, r| a.max(t.rhs(r).abs()));
        1e-7 * (1.0 + max_rhs)
    };
    let mut bland = false;
    let mut stall = 0usize;
    loop {
        if *iters >= max_iterations {
            return Err(LpError::IterationLimit {
                limit: max_iterations,
            });
        }
        // Leaving row: most negative basic value (Bland: smallest index).
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..t.m {
            let v = t.rhs(r);
            if v < -feas_tol {
                let better = match leave {
                    None => true,
                    Some((lr, lv)) => {
                        if bland {
                            t.basis[r] < t.basis[lr]
                        } else {
                            v < lv
                        }
                    }
                };
                if better {
                    leave = Some((r, v));
                }
            }
        }
        let Some((row, _)) = leave else {
            return Ok(DualOutcome::PrimalFeasible);
        };
        // Entering column: dual ratio test over negative row entries.
        let mut enter: Option<(usize, f64)> = None;
        for j in 0..t.cols {
            if t.blocked[j] {
                continue;
            }
            let a = t.at(row, j);
            if a < -PIVOT_TOL {
                let ratio = t.obj[j] / (-a);
                let better = match enter {
                    None => true,
                    Some((ej, er)) => {
                        if bland {
                            ratio < er - 1e-12 || ((ratio - er).abs() <= 1e-12 && j < ej)
                        } else {
                            ratio < er
                        }
                    }
                };
                if better {
                    enter = Some((j, ratio));
                }
            }
        }
        let Some((col, _)) = enter else {
            // Row reads `(non-negative combination) = negative`: empty
            // feasible region.
            return Ok(DualOutcome::Infeasible { row });
        };
        t.pivot(row, col);
        *iters += 1;
        stall += 1;
        if stall > 1_000 && !bland {
            bland = true;
            *activations += 1;
        }
    }
}

/// Dual simplex to primal feasibility, then a primal clean-up phase; the
/// combined re-optimization used by warm starts and incremental sessions.
pub(crate) fn dual_then_primal(
    t: &mut Tableau,
    iters: &mut usize,
    max_iterations: usize,
    rec: &dyn Recorder,
) -> Result<ReoptOutcome, LpError> {
    match run_dual_phase(t, iters, max_iterations, rec)? {
        DualOutcome::Infeasible { row } => return Ok(ReoptOutcome::Infeasible { row }),
        DualOutcome::PrimalFeasible => {}
    }
    match run_phase(t, iters, max_iterations, 1_000, rec)? {
        PhaseOutcome::Unbounded => Ok(ReoptOutcome::Unbounded),
        PhaseOutcome::Optimal => Ok(ReoptOutcome::Optimal),
    }
}

impl LpSolve for SimplexSolver {
    fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        self.solve_cold(model).map(|(s, _)| s)
    }
}

impl SimplexSolver {
    /// Solves, optionally starting from a previous optimal basis.
    ///
    /// With `warm = Some(..)` and a model that merely *appended rows* since
    /// that basis was produced, the solver reconstructs the old basis,
    /// seeds the new rows with their slacks, and runs the **dual simplex**
    /// — usually a handful of pivots instead of a full two-phase solve.
    /// Falls back to a cold solve whenever the token does not fit (changed
    /// variables, equality rows without slacks, singular basis).
    ///
    /// Returns the solution together with a token for the *next* warm
    /// start (absent when the final basis is not reusable).
    ///
    /// # Errors
    ///
    /// Same contract as [`LpSolve::solve`].
    pub fn solve_warm(
        &self,
        model: &Model,
        warm: Option<&WarmStart>,
    ) -> Result<(Solution, Option<WarmStart>), LpError> {
        if let Some(w) = warm {
            model.validate()?;
            let sf = StandardForm::build(model);
            if let Some(result) = self.try_warm(model, &sf, w)? {
                return Ok(result);
            }
        }
        self.solve_cold(model)
    }

    /// Attempts the warm path; `Ok(None)` means "fall back to cold".
    fn try_warm(
        &self,
        model: &Model,
        sf: &StandardForm,
        warm: &WarmStart,
    ) -> Result<Option<(Solution, Option<WarmStart>)>, LpError> {
        if warm.num_vars != model.num_vars() || warm.num_rows > sf.m || sf.m == 0 {
            return Ok(None);
        }
        // Old basis entries must reference columns that still exist with
        // the same meaning: structural variables (stable) or slacks of the
        // prefix rows (stable because slack columns are assigned in row
        // order and old rows are a prefix).
        let mut basis = warm.basis.clone();
        if basis.len() != warm.num_rows || basis.iter().any(|&c| c >= sf.n) {
            return Ok(None);
        }
        for i in warm.num_rows..sf.m {
            let sc = sf.slack_col[i];
            if sc == usize::MAX {
                return Ok(None); // appended equality row: no slack to seed
            }
            basis.push(sc);
        }

        // Rebuild the tableau as B^{-1}[A | b] with the reduced-cost row.
        let m = sf.m;
        let mut bmat = SquareMatrix::zeros(m);
        for (k, &col) in basis.iter().enumerate() {
            for r in 0..m {
                *bmat.at_mut(r, k) = sf.at(r, col);
            }
        }
        let Some(lu) = bmat.into_lu() else {
            return Ok(None);
        };
        let width = sf.n + 1;
        let mut t = Tableau {
            m,
            cols: sf.n,
            width,
            rows: vec![0.0; m * width],
            obj: vec![0.0; width],
            basis: basis.clone(),
            blocked: vec![false; sf.n],
        };
        let cb: Vec<f64> = basis.iter().map(|&c| sf.c[c]).collect();
        let mut col_buf = vec![0.0; m];
        for j in 0..sf.n {
            for r in 0..m {
                col_buf[r] = sf.at(r, j);
            }
            let x = lu.solve(&col_buf);
            let mut red = sf.c[j];
            for r in 0..m {
                t.rows[r * width + j] = x[r];
                red -= cb[r] * x[r];
            }
            t.obj[j] = red;
        }
        let xb = lu.solve(&sf.b);
        let mut objval = 0.0;
        for r in 0..m {
            t.rows[r * width + width - 1] = xb[r];
            objval += cb[r] * xb[r];
        }
        t.obj[width - 1] = -objval;

        // Dual feasibility is structurally guaranteed (the appended rows
        // take dual value zero), but verify numerically and clip noise.
        let dual_tol = 1e-7 * (1.0 + sf.c.iter().fold(0.0f64, |a, &c| a.max(c.abs())));
        for j in 0..sf.n {
            if t.obj[j] < -dual_tol {
                return Ok(None);
            }
            if t.obj[j] < 0.0 {
                t.obj[j] = 0.0;
            }
        }

        let mut iters = 0usize;
        let rec = &*self.recorder;
        match run_dual_phase(&mut t, &mut iters, self.max_iterations, rec)? {
            DualOutcome::Infeasible { .. } => {
                self.note_solve(iters);
                return Ok(Some((Solution::infeasible(model.num_vars(), iters), None)));
            }
            DualOutcome::PrimalFeasible => {}
        }
        // Re-optimize (normally zero pivots: dual pivots preserve
        // optimality of the reduced costs).
        match run_phase(
            &mut t,
            &mut iters,
            self.max_iterations,
            self.stall_limit,
            rec,
        )? {
            PhaseOutcome::Unbounded => {
                self.note_solve(iters);
                return Ok(Some((Solution::unbounded(model.num_vars(), iters), None)));
            }
            PhaseOutcome::Optimal => {}
        }

        let mut x_std = vec![0.0; sf.n];
        for r in 0..m {
            if t.basis[r] < sf.n {
                x_std[t.basis[r]] = t.rhs(r).max(0.0);
            }
        }
        let x = sf.recover(&x_std);
        let objective = model.objective_value(&x);
        let duals = recover_duals(sf, &t.basis).map(|y| sf.recover_duals(&y));
        let next = WarmStart {
            basis: t.basis.clone(),
            num_vars: model.num_vars(),
            num_rows: sf.m,
        };
        self.note_solve(iters);
        Ok(Some((
            Solution::new(Status::Optimal, x, objective, duals, iters),
            Some(next),
        )))
    }

    fn solve_cold(&self, model: &Model) -> Result<(Solution, Option<WarmStart>), LpError> {
        self.solve_full(model).map(|(s, w, _, _)| (s, w))
    }

    /// Like [`LpSolve::solve`], additionally producing the certificate of
    /// the outcome: a dual proof of optimality or a Farkas proof of
    /// infeasibility (`None` for unbounded models, or when the final basis
    /// is numerically singular). Verification lives in the `lubt-audit`
    /// crate.
    ///
    /// # Errors
    ///
    /// Same contract as [`LpSolve::solve`].
    pub fn solve_certified(
        &self,
        model: &Model,
    ) -> Result<(Solution, Option<Certificate>), LpError> {
        let (solution, _, _, seed) = self.solve_full(model)?;
        let cert = seed.as_ref().and_then(|s| compute(model, s));
        Ok((solution, cert))
    }

    /// Like [`LpSolve::solve`], additionally handing back the final optimal
    /// tableau for incremental growth (see [`crate::SimplexSession`]) and
    /// the certificate seed of the outcome.
    pub(crate) fn solve_keeping_tableau(
        &self,
        model: &Model,
    ) -> Result<(Solution, Option<Tableau>, Option<CertSeed>), LpError> {
        self.solve_full(model).map(|(s, _, t, seed)| (s, t, seed))
    }

    pub(crate) fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    #[allow(clippy::type_complexity)]
    fn solve_full(
        &self,
        model: &Model,
    ) -> Result<
        (
            Solution,
            Option<WarmStart>,
            Option<Tableau>,
            Option<CertSeed>,
        ),
        LpError,
    > {
        model.validate()?;
        let sf = StandardForm::build(model);
        let m = sf.m;

        // Constraint-free models: every variable sits at its lower bound
        // unless a negative cost makes the LP unbounded.
        if m == 0 {
            if model.costs.iter().any(|&c| c < -COST_TOL) {
                return Ok((Solution::unbounded(model.num_vars(), 0), None, None, None));
            }
            let x = sf.recover(&vec![0.0; sf.n]);
            let obj = model.objective_value(&x);
            return Ok((
                Solution::new(Status::Optimal, x, obj, Some(vec![]), 0),
                None,
                Some(Tableau::from_costs(&sf.c)),
                Some(CertSeed::Optimal(Vec::new())),
            ));
        }

        // Decide per row whether its slack can seed the basis (+1 column) or
        // an artificial is required.
        let mut art_of_row: Vec<Option<usize>> = vec![None; m];
        let mut n_art = 0usize;
        for i in 0..m {
            let sc = sf.slack_col[i];
            let usable = sc != usize::MAX && (sf.at(i, sc) - 1.0).abs() < 1e-12;
            if !usable {
                art_of_row[i] = Some(sf.n + n_art);
                n_art += 1;
            }
        }
        let cols = sf.n + n_art;
        let width = cols + 1;

        // Role of every column, for certificate seeds: structurals, then
        // slacks in row order (matching `StandardForm::build`), then
        // artificials in row order.
        let mut col_roles: Vec<ColumnRole> = Vec::with_capacity(cols);
        col_roles.extend((0..sf.n_orig).map(ColumnRole::Structural));
        col_roles.extend(
            (0..m)
                .filter(|&i| sf.slack_col[i] != usize::MAX)
                .map(ColumnRole::Slack),
        );
        col_roles.extend(
            (0..m)
                .filter(|&i| art_of_row[i].is_some())
                .map(ColumnRole::Artificial),
        );
        debug_assert_eq!(col_roles.len(), cols);

        let mut t = Tableau {
            m,
            cols,
            width,
            rows: vec![0.0; m * width],
            obj: vec![0.0; width],
            basis: vec![0; m],
            blocked: vec![false; cols],
        };
        for i in 0..m {
            for j in 0..sf.n {
                t.rows[i * width + j] = sf.at(i, j);
            }
            if let Some(aj) = art_of_row[i] {
                t.rows[i * width + aj] = 1.0;
                t.basis[i] = aj;
            } else {
                t.basis[i] = sf.slack_col[i];
            }
            t.rows[i * width + width - 1] = sf.b[i];
        }

        let mut iters = 0usize;

        // ---- Phase 1: minimize the artificial sum. ----
        if n_art > 0 {
            for j in sf.n..cols {
                t.obj[j] = 1.0;
            }
            // Reduce against the initial (artificial) basis.
            for i in 0..m {
                if art_of_row[i].is_some() {
                    for c in 0..width {
                        t.obj[c] -= t.rows[i * width + c];
                    }
                }
            }
            match run_phase(
                &mut t,
                &mut iters,
                self.max_iterations,
                self.stall_limit,
                &*self.recorder,
            )? {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by 0; cannot happen.
                    return Err(LpError::NumericalBreakdown("phase-1 unbounded".to_string()));
                }
            }
            let feas_tol = 1e-7 * (1.0 + sf.b.iter().cloned().fold(0.0, f64::max));
            if -t.obj[width - 1] > feas_tol {
                self.note_solve(iters);
                let seed = CertSeed::Phase1(t.basis.iter().map(|&c| col_roles[c]).collect());
                return Ok((
                    Solution::infeasible(model.num_vars(), iters),
                    None,
                    None,
                    Some(seed),
                ));
            }
            // Drive artificials out of the basis where possible (degenerate
            // pivots); rows where no structural column remains are redundant
            // and keep their zero-valued artificial.
            for r in 0..m {
                if t.basis[r] >= sf.n {
                    if let Some(c) = (0..sf.n).find(|&c| t.at(r, c).abs() > 1e-7) {
                        t.pivot(r, c);
                    }
                }
            }
            for j in sf.n..cols {
                t.blocked[j] = true;
            }
        }

        // ---- Phase 2: true objective. ----
        t.obj.iter_mut().for_each(|v| *v = 0.0);
        t.obj[..sf.n].copy_from_slice(&sf.c);
        for i in 0..m {
            let b = t.basis[i];
            let cb = if b < sf.n { sf.c[b] } else { 0.0 };
            if cb != 0.0 {
                for c in 0..width {
                    t.obj[c] -= cb * t.rows[i * width + c];
                }
            }
        }
        match run_phase(
            &mut t,
            &mut iters,
            self.max_iterations,
            self.stall_limit,
            &*self.recorder,
        )? {
            PhaseOutcome::Unbounded => {
                self.note_solve(iters);
                Ok((
                    Solution::unbounded(model.num_vars(), iters),
                    None,
                    None,
                    None,
                ))
            }
            PhaseOutcome::Optimal => {
                let mut x_std = vec![0.0; sf.n];
                for r in 0..m {
                    if t.basis[r] < sf.n {
                        x_std[t.basis[r]] = t.rhs(r).max(0.0);
                    }
                }
                let x = sf.recover(&x_std);
                let objective = model.objective_value(&x);
                let duals = recover_duals(&sf, &t.basis).map(|y| sf.recover_duals(&y));
                // A basis free of artificial columns can seed a future
                // warm start after rows are appended.
                let warm = t.basis.iter().all(|&c| c < sf.n).then(|| WarmStart {
                    basis: t.basis.clone(),
                    num_vars: model.num_vars(),
                    num_rows: sf.m,
                });
                let seed = CertSeed::Optimal(t.basis.iter().map(|&c| col_roles[c]).collect());
                self.note_solve(iters);
                Ok((
                    Solution::new(Status::Optimal, x, objective, duals, iters),
                    warm,
                    Some(t),
                    Some(seed),
                ))
            }
        }
    }
}

/// Solves `B' y = c_B` for the duals, where `B` is the final basis matrix
/// drawn from the *original* standard-form columns (identity columns for
/// residual artificials).
fn recover_duals(sf: &StandardForm, basis: &[usize]) -> Option<Vec<f64>> {
    let m = sf.m;
    let mut bt = SquareMatrix::zeros(m);
    let mut cb = vec![0.0; m];
    for (k, &col) in basis.iter().enumerate() {
        if col < sf.n {
            for r in 0..m {
                *bt.at_mut(k, r) = sf.at(r, col); // B' row k = column of A
            }
            cb[k] = sf.c[col];
        } else {
            // Residual artificial of some row i: identity column e_i, cost 0.
            // Its row index is recoverable by searching; artificials were
            // assigned in row order during construction.
            let art_index = col - sf.n;
            // Count rows with artificials to find which row this one is.
            let mut seen = 0usize;
            let mut row_i = usize::MAX;
            for i in 0..m {
                let sc = sf.slack_col[i];
                let usable = sc != usize::MAX && (sf.at(i, sc) - 1.0).abs() < 1e-12;
                if !usable {
                    if seen == art_index {
                        row_i = i;
                        break;
                    }
                    seen += 1;
                }
            }
            if row_i == usize::MAX {
                return None;
            }
            *bt.at_mut(k, row_i) = 1.0;
            cb[k] = 0.0;
        }
    }
    bt.lu_solve(cb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr};

    fn expr(terms: &[(crate::Var, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn simple_2d_optimum() {
        // min -x - 2y s.t. x + y <= 4, y <= 2  => x=2, y=2, obj=-6
        let mut m = Model::new();
        let x = m.add_var(0.0, -1.0);
        let y = m.add_var(0.0, -2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 4.0);
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Le, 2.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() + 6.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x + y s.t. x + y >= 5, x - y >= 1 => x=3, y=2 obj=5
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 5.0).abs() < 1e-7);
        // Optimum is the whole edge x+y=5 with x>=3; check feasibility and
        // objective rather than a unique point.
        assert!(m.check_feasible(s.values(), 1e-7).is_ok());
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y == 4, x - y == 0 => x=y=2, obj=10
        let mut m = Model::new();
        let x = m.add_var(0.0, 2.0);
        let y = m.add_var(0.0, 3.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 4.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Eq, 0.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 10.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert_eq!(s.status(), Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_var(0.0, -1.0);
        let y = m.add_var(0.0, 0.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Le, 1.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert_eq!(s.status(), Status::Unbounded);
    }

    #[test]
    fn no_constraints_sits_at_lower_bounds() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 1.0);
        let y = m.add_var(-1.0, 3.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert_eq!(s.value(x), 2.0);
        assert_eq!(s.value(y), -1.0);
        assert!((s.objective() - (2.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn no_constraints_unbounded_with_negative_cost() {
        let mut m = Model::new();
        let _x = m.add_var(0.0, -1.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert_eq!(s.status(), Status::Unbounded);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x s.t. x >= -3 with lb(x) = -5 => x = -3.
        let mut m = Model::new();
        let x = m.add_var(-5.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, -3.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!((s.value(x) + 3.0).abs() < 1e-7);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // min x + 2y s.t. x + y >= 3 (dual y1), x <= 2 (dual y2)
        // Optimum x=2, y=1, obj=4. Duals: y1=2 (from y column), x column:
        // y1 + y2 = 1 -> y2 = -1.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 2.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-7);
        let duals = s.duals().expect("simplex provides duals");
        // Strong duality: b'y == optimal objective.
        let dual_obj = 3.0 * duals[0] + 2.0 * duals[1];
        assert!((dual_obj - s.objective()).abs() < 1e-6, "duals {duals:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        for k in 1..20 {
            m.add_constraint(expr(&[(x, 1.0), (y, k as f64)]), Cmp::Ge, 0.0);
        }
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Duplicate equality rows leave a residual artificial in the basis.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn tableau_from_costs_is_dual_feasible() {
        let t = Tableau::from_costs(&[1.0, 2.5, 0.0]);
        assert_eq!(t.m, 0);
        assert_eq!(t.cols, 3);
        assert!(t.obj[..3].iter().all(|&c| c >= 0.0));
        assert_eq!(t.obj[t.width - 1], 0.0);
    }

    #[test]
    fn append_then_dual_phase_reaches_the_constrained_optimum() {
        // min x + 2y starting unconstrained (optimum 0), then append
        // -x - y + s = -3  (i.e. x + y >= 3): dual simplex must land on
        // x = 3, y = 0.
        let mut t = Tableau::from_costs(&[1.0, 2.0]);
        t.append_row(&[(0, -1.0), (1, -1.0)], -3.0);
        assert_eq!(t.m, 1);
        assert!(t.rhs(0) < 0.0, "appended row starts primal infeasible");
        let mut iters = 0;
        let status = dual_then_primal(&mut t, &mut iters, 1000, &lubt_obs::NoopRecorder).unwrap();
        assert_eq!(status, ReoptOutcome::Optimal);
        // Basis holds x (column 0) at value 3.
        assert_eq!(t.basis, vec![0]);
        assert!((t.rhs(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn batched_append_matches_sequential() {
        let mk = || Tableau::from_costs(&[1.0, 1.0, 1.0]);
        let rows: Vec<(Vec<(usize, f64)>, f64)> = vec![
            (vec![(0, -1.0), (1, -1.0)], -4.0),
            (vec![(1, -1.0), (2, -1.0)], -5.0),
        ];
        let mut batched = mk();
        batched.append_rows(&rows);
        let mut seq = mk();
        for (raw, rhs) in &rows {
            seq.append_row(raw, *rhs);
        }
        let mut it_b = 0;
        let mut it_s = 0;
        let st_b =
            dual_then_primal(&mut batched, &mut it_b, 1000, &lubt_obs::NoopRecorder).unwrap();
        let st_s = dual_then_primal(&mut seq, &mut it_s, 1000, &lubt_obs::NoopRecorder).unwrap();
        assert_eq!(st_b, ReoptOutcome::Optimal);
        assert_eq!(st_s, ReoptOutcome::Optimal);
        // Same optimal objective (the obj row's rhs is -objective).
        assert!(
            (batched.obj[batched.width - 1] - seq.obj[seq.width - 1]).abs() < 1e-9,
            "batched {} vs sequential {}",
            batched.obj[batched.width - 1],
            seq.obj[seq.width - 1]
        );
    }

    #[test]
    fn recorder_sees_pivots_solves_and_limit_fraction() {
        let rec = Arc::new(lubt_obs::TraceRecorder::new());
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        let solver = SimplexSolver::new().with_recorder(rec.clone());
        let s = solver.solve(&m).unwrap();
        assert!(s.is_optimal());
        let t = rec.snapshot();
        assert_eq!(t.counter("simplex.solves"), 1);
        assert!(t.counter("simplex.pivots") >= 1, "{t:?}");
        assert_eq!(t.maximum("simplex.peak_pivots"), s.iterations() as u64);
        let frac = t.gauge("simplex.limit_fraction").unwrap();
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn iteration_limit_exhaustion_is_counted() {
        let rec = Arc::new(lubt_obs::TraceRecorder::new());
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        let solver = SimplexSolver::new()
            .with_max_iterations(1)
            .with_recorder(rec.clone());
        let err = solver.solve(&m).unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
        let t = rec.snapshot();
        assert!(t.counter("simplex.iteration_limit_hits") >= 1, "{t:?}");
    }

    #[test]
    fn dual_phase_detects_empty_region() {
        // x >= 2 and x <= 1 via appended rows on a cost-1 variable.
        let mut t = Tableau::from_costs(&[1.0]);
        t.append_rows(&[
            (vec![(0, -1.0)], -2.0), // x >= 2
            (vec![(0, 1.0)], 1.0),   // x <= 1
        ]);
        let mut iters = 0;
        let status = dual_then_primal(&mut t, &mut iters, 1000, &lubt_obs::NoopRecorder).unwrap();
        assert!(matches!(status, ReoptOutcome::Infeasible { .. }));
    }

    #[test]
    fn certified_solves_carry_matching_certificates() {
        // Optimal: certificate duals must agree with the solution's duals.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 2.0);
        let (s, cert) = SimplexSolver::new().solve_certified(&m).unwrap();
        assert!(s.is_optimal());
        let Some(Certificate::Optimality(opt)) = cert else {
            panic!("optimal solve must certify");
        };
        let duals = s.duals().unwrap();
        assert_eq!(opt.duals.len(), duals.len());
        for (a, b) in opt.duals.iter().zip(duals) {
            assert!((a - b).abs() < 1e-9, "{:?} vs {duals:?}", opt.duals);
        }
        // b'y equals the objective (strong duality).
        let dual_obj = 3.0 * opt.duals[0] + 2.0 * opt.duals[1];
        assert!((dual_obj - s.objective()).abs() < 1e-6);

        // Infeasible: the Farkas ray must prove the contradiction.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        let (s, cert) = SimplexSolver::new().solve_certified(&m).unwrap();
        assert_eq!(s.status(), Status::Infeasible);
        let Some(Certificate::Farkas(f)) = cert else {
            panic!("infeasible solve must certify");
        };
        assert_eq!(f.ray.len(), 2);
        assert!(f.ray[0] >= -1e-9, "Ge multiplier sign: {:?}", f.ray);
        assert!(f.ray[1] <= 1e-9, "Le multiplier sign: {:?}", f.ray);
        // Column condition and positive gap.
        let d = f.ray[0] + f.ray[1];
        assert!(d.abs() < 1e-9, "column sum {d}");
        let gap = 5.0 * f.ray[0] + 3.0 * f.ray[1];
        assert!(gap > 1e-9, "gap {gap}");
    }
}
