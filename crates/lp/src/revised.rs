//! Sparse **revised simplex**: the same two-phase primal / dual-repair
//! algorithm as [`crate::SimplexSolver`], but operating on the sparse
//! column store of [`crate::sparse::SparseForm`] with only the basis
//! factorization ([`crate::factor::Factor`]) in memory — no tableau.
//!
//! Per iteration the kernel performs one BTRAN (`y = B^{-T} c_B`), a
//! partial-pricing scan of candidate columns (`d_j = c_j - y·a_j` via
//! sparse dots), one FTRAN (`w = B^{-1} a_q`), the ratio test, and a
//! product-form eta update — `O(nnz)` work where the dense tableau pivot
//! pays `O(m · n)`. Pricing uses a cyclic candidate window with a
//! most-negative rule and smallest-index tie-break, falling back to
//! Bland's rule after a degenerate stall; every choice is a deterministic
//! function of the pivot history, so solves are bit-identical across
//! machines and thread counts.
//!
//! Counters (routed through the solver's [`Recorder`]): `lp.pivots`,
//! `lp.dual_pivots`, `lp.priced_columns`, `lp.refactorizations`,
//! `lp.eta_len` (high-water update-list length), `lp.solves`,
//! `lp.resolves`, `lp.peak_pivots`, and the `lp.limit_fraction` gauge —
//! deliberately disjoint from the dense backend's `simplex.*` keys so
//! bench documents can hold both without aliasing.

// Index-based loops are the natural idiom for the dense work vectors here.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use lubt_obs::Recorder;

use crate::certificate::{CertSeed, Certificate, ColumnRole};
use crate::factor::Factor;
use crate::model::{Cmp, LinExpr, Model};
use crate::simplex::{elapsed_ns, PhaseAgg, ReoptOutcome, WarmStart};
use crate::sparse::SparseForm;
use crate::{LpError, LpSolve, Solution, Status};

const PIVOT_TOL: f64 = 1e-9;
/// Slack on the minimum-ratio cutoff in the two-pass (Harris-style) ratio
/// tests: among rows whose ratio lands within this band of the minimum, the
/// largest pivot element wins. Pivoting on the biggest eligible element keeps
/// the eta file trustworthy at scale, where a bare `PIVOT_TOL` acceptance can
/// select noise-level entries and silently drive the basis singular.
const RATIO_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-9;
/// Minimum partial-pricing window (columns priced per entering choice).
const PRICE_WINDOW_MIN: usize = 64;
/// Minimum column count before the pricing and dual-candidate scans fan
/// out to assisted claiming; below this the scoped-helper setup dwarfs
/// the scan itself.
const PAR_SCAN_MIN: usize = 128;

/// Sparse revised-simplex solver over the same [`Model`]/[`Solution`]
/// surface as the dense backends.
///
/// # Example
///
/// ```
/// use lubt_lp::{Cmp, LinExpr, LpSolve, Model, RevisedSolver, Status};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 2.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
/// let sol = RevisedSolver::new().solve(&m)?;
/// assert_eq!(sol.status(), Status::Optimal);
/// assert!((sol.objective() - 3.0).abs() < 1e-7);
/// # Ok::<(), lubt_lp::LpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RevisedSolver {
    max_iterations: usize,
    stall_limit: usize,
    threads: usize,
    recorder: Arc<dyn Recorder>,
}

impl Default for RevisedSolver {
    fn default() -> Self {
        RevisedSolver {
            max_iterations: 200_000,
            stall_limit: 1_000,
            threads: 1,
            recorder: lubt_obs::noop(),
        }
    }
}

impl RevisedSolver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the hard pivot limit (default 200 000).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the number of consecutive non-improving pivots tolerated before
    /// switching to Bland's rule (default 1 000).
    #[must_use]
    pub fn with_stall_limit(mut self, stall_limit: usize) -> Self {
        self.stall_limit = stall_limit;
        self
    }

    /// Routes `lp.*` instrumentation into `recorder` (default: no-op).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Fans the intra-solve hot loops — the cyclic partial-pricing window
    /// and the dual-ratio candidate scan — out to `threads` participants
    /// under assisted claiming (`0` = one per core, default `1` = the
    /// exact sequential path). The solve output is **bit-identical for
    /// every thread count**: the parallel scans reproduce the serial
    /// entering choice, cursor advance, and `lp.priced_columns` tally
    /// exactly.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub(crate) fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    pub(crate) fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    fn note_solve(&self, iterations: usize) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.incr("lp.solves", 1);
        self.recorder
            .record_max("lp.peak_pivots", iterations as u64);
        self.recorder.gauge(
            "lp.limit_fraction",
            iterations as f64 / self.max_iterations.max(1) as f64,
        );
    }

    /// Solves, optionally starting from a previous optimal basis — the
    /// revised-form counterpart of
    /// [`crate::SimplexSolver::solve_warm`], accepting the **same**
    /// [`WarmStart`] tokens (both backends number standard-form columns
    /// identically).
    ///
    /// # Errors
    ///
    /// Same contract as [`LpSolve::solve`].
    pub fn solve_warm(
        &self,
        model: &Model,
        warm: Option<&WarmStart>,
    ) -> Result<(Solution, Option<WarmStart>), LpError> {
        if let Some(w) = warm {
            model.validate()?;
            let sf = SparseForm::build(model);
            if let Some(result) = self.try_warm(model, sf, w)? {
                return Ok(result);
            }
        }
        self.solve_full(model).map(|(s, w, _, _)| (s, w))
    }

    /// Attempts the warm path; `Ok(None)` means "fall back to cold".
    fn try_warm(
        &self,
        model: &Model,
        sf: SparseForm,
        warm: &WarmStart,
    ) -> Result<Option<(Solution, Option<WarmStart>)>, LpError> {
        if warm.num_vars != model.num_vars() || warm.num_rows > sf.m || sf.m == 0 {
            return Ok(None);
        }
        let mut basis = warm.basis.clone();
        if basis.len() != warm.num_rows || basis.iter().any(|&c| c >= sf.n) {
            return Ok(None);
        }
        for i in warm.num_rows..sf.m {
            let sc = sf.slack_col[i];
            if sc == usize::MAX {
                return Ok(None); // appended equality row: no slack to seed
            }
            basis.push(sc);
        }
        let Some(mut kernel) = Kernel::from_basis(sf, basis) else {
            return Ok(None); // singular basis
        };
        kernel.threads = lubt_par::resolve_threads(self.threads);
        // Verify dual feasibility of the token's basis; noisy tokens fall
        // back to a cold solve, like the dense path.
        let dual_tol = 1e-7 * (1.0 + kernel.sf.c.iter().fold(0.0f64, |a, &c| a.max(c.abs())));
        let y = kernel.duals(false);
        for j in 0..kernel.sf.n {
            if kernel.cost(j, false) - kernel.dot_col(j, &y) < -dual_tol {
                return Ok(None);
            }
        }

        let mut iters = 0usize;
        match kernel.dual_then_primal(
            &mut iters,
            self.max_iterations,
            self.stall_limit,
            &*self.recorder,
        )? {
            ReoptOutcome::Infeasible { .. } => {
                self.note_solve(iters);
                return Ok(Some((Solution::infeasible(model.num_vars(), iters), None)));
            }
            ReoptOutcome::Unbounded => {
                self.note_solve(iters);
                return Ok(Some((Solution::unbounded(model.num_vars(), iters), None)));
            }
            ReoptOutcome::Optimal => {}
        }
        let (x, objective, duals) = kernel.extract(model);
        let next = WarmStart {
            basis: kernel.basis.clone(),
            num_vars: model.num_vars(),
            num_rows: kernel.sf.m,
        };
        self.note_solve(iters);
        Ok(Some((
            Solution::new(Status::Optimal, x, objective, duals, iters),
            Some(next),
        )))
    }

    /// Like [`LpSolve::solve`], additionally materializing the certificate
    /// of the outcome: optimality duals when optimal, a Farkas ray when
    /// infeasible, `None` when unbounded or the basis cannot be factorized.
    ///
    /// # Errors
    ///
    /// Same contract as [`LpSolve::solve`].
    pub fn solve_certified(
        &self,
        model: &Model,
    ) -> Result<(Solution, Option<Certificate>), LpError> {
        let (solution, _, _, seed) = self.solve_full(model)?;
        let cert = seed
            .as_ref()
            .and_then(|s| crate::certificate::compute(model, s));
        Ok((solution, cert))
    }

    /// Like [`LpSolve::solve`], additionally handing back the live kernel
    /// for incremental growth (see [`RevisedSession`]).
    #[allow(clippy::type_complexity)]
    fn solve_keeping_kernel(
        &self,
        model: &Model,
    ) -> Result<(Solution, Option<Kernel>, Option<CertSeed>), LpError> {
        self.solve_full(model).map(|(s, _, k, seed)| (s, k, seed))
    }

    #[allow(clippy::type_complexity)]
    fn solve_full(
        &self,
        model: &Model,
    ) -> Result<
        (
            Solution,
            Option<WarmStart>,
            Option<Kernel>,
            Option<CertSeed>,
        ),
        LpError,
    > {
        model.validate()?;
        let sf = SparseForm::build(model);
        let m = sf.m;

        // Constraint-free models: every variable sits at its lower bound
        // unless a negative cost makes the LP unbounded.
        if m == 0 {
            if model.costs.iter().any(|&c| c < -COST_TOL) {
                return Ok((Solution::unbounded(model.num_vars(), 0), None, None, None));
            }
            let x = sf.recover(&vec![0.0; sf.n]);
            let obj = model.objective_value(&x);
            let kernel = Kernel::from_basis(sf, Vec::new()).expect("empty basis is nonsingular");
            return Ok((
                Solution::new(Status::Optimal, x, obj, Some(vec![]), 0),
                None,
                Some(kernel),
                Some(CertSeed::Optimal(Vec::new())),
            ));
        }

        // Seed the basis with usable (+1) slacks, artificials elsewhere —
        // the same rule and artificial numbering as the dense backend.
        let mut basis = Vec::with_capacity(m);
        let mut art_rows = Vec::new();
        for i in 0..m {
            let sc = sf.slack_col[i];
            let usable = sc != usize::MAX && (sf.at(i, sc) - 1.0).abs() < 1e-12;
            if usable {
                basis.push(sc);
            } else {
                basis.push(sf.n + art_rows.len());
                art_rows.push(i);
            }
        }
        let n_art = art_rows.len();
        let mut kernel = Kernel::from_parts(sf, basis, art_rows)
            .ok_or_else(|| LpError::NumericalBreakdown("singular seed basis".to_string()))?;
        kernel.threads = lubt_par::resolve_threads(self.threads);

        let mut iters = 0usize;
        let rec = &*self.recorder;

        // ---- Phase 1: minimize the artificial sum. ----
        if n_art > 0 {
            match kernel.primal(true, &mut iters, self.max_iterations, self.stall_limit, rec)? {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by 0; cannot happen.
                    return Err(LpError::NumericalBreakdown("phase-1 unbounded".to_string()));
                }
            }
            let feas_tol = 1e-7 * (1.0 + kernel.sf.b.iter().cloned().fold(0.0, f64::max));
            if kernel.objective(true) > feas_tol {
                self.note_solve(iters);
                let seed = CertSeed::Phase1(kernel.roles());
                return Ok((
                    Solution::infeasible(model.num_vars(), iters),
                    None,
                    None,
                    Some(seed),
                ));
            }
            kernel.drive_out_artificials(rec)?;
        }

        // ---- Phase 2: true objective. ----
        match kernel.primal(
            false,
            &mut iters,
            self.max_iterations,
            self.stall_limit,
            rec,
        )? {
            PhaseOutcome::Unbounded => {
                self.note_solve(iters);
                Ok((
                    Solution::unbounded(model.num_vars(), iters),
                    None,
                    None,
                    None,
                ))
            }
            PhaseOutcome::Optimal => {
                let (x, objective, duals) = kernel.extract(model);
                let warm = kernel
                    .basis
                    .iter()
                    .all(|&c| c < kernel.sf.n)
                    .then(|| WarmStart {
                        basis: kernel.basis.clone(),
                        num_vars: model.num_vars(),
                        num_rows: kernel.sf.m,
                    });
                self.note_solve(iters);
                let seed = CertSeed::Optimal(kernel.roles());
                Ok((
                    Solution::new(Status::Optimal, x, objective, duals, iters),
                    warm,
                    Some(kernel),
                    Some(seed),
                ))
            }
        }
    }
}

impl LpSolve for RevisedSolver {
    fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        self.solve_full(model).map(|(s, _, _, _)| s)
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
}

enum DualOutcome {
    PrimalFeasible,
    Infeasible { row: usize },
}

/// The live revised-simplex state: sparse form, basis, factorization,
/// basic values, and the partial-pricing cursor.
struct Kernel {
    sf: SparseForm,
    basis: Vec<usize>,
    /// Row of each artificial column (`sf.n + t` ↦ `art_rows[t]`).
    art_rows: Vec<usize>,
    /// `in_basis[j]` ⟺ structural/slack column `j` is basic. Membership is
    /// tracked explicitly because at scale the reduced cost of a basic
    /// column computed through a long eta file is noise, not an exact
    /// zero — pricing one back in would duplicate a basis column and make
    /// the next refactorization singular.
    in_basis: Vec<bool>,
    factor: Factor,
    x_b: Vec<f64>,
    cursor: usize,
    scratch: Vec<f64>,
    /// Participants for the assisted pricing/candidate scans (resolved;
    /// `1` = exact sequential path).
    threads: usize,
}

impl Kernel {
    fn from_basis(sf: SparseForm, basis: Vec<usize>) -> Option<Kernel> {
        Kernel::from_parts(sf, basis, Vec::new())
    }

    fn from_parts(sf: SparseForm, basis: Vec<usize>, art_rows: Vec<usize>) -> Option<Kernel> {
        let mut in_basis = vec![false; sf.n];
        for &j in &basis {
            if j < sf.n {
                in_basis[j] = true;
            }
        }
        let mut kernel = Kernel {
            sf,
            basis,
            art_rows,
            in_basis,
            factor: Factor::build::<Vec<(usize, f64)>>(&[]).expect("empty factor"),
            x_b: Vec::new(),
            cursor: 0,
            scratch: Vec::new(),
            threads: 1,
        };
        kernel.rebuild_factor().ok()?;
        Some(kernel)
    }

    /// Total columns: structural + slack + artificial.
    fn n_total(&self) -> usize {
        self.sf.n + self.art_rows.len()
    }

    /// Artificials and columns that are already basic never enter.
    fn enterable(&self, j: usize) -> bool {
        j < self.sf.n && !self.in_basis[j]
    }

    fn cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            if j >= self.sf.n {
                1.0
            } else {
                0.0
            }
        } else if j >= self.sf.n {
            0.0
        } else {
            self.sf.c[j]
        }
    }

    /// Objective of the current basic solution under the phase costs.
    fn objective(&self, phase1: bool) -> f64 {
        self.basis
            .iter()
            .zip(&self.x_b)
            .map(|(&j, &x)| self.cost(j, phase1) * x)
            .sum()
    }

    /// Dense image of column `j` (length `m`).
    fn dense_col(&self, j: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.sf.m];
        if j < self.sf.n {
            for &(i, c) in &self.sf.cols[j] {
                v[i] = c;
            }
        } else {
            v[self.art_rows[j - self.sf.n]] = 1.0;
        }
        v
    }

    /// Sparse dot `y · a_j`.
    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.sf.n {
            self.sf.cols[j].iter().map(|&(i, c)| c * y[i]).sum()
        } else {
            y[self.art_rows[j - self.sf.n]]
        }
    }

    /// Simplex multipliers `y = B^{-T} c_B` under the phase costs.
    fn duals(&mut self, phase1: bool) -> Vec<f64> {
        let mut y = vec![0.0; self.sf.m];
        for (pos, &j) in self.basis.iter().enumerate() {
            y[pos] = self.cost(j, phase1);
        }
        self.factor.btran(&mut y, &mut self.scratch);
        y
    }

    /// Rebuilds the factorization from the current basis columns and
    /// recomputes the basic values from scratch.
    fn rebuild_factor(&mut self) -> Result<(), LpError> {
        let cols: Vec<Vec<(usize, f64)>> = self
            .basis
            .iter()
            .map(|&j| {
                if j < self.sf.n {
                    self.sf.cols[j].clone()
                } else {
                    vec![(self.art_rows[j - self.sf.n], 1.0)]
                }
            })
            .collect();
        self.factor = Factor::build(&cols)
            .ok_or_else(|| LpError::NumericalBreakdown("singular basis".to_string()))?;
        self.x_b = self.sf.b.clone();
        let mut x = std::mem::take(&mut self.x_b);
        self.factor.ftran(&mut x, &mut self.scratch);
        self.x_b = x;
        Ok(())
    }

    /// Executes the basis change `basis[pos] <- enter` given the entering
    /// column's ftran image `w`, refactorizing when the eta file is long.
    fn pivot(
        &mut self,
        pos: usize,
        enter: usize,
        w: &[f64],
        rec: &dyn Recorder,
    ) -> Result<(), LpError> {
        let profiling = rec.enabled();
        let t0 = profiling.then(std::time::Instant::now);
        let t = self.x_b[pos] / w[pos];
        for i in 0..self.sf.m {
            if i != pos && w[i] != 0.0 {
                self.x_b[i] -= w[i] * t;
            }
        }
        self.x_b[pos] = t;
        self.factor.push_pivot(pos, w);
        debug_assert!(enter < self.sf.n, "artificials never enter");
        let leaving = self.basis[pos];
        if leaving < self.sf.n {
            self.in_basis[leaving] = false;
        }
        self.in_basis[enter] = true;
        self.basis[pos] = enter;
        if let Some(t0) = t0 {
            rec.record_max("lp.eta_len", self.factor.eta_len() as u64);
            rec.span_record("eta_apply", 1, elapsed_ns(t0));
        }
        if self.factor.needs_refactor() {
            let t1 = profiling.then(std::time::Instant::now);
            self.rebuild_factor()?;
            if let Some(t1) = t1 {
                rec.incr("lp.refactorizations", 1);
                rec.span_record("refactor", 1, elapsed_ns(t1));
            }
        }
        Ok(())
    }

    /// Entering column under partial pricing (or Bland's rule), pricing
    /// `d_j = c_j - y·a_j` by sparse dots. Returns `None` at optimality.
    fn price(&mut self, y: &[f64], phase1: bool, bland: bool, rec: &dyn Recorder) -> Option<usize> {
        let n_t = self.n_total();
        if !bland && self.threads > 1 && n_t >= PAR_SCAN_MIN {
            return self.price_assisted(y, phase1, rec);
        }
        let mut priced = 0u64;
        let chosen = if bland {
            let mut found = None;
            for j in 0..n_t {
                if !self.enterable(j) {
                    continue;
                }
                priced += 1;
                if self.cost(j, phase1) - self.dot_col(j, y) < -COST_TOL {
                    found = Some(j);
                    break;
                }
            }
            found
        } else {
            // Cyclic candidate window: price at least `window` columns
            // starting at the cursor, keep going until one is eligible (or
            // the whole cycle is exhausted), take the most negative with a
            // smallest-index tie-break.
            let window = (n_t / 8).max(PRICE_WINDOW_MIN);
            let mut best: Option<(usize, f64)> = None;
            let mut j = if n_t == 0 { 0 } else { self.cursor % n_t };
            for step in 0..n_t {
                if self.enterable(j) {
                    priced += 1;
                    let d = self.cost(j, phase1) - self.dot_col(j, y);
                    if d < -COST_TOL {
                        let better = match best {
                            None => true,
                            Some((bj, bd)) => d < bd || (d == bd && j < bj),
                        };
                        if better {
                            best = Some((j, d));
                        }
                    }
                }
                j = if j + 1 == n_t { 0 } else { j + 1 };
                if step + 1 >= window && best.is_some() {
                    break;
                }
            }
            self.cursor = j;
            best.map(|(j, _)| j)
        };
        if rec.enabled() {
            rec.incr("lp.priced_columns", priced);
        }
        chosen
    }

    /// [`Kernel::price`]'s cyclic window scanned by assisted claiming
    /// (DESIGN.md §17), reproducing the serial scan *exactly* — the same
    /// entering column, the same cursor advance, the same
    /// `lp.priced_columns` tally — for every thread count.
    ///
    /// Phase A prices exactly the first `min(window, n_t)` cyclic steps:
    /// precisely the columns the serial loop prices whenever the window
    /// holds any candidate (it breaks at `step + 1 >= window` once `best`
    /// is set, and cannot break earlier). Per-block argmins merge
    /// most-negative-first with a lowest-index tie-break, which is
    /// order-independent, so block boundaries cannot matter. If the
    /// window came up empty, the serial loop degenerates to "first
    /// candidate after the window wins": phase B scans the remaining
    /// steps in blocks, each block stopping at its own first candidate,
    /// and the ascending-block fold keeps the earliest block's hit — the
    /// serial choice — while summing the pricing tallies of every block
    /// up to and including it (later blocks ran speculatively; their
    /// tallies are discarded exactly as the serial loop never scans
    /// them).
    fn price_assisted(&mut self, y: &[f64], phase1: bool, rec: &dyn Recorder) -> Option<usize> {
        let n_t = self.n_total();
        let window = (n_t / 8).max(PRICE_WINDOW_MIN);
        let start = self.cursor % n_t;
        let head_len = window.min(n_t);
        let threads = self.threads;
        let this: &Kernel = self;
        let wrap = |step: usize| {
            let j = start + step;
            if j >= n_t {
                j - n_t
            } else {
                j
            }
        };
        let grain = (head_len / (threads * 4)).max(32);
        let (best, mut priced) = lubt_par::assist_reduce_traced(
            threads,
            head_len,
            grain,
            rec,
            |range| {
                let mut best: Option<(usize, f64)> = None;
                let mut priced = 0u64;
                for step in range {
                    let j = wrap(step);
                    if this.enterable(j) {
                        priced += 1;
                        let d = this.cost(j, phase1) - this.dot_col(j, y);
                        if d < -COST_TOL {
                            let better = match best {
                                None => true,
                                Some((bj, bd)) => d < bd || (d == bd && j < bj),
                            };
                            if better {
                                best = Some((j, d));
                            }
                        }
                    }
                }
                (best, priced)
            },
            |(a, ap), (b, bp)| {
                let merged = match (a, b) {
                    (Some((aj, ad)), Some((bj, bd))) => {
                        if bd < ad || (bd == ad && bj < aj) {
                            Some((bj, bd))
                        } else {
                            Some((aj, ad))
                        }
                    }
                    (a, None) => a,
                    (None, b) => b,
                };
                (merged, ap + bp)
            },
        )
        .unwrap_or((None, 0));
        let mut chosen = best.map(|(j, _)| j);
        let mut steps_scanned = head_len;
        if chosen.is_none() && head_len < n_t {
            let tail_len = n_t - head_len;
            let grain = (tail_len / (threads * 4)).max(64);
            let (hit, tail_priced) = lubt_par::assist_reduce_traced(
                threads,
                tail_len,
                grain,
                rec,
                |range| {
                    let mut priced = 0u64;
                    let mut hit: Option<(usize, usize)> = None; // (step, column)
                    for off in range {
                        let step = head_len + off;
                        let j = wrap(step);
                        if this.enterable(j) {
                            priced += 1;
                            if this.cost(j, phase1) - this.dot_col(j, y) < -COST_TOL {
                                hit = Some((step, j));
                                break;
                            }
                        }
                    }
                    (hit, priced)
                },
                |acc, next| {
                    if acc.0.is_some() {
                        acc
                    } else {
                        (next.0, acc.1 + next.1)
                    }
                },
            )
            .expect("tail has at least one block");
            priced += tail_priced;
            match hit {
                Some((step, j)) => {
                    chosen = Some(j);
                    steps_scanned = step + 1;
                }
                None => steps_scanned = n_t,
            }
        }
        self.cursor = wrap(steps_scanned);
        if rec.enabled() {
            rec.incr("lp.priced_columns", priced);
        }
        chosen
    }

    /// Candidate build for the dual ratio test: `(column, row entry,
    /// dual ratio)` per eligible column, in ascending column order. Fans
    /// out to assisted claiming when the column range is wide enough;
    /// ascending-block concatenation makes the parallel vector
    /// bit-identical to the serial one.
    fn dual_candidates(
        &self,
        rho: &[f64],
        y: &[f64],
        rec: &dyn Recorder,
    ) -> Vec<(usize, f64, f64)> {
        let n_t = self.n_total();
        let fill = |j: usize, out: &mut Vec<(usize, f64, f64)>| {
            if !self.enterable(j) {
                return;
            }
            let a = self.dot_col(j, rho);
            if a < -PIVOT_TOL {
                let d = self.cost(j, false) - self.dot_col(j, y);
                out.push((j, a, d / (-a)));
            }
        };
        if self.threads > 1 && n_t >= PAR_SCAN_MIN {
            let grain = (n_t / (self.threads * 4)).max(64);
            lubt_par::assist_flat_map_traced(self.threads, n_t, grain, rec, fill)
        } else {
            let mut cands = Vec::new();
            for j in 0..n_t {
                fill(j, &mut cands);
            }
            cands
        }
    }

    /// Leaving position by a two-pass minimum-ratio test: the first pass
    /// finds the minimum ratio, the second admits rows within `RATIO_TOL` of
    /// it and takes the largest pivot element (smallest basis column on
    /// exact magnitude ties, keeping the sequence deterministic).
    fn choose_leaving(&self, w: &[f64]) -> Option<usize> {
        let mut theta = f64::INFINITY;
        for i in 0..self.sf.m {
            if w[i] > PIVOT_TOL {
                theta = theta.min(self.x_b[i] / w[i]);
            }
        }
        if theta == f64::INFINITY {
            return None;
        }
        let cutoff = theta + RATIO_TOL * (1.0 + theta.abs());
        let mut best: Option<usize> = None;
        for i in 0..self.sf.m {
            let a = w[i];
            if a > PIVOT_TOL && self.x_b[i] / a <= cutoff {
                let better = match best {
                    None => true,
                    Some(bi) => a > w[bi] || (a == w[bi] && self.basis[i] < self.basis[bi]),
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Primal simplex loop under the phase costs.
    fn primal(
        &mut self,
        phase1: bool,
        iters: &mut usize,
        max_iterations: usize,
        stall_limit: usize,
        rec: &dyn Recorder,
    ) -> Result<PhaseOutcome, LpError> {
        let start = *iters;
        let mut degenerate = 0u64;
        let mut activations = 0u64;
        // Span phases aggregate locally — one recorder call per phase per
        // `primal` invocation, nothing per pivot beyond what `pivot`
        // itself records. All timing work is behind the `enabled()`
        // pre-check.
        let profiling = rec.enabled();
        let mut pricing = PhaseAgg::default();
        let mut ratio = PhaseAgg::default();
        let mut ftran_ns = 0u64;
        let out = (|| {
            let mut bland = false;
            let mut stall = 0usize;
            let mut last_obj = f64::INFINITY;
            loop {
                if *iters >= max_iterations {
                    return Err(LpError::IterationLimit {
                        limit: max_iterations,
                    });
                }
                let chosen = pricing.time(profiling, || {
                    let y = self.duals(phase1);
                    self.price(&y, phase1, bland, rec)
                });
                let Some(enter) = chosen else {
                    return Ok(PhaseOutcome::Optimal);
                };
                let tf = profiling.then(std::time::Instant::now);
                let mut w = self.dense_col(enter);
                let mut scratch = std::mem::take(&mut self.scratch);
                self.factor.ftran(&mut w, &mut scratch);
                self.scratch = scratch;
                if let Some(tf) = tf {
                    ftran_ns = ftran_ns.saturating_add(elapsed_ns(tf));
                }
                let Some(pos) = ratio.time(profiling, || self.choose_leaving(&w)) else {
                    return Ok(PhaseOutcome::Unbounded);
                };
                self.pivot(pos, enter, &w, rec)?;
                *iters += 1;
                let obj = self.objective(phase1);
                if obj < last_obj - 1e-12 {
                    stall = 0;
                    last_obj = obj;
                } else {
                    degenerate += 1;
                    stall += 1;
                    if stall > stall_limit && !bland {
                        bland = true;
                        activations += 1;
                    }
                }
            }
        })();
        if rec.enabled() {
            rec.incr("lp.pivots", (*iters - start) as u64);
            rec.incr("lp.degenerate_pivots", degenerate);
            rec.incr("lp.bland_activations", activations);
            if out.is_err() {
                rec.incr("lp.iteration_limit_hits", 1);
            }
            rec.span_record("pricing", pricing.hits, pricing.ns);
            rec.span_record("ratio_test", ratio.hits, ratio.ns);
            // The entering-column FTRAN is eta-file application work; its
            // hit count is already carried by `pivot`'s per-pivot record.
            rec.span_record("eta_apply", 0, ftran_ns);
        }
        out
    }

    /// Dual simplex from a dual-feasible basis with possibly negative
    /// basic values, mirroring the dense `run_dual_phase`.
    fn dual(
        &mut self,
        iters: &mut usize,
        max_iterations: usize,
        rec: &dyn Recorder,
    ) -> Result<DualOutcome, LpError> {
        let start = *iters;
        let mut activations = 0u64;
        let profiling = rec.enabled();
        let mut pricing = PhaseAgg::default();
        let mut ratio = PhaseAgg::default();
        let mut ftran_ns = 0u64;
        let out = (|| {
            let feas_tol = {
                let max_b = self.x_b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
                1e-7 * (1.0 + max_b)
            };
            let mut bland = false;
            let mut stall = 0usize;
            loop {
                if *iters >= max_iterations {
                    return Err(LpError::IterationLimit {
                        limit: max_iterations,
                    });
                }
                // Leaving row: most negative basic value (Bland: smallest
                // basis column index).
                let mut leave: Option<(usize, f64)> = None;
                for i in 0..self.sf.m {
                    let v = self.x_b[i];
                    if v < -feas_tol {
                        let better = match leave {
                            None => true,
                            Some((li, lv)) => {
                                if bland {
                                    self.basis[i] < self.basis[li]
                                } else {
                                    v < lv
                                }
                            }
                        };
                        if better {
                            leave = Some((i, v));
                        }
                    }
                }
                let Some((pos, _)) = leave else {
                    return Ok(DualOutcome::PrimalFeasible);
                };
                // Row pos of B^{-1}A via one BTRAN of e_pos, then the dual
                // ratio test over negative entries. The BTRAN plus the
                // reduced-cost scan is the dual analogue of pricing.
                let cands = pricing.time(profiling, || {
                    let mut rho = vec![0.0; self.sf.m];
                    rho[pos] = 1.0;
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.factor.btran(&mut rho, &mut scratch);
                    self.scratch = scratch;
                    let y = self.duals(false);
                    self.dual_candidates(&rho, &y, rec)
                });
                let tr = profiling.then(std::time::Instant::now);
                let enter = if bland {
                    let mut best: Option<(usize, f64)> = None;
                    for &(j, _, ratio) in &cands {
                        let better = match best {
                            None => true,
                            Some((ej, er)) => {
                                ratio < er - 1e-12 || ((ratio - er).abs() <= 1e-12 && j < ej)
                            }
                        };
                        if better {
                            best = Some((j, ratio));
                        }
                    }
                    best.map(|(j, _)| j)
                } else {
                    // Two-pass test mirroring `choose_leaving`: largest
                    // magnitude among ratios within `RATIO_TOL` of the
                    // minimum, smallest column on exact ties.
                    let theta = cands.iter().fold(f64::INFINITY, |t, c| t.min(c.2));
                    let cutoff = theta + RATIO_TOL * (1.0 + theta.abs());
                    let mut best: Option<(usize, f64)> = None;
                    for &(j, a, ratio) in &cands {
                        if ratio <= cutoff {
                            let better = match best {
                                None => true,
                                Some((ej, ea)) => a < ea || (a == ea && j < ej),
                            };
                            if better {
                                best = Some((j, a));
                            }
                        }
                    }
                    best.map(|(j, _)| j)
                };
                if let Some(tr) = tr {
                    ratio.hits += 1;
                    ratio.ns = ratio.ns.saturating_add(elapsed_ns(tr));
                }
                let Some(enter) = enter else {
                    // Row reads `(non-negative combination) = negative`:
                    // empty feasible region.
                    return Ok(DualOutcome::Infeasible { row: pos });
                };
                let tf = profiling.then(std::time::Instant::now);
                let mut w = self.dense_col(enter);
                let mut scratch = std::mem::take(&mut self.scratch);
                self.factor.ftran(&mut w, &mut scratch);
                self.scratch = scratch;
                if let Some(tf) = tf {
                    ftran_ns = ftran_ns.saturating_add(elapsed_ns(tf));
                }
                self.pivot(pos, enter, &w, rec)?;
                *iters += 1;
                stall += 1;
                if stall > 1_000 && !bland {
                    bland = true;
                    activations += 1;
                }
            }
        })();
        if rec.enabled() {
            rec.incr("lp.dual_pivots", (*iters - start) as u64);
            rec.incr("lp.bland_activations", activations);
            if out.is_err() {
                rec.incr("lp.iteration_limit_hits", 1);
            }
            rec.span_record("pricing", pricing.hits, pricing.ns);
            rec.span_record("ratio_test", ratio.hits, ratio.ns);
            rec.span_record("eta_apply", 0, ftran_ns);
        }
        out
    }

    /// Dual repair followed by a primal clean-up — the warm/incremental
    /// re-optimization.
    fn dual_then_primal(
        &mut self,
        iters: &mut usize,
        max_iterations: usize,
        stall_limit: usize,
        rec: &dyn Recorder,
    ) -> Result<ReoptOutcome, LpError> {
        match self.dual(iters, max_iterations, rec)? {
            DualOutcome::Infeasible { row } => return Ok(ReoptOutcome::Infeasible { row }),
            DualOutcome::PrimalFeasible => {}
        }
        match self.primal(false, iters, max_iterations, stall_limit, rec)? {
            PhaseOutcome::Unbounded => Ok(ReoptOutcome::Unbounded),
            PhaseOutcome::Optimal => Ok(ReoptOutcome::Optimal),
        }
    }

    /// Role of every current basis column, stated over the original model
    /// (the sparse slack→row map covers appended rows as well).
    fn roles(&self) -> Vec<ColumnRole> {
        let mut row_of_slack = vec![usize::MAX; self.sf.n];
        for (i, &sc) in self.sf.slack_col.iter().enumerate() {
            if sc != usize::MAX {
                row_of_slack[sc] = i;
            }
        }
        self.basis
            .iter()
            .map(|&j| {
                if j < self.sf.n_orig {
                    ColumnRole::Structural(j)
                } else if j < self.sf.n {
                    ColumnRole::Slack(row_of_slack[j])
                } else {
                    ColumnRole::Artificial(self.art_rows[j - self.sf.n])
                }
            })
            .collect()
    }

    /// Pivots residual artificials out of the basis where a structural
    /// column is available (degenerate pivots); redundant rows keep their
    /// zero-valued artificial, which stays barred from re-entering.
    fn drive_out_artificials(&mut self, rec: &dyn Recorder) -> Result<(), LpError> {
        for pos in 0..self.sf.m {
            if self.basis[pos] < self.sf.n {
                continue;
            }
            let mut rho = vec![0.0; self.sf.m];
            rho[pos] = 1.0;
            let mut scratch = std::mem::take(&mut self.scratch);
            self.factor.btran(&mut rho, &mut scratch);
            self.scratch = scratch;
            let replacement =
                (0..self.sf.n).find(|&j| self.enterable(j) && self.dot_col(j, &rho).abs() > 1e-7);
            if let Some(j) = replacement {
                let mut w = self.dense_col(j);
                let mut scratch = std::mem::take(&mut self.scratch);
                self.factor.ftran(&mut w, &mut scratch);
                self.scratch = scratch;
                self.pivot(pos, j, &w, rec)?;
            }
        }
        Ok(())
    }

    /// Recovers the original-space solution, objective, and duals.
    fn extract(&mut self, model: &Model) -> (Vec<f64>, f64, Option<Vec<f64>>) {
        let mut x_std = vec![0.0; self.sf.n];
        for (pos, &j) in self.basis.iter().enumerate() {
            if j < self.sf.n {
                x_std[j] = self.x_b[pos].max(0.0);
            }
        }
        let x = self.sf.recover(&x_std);
        let objective = model.objective_value(&x);
        let y = self.duals(false);
        let duals = Some(self.sf.recover_duals(&y));
        (x, objective, duals)
    }
}

/// A combined-and-sorted appended row: coefficients over shifted
/// variables, sense, shifted right-hand side.
type PendingRow = (Vec<(usize, f64)>, Cmp, f64);

/// Incremental revised-simplex session: the sparse counterpart of
/// [`crate::SimplexSession`], with the same grow-by-appending-rows
/// surface. Each appended batch becomes a single `O(nnz)` append-block
/// operator on the basis factorization — no tableau re-layout, no
/// re-elimination against existing rows.
///
/// # Example
///
/// ```
/// use lubt_lp::{Cmp, LinExpr, Model, RevisedSession};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 1.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
///
/// let mut session = RevisedSession::start(m)?;
/// assert!((session.solution().objective() - 4.0).abs() < 1e-7);
/// session.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 3.0)?;
/// let sol = session.resolve()?;
/// assert!((sol.objective() - 4.0).abs() < 1e-7);
/// # Ok::<(), lubt_lp::LpError>(())
/// ```
pub struct RevisedSession {
    model: Model,
    /// Live kernel, kept at an optimal basis between resolves (absent when
    /// the session can no longer be grown).
    kernel: Option<Kernel>,
    pending: Vec<PendingRow>,
    solution: Solution,
    max_iterations: usize,
    stall_limit: usize,
    threads: usize,
    recorder: Arc<dyn Recorder>,
    infeasible: bool,
    /// Seed of the certificate for the most recent (re)solve outcome.
    cert_seed: Option<CertSeed>,
}

impl RevisedSession {
    /// Cold-solves `model` and retains the kernel for incremental growth.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::SimplexSession::start`].
    pub fn start(model: Model) -> Result<Self, LpError> {
        Self::start_with(model, RevisedSolver::new())
    }

    /// Like [`RevisedSession::start`], but the cold solve and every later
    /// [`RevisedSession::resolve`] inherit `solver`'s limits and recorder.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::SimplexSession::start`].
    pub fn start_with(model: Model, solver: RevisedSolver) -> Result<Self, LpError> {
        let (solution, kernel, cert_seed) = solver.solve_keeping_kernel(&model)?;
        let infeasible = solution.status() != Status::Optimal;
        Ok(RevisedSession {
            model,
            kernel,
            pending: Vec::new(),
            solution,
            max_iterations: solver.max_iterations(),
            stall_limit: solver.stall_limit,
            threads: solver.threads,
            recorder: Arc::clone(solver.recorder()),
            infeasible,
            cert_seed,
        })
    }

    /// The model as grown so far.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The solution of the most recent (re)solve.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Materializes the certificate for the most recent (re)solve outcome:
    /// optimality duals when optimal, a Farkas ray when infeasible. `None`
    /// for unbounded outcomes or when the basis cannot be factorized.
    pub fn certificate(&self) -> Option<Certificate> {
        self.cert_seed
            .as_ref()
            .and_then(|s| crate::certificate::compute(&self.model, s))
    }

    /// Appends an inequality row (`Le` or `Ge`). Takes effect at the next
    /// [`RevisedSession::resolve`].
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::SimplexSession::add_constraint`].
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) -> Result<(), LpError> {
        if cmp == Cmp::Eq {
            return Err(LpError::NumericalBreakdown(
                "incremental sessions accept only inequality rows (equalities need artificials)"
                    .to_string(),
            ));
        }
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteInput {
                what: "appended row rhs".to_string(),
                value: rhs,
            });
        }
        let shift = self
            .kernel
            .as_ref()
            .map(|k| k.sf.shift.clone())
            .unwrap_or_else(|| self.model.lower.clone());
        let mut combined: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let mut shifted_rhs = rhs;
        for &(v, c) in expr.terms() {
            if v.index() >= self.model.num_vars() {
                return Err(LpError::UnknownVariable {
                    index: v.index(),
                    model_vars: self.model.num_vars(),
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: "appended row coefficient".to_string(),
                    value: c,
                });
            }
            *combined.entry(v.index()).or_insert(0.0) += c;
            shifted_rhs -= c * shift[v.index()];
        }
        let mut terms: Vec<(usize, f64)> =
            combined.into_iter().filter(|&(_, c)| c != 0.0).collect();
        terms.sort_by_key(|&(i, _)| i);
        self.model.add_constraint(expr, cmp, rhs);
        self.pending.push((terms, cmp, shifted_rhs));
        Ok(())
    }

    /// Integrates all pending rows as one append block and re-optimizes
    /// with the dual simplex.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::SimplexSession::resolve`].
    pub fn resolve(&mut self) -> Result<&Solution, LpError> {
        if self.infeasible {
            self.pending.clear();
            return Ok(&self.solution);
        }
        if self.pending.is_empty() {
            return Ok(&self.solution);
        }
        // A residual artificial in the basis (redundant equality row in the
        // seed model) would be aliased by the appended slack's column id;
        // re-solve the grown model cold instead — `add_constraint` already
        // recorded every pending row in `self.model`.
        let has_artificials = self
            .kernel
            .as_ref()
            .is_none_or(|k| k.basis.iter().any(|&j| j >= k.sf.n));
        if has_artificials {
            self.pending.clear();
            if self.recorder.enabled() {
                self.recorder.incr("lp.resolves", 1);
            }
            let solver = RevisedSolver::new()
                .with_max_iterations(self.max_iterations)
                .with_stall_limit(self.stall_limit)
                .with_threads(self.threads)
                .with_recorder(Arc::clone(&self.recorder));
            let (solution, kernel, cert_seed) = solver.solve_keeping_kernel(&self.model)?;
            self.infeasible = solution.status() != Status::Optimal;
            self.solution = solution;
            self.kernel = kernel;
            self.cert_seed = cert_seed;
            return Ok(&self.solution);
        }
        let kernel = self
            .kernel
            .as_mut()
            .expect("an optimal session always holds a kernel");
        let batch: Vec<(Vec<(usize, f64)>, f64)> = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(terms, cmp, rhs)| {
                // Orient the row so its slack carries +1: `sum <= rhs`
                // passes through, `sum >= rhs` is negated.
                let sign = match cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => unreachable!("rejected in add_constraint"),
                };
                (
                    terms.iter().map(|&(i, c)| (i, sign * c)).collect(),
                    sign * rhs,
                )
            })
            .collect();

        // Append block: the new rows' coefficients on the current basis
        // columns (by position), the fresh slacks joining the basis.
        let mut pos_of = vec![usize::MAX; kernel.sf.n];
        for (pos, &bcol) in kernel.basis.iter().enumerate() {
            if bcol < kernel.sf.n {
                pos_of[bcol] = pos;
            }
        }
        let mut crows = Vec::with_capacity(batch.len());
        for (terms, rhs) in &batch {
            let mut crow: Vec<(usize, f64)> = terms
                .iter()
                .filter(|&&(j, _)| pos_of[j] != usize::MAX)
                .map(|&(j, c)| (pos_of[j], c))
                .collect();
            crow.sort_unstable_by_key(|&(p, _)| p);
            crows.push(crow);
            kernel.basis.push(kernel.sf.n); // the row's fresh slack
            kernel.in_basis.push(true);
            kernel.sf.append_row(terms, *rhs);
        }
        kernel.factor.push_append(crows);
        // Recompute the basic values through the extended operator chain
        // (the old positions are untouched by construction).
        kernel.x_b = kernel.sf.b.clone();
        let mut x = std::mem::take(&mut kernel.x_b);
        let mut scratch = std::mem::take(&mut kernel.scratch);
        kernel.factor.ftran(&mut x, &mut scratch);
        kernel.x_b = x;
        kernel.scratch = scratch;

        let mut iters = self.solution.iterations();
        if self.recorder.enabled() {
            self.recorder.incr("lp.resolves", 1);
        }
        let status = kernel.dual_then_primal(
            &mut iters,
            self.max_iterations,
            self.stall_limit,
            &*self.recorder,
        )?;
        if self.recorder.enabled() {
            self.recorder.record_max("lp.peak_pivots", iters as u64);
            self.recorder.gauge(
                "lp.limit_fraction",
                iters as f64 / self.max_iterations.max(1) as f64,
            );
        }
        match status {
            ReoptOutcome::Optimal => {
                self.cert_seed = Some(CertSeed::Optimal(kernel.roles()));
                let n_orig = self.model.num_vars();
                let mut x = vec![0.0; n_orig];
                for (pos, &b) in kernel.basis.iter().enumerate() {
                    if b < n_orig {
                        x[b] = kernel.x_b[pos].max(0.0);
                    }
                }
                for (xi, s) in x.iter_mut().zip(&kernel.sf.shift) {
                    *xi += s;
                }
                let objective = self.model.objective_value(&x);
                self.solution = Solution::new(Status::Optimal, x, objective, None, iters);
            }
            ReoptOutcome::Infeasible { row } => {
                self.cert_seed = Some(CertSeed::DualRow(kernel.roles(), row));
                self.infeasible = true;
                self.solution = Solution::infeasible(self.model.num_vars(), iters);
            }
            ReoptOutcome::Unbounded => {
                self.cert_seed = None;
                self.solution = Solution::unbounded(self.model.num_vars(), iters);
            }
        }
        Ok(&self.solution)
    }
}

impl std::fmt::Debug for RevisedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevisedSession")
            .field("vars", &self.model.num_vars())
            .field("rows", &self.model.num_constraints())
            .field("pending", &self.pending.len())
            .field("status", &self.solution.status())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Var;
    use crate::SimplexSolver;

    fn expr(terms: &[(Var, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    fn assert_agrees(m: &Model) {
        let dense = SimplexSolver::new().solve(m).unwrap();
        let revised = RevisedSolver::new().solve(m).unwrap();
        assert_eq!(dense.status(), revised.status());
        if dense.is_optimal() {
            assert!(
                (dense.objective() - revised.objective()).abs()
                    < 1e-9 * (1.0 + dense.objective().abs()),
                "dense {} vs revised {}",
                dense.objective(),
                revised.objective()
            );
            assert!(m.check_feasible(revised.values(), 1e-6).is_ok());
        }
    }

    #[test]
    fn agrees_with_dense_on_basic_shapes() {
        // Optimal with mixed senses and shifted bounds.
        let mut m = Model::new();
        let x = m.add_var(0.0, -1.0);
        let y = m.add_var(0.0, -2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 4.0);
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Le, 2.0);
        assert_agrees(&m);

        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(2.0, 3.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Eq, 3.0);
        assert_agrees(&m);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        assert_eq!(
            RevisedSolver::new().solve(&m).unwrap().status(),
            Status::Infeasible
        );

        let mut m = Model::new();
        let x = m.add_var(0.0, -1.0);
        let y = m.add_var(0.0, 0.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Le, 1.0);
        assert_eq!(
            RevisedSolver::new().solve(&m).unwrap().status(),
            Status::Unbounded
        );
    }

    #[test]
    fn no_constraints_matches_dense() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 1.0);
        let y = m.add_var(-1.0, 3.0);
        let s = RevisedSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert_eq!(s.value(x), 2.0);
        assert_eq!(s.value(y), -1.0);

        let mut m = Model::new();
        let _ = m.add_var(0.0, -1.0);
        assert_eq!(
            RevisedSolver::new().solve(&m).unwrap().status(),
            Status::Unbounded
        );
    }

    #[test]
    fn redundant_equalities_leave_residual_artificials() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        let s = RevisedSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 2.0);
        let s = RevisedSolver::new().solve(&m).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-7);
        let duals = s.duals().expect("revised simplex provides duals");
        let dual_obj = 3.0 * duals[0] + 2.0 * duals[1];
        assert!((dual_obj - s.objective()).abs() < 1e-6, "duals {duals:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        for k in 1..20 {
            m.add_constraint(expr(&[(x, 1.0), (y, k as f64)]), Cmp::Ge, 0.0);
        }
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        let s = RevisedSolver::new().solve(&m).unwrap();
        assert!(s.is_optimal());
        assert!((s.objective() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn warm_start_tokens_transfer_between_backends() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
        // Dense-produced token consumed by the revised solver...
        let (s1, warm) = SimplexSolver::new().solve_warm(&m, None).unwrap();
        assert!(s1.is_optimal());
        let warm = warm.expect("optimal basis yields a token");
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 3.0);
        let (s2, warm2) = RevisedSolver::new().solve_warm(&m, Some(&warm)).unwrap();
        assert!(s2.is_optimal());
        assert!((s2.objective() - 4.0).abs() < 1e-7);
        // ...and the revised token consumed by the dense solver.
        let warm2 = warm2.expect("optimal basis yields a token");
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Ge, 1.5);
        let (s3, _) = SimplexSolver::new().solve_warm(&m, Some(&warm2)).unwrap();
        assert!(s3.is_optimal());
        assert!((s3.objective() - 4.5).abs() < 1e-7);
    }

    #[test]
    fn session_matches_cold_solves_row_by_row() {
        let mut base = Model::new();
        let vars = base.add_vars(5, 0.0, 1.0);
        base.add_constraint(
            LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
            Cmp::Ge,
            10.0,
        );
        let mut session = RevisedSession::start(base.clone()).unwrap();
        let rows: &[(&[usize], Cmp, f64)] = &[
            (&[0, 1], Cmp::Ge, 6.0),
            (&[2, 3], Cmp::Ge, 5.0),
            (&[4], Cmp::Le, 2.0),
            (&[0, 4], Cmp::Ge, 3.0),
        ];
        for &(cols, cmp, rhs) in rows {
            let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
            base.add_constraint(e.clone(), cmp, rhs);
            session.add_constraint(e, cmp, rhs).unwrap();
            let inc = session.resolve().unwrap().clone();
            let cold = RevisedSolver::new().solve(&base).unwrap();
            assert_eq!(inc.status(), cold.status());
            assert!(
                (inc.objective() - cold.objective()).abs() < 1e-7,
                "incremental {} vs cold {}",
                inc.objective(),
                cold.objective()
            );
            assert!(base.check_feasible(inc.values(), 1e-6).is_ok());
        }
    }

    #[test]
    fn session_with_shifted_lower_bounds() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 1.0);
        let y = m.add_var(-1.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
        let mut s = RevisedSession::start(m).unwrap();
        assert!((s.solution().objective() - 4.0).abs() < 1e-7);
        s.add_constraint(expr(&[(y, 1.0)]), Cmp::Ge, 1.5).unwrap();
        let sol = s.resolve().unwrap();
        assert!((sol.objective() - 4.0).abs() < 1e-7);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 1.5 - 1e-9);
    }

    #[test]
    fn session_detects_infeasibility_and_stays_there() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        let mut s = RevisedSession::start(m).unwrap();
        s.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0).unwrap();
        assert_eq!(s.resolve().unwrap().status(), Status::Infeasible);
        s.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 1.0).unwrap();
        assert_eq!(s.resolve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn equality_rows_are_rejected_by_the_session() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 1.0);
        let mut s = RevisedSession::start(m).unwrap();
        assert!(s.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 2.0).is_err());
    }

    #[test]
    fn many_appended_rows_force_refactorizations() {
        // Enough growth and re-pivoting to cross the eta-refresh trigger;
        // the answer must keep matching cold dense solves throughout.
        let rec = std::sync::Arc::new(lubt_obs::TraceRecorder::new());
        let mut base = Model::new();
        let vars = base.add_vars(12, 0.0, 1.0);
        base.add_constraint(
            LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
            Cmp::Ge,
            24.0,
        );
        let mut session = RevisedSession::start_with(
            base.clone(),
            RevisedSolver::new().with_recorder(rec.clone()),
        )
        .unwrap();
        for k in 0..40 {
            let a = k % 12;
            let b = (k * 5 + 3) % 12;
            if a == b {
                continue;
            }
            let e = LinExpr::from_terms([(vars[a], 1.0), (vars[b], 1.0)]);
            let rhs = 2.0 + (k % 7) as f64 * 0.5;
            base.add_constraint(e.clone(), Cmp::Ge, rhs);
            session.add_constraint(e, Cmp::Ge, rhs).unwrap();
        }
        let inc = session.resolve().unwrap().clone();
        let cold = SimplexSolver::new().solve(&base).unwrap();
        assert_eq!(inc.status(), cold.status());
        assert!(
            (inc.objective() - cold.objective()).abs() < 1e-6,
            "incremental {} vs dense cold {}",
            inc.objective(),
            cold.objective()
        );
        let t = rec.snapshot();
        assert!(t.counter("lp.priced_columns") > 0, "{t:?}");
        assert!(t.maximum("lp.eta_len") > 0, "{t:?}");
    }

    #[test]
    fn recorder_sees_revised_counters() {
        let rec = std::sync::Arc::new(lubt_obs::TraceRecorder::new());
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        let solver = RevisedSolver::new().with_recorder(rec.clone());
        let s = solver.solve(&m).unwrap();
        assert!(s.is_optimal());
        let t = rec.snapshot();
        assert_eq!(t.counter("lp.solves"), 1);
        assert!(t.counter("lp.pivots") >= 1, "{t:?}");
        assert!(t.counter("lp.priced_columns") >= 1, "{t:?}");
        assert_eq!(t.maximum("lp.peak_pivots"), s.iterations() as u64);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Ge, 1.0);
        let err = RevisedSolver::new()
            .with_max_iterations(1)
            .solve(&m)
            .unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
    }

    #[test]
    fn resolve_without_pending_is_a_no_op() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 2.0);
        let mut s = RevisedSession::start(m).unwrap();
        let before = s.solution().objective();
        let after = s.resolve().unwrap().objective();
        assert_eq!(before, after);
    }

    /// A deterministic covering LP wide enough (`n_total >= PAR_SCAN_MIN`)
    /// that the assisted pricing and candidate scans actually engage.
    fn wide_covering_model(vars: usize, rows: usize) -> Model {
        let mut m = Model::new();
        let vs: Vec<Var> = (0..vars)
            .map(|i| m.add_var(0.0, 1.0 + ((i * 29 + 7) % 13) as f64 / 5.0))
            .collect();
        for r in 0..rows {
            let e: LinExpr = vs
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + r) % 3 != 0)
                .map(|(i, &v)| (v, 1.0 + ((i * 17 + r * 31) % 7) as f64 / 3.0))
                .collect();
            m.add_constraint(e, Cmp::Ge, 2.0 + (r % 11) as f64 / 2.0);
        }
        m
    }

    #[test]
    fn with_threads_solves_are_bit_identical() {
        let m = wide_covering_model(80, 60);
        let reference = RevisedSolver::new().solve(&m).unwrap();
        assert!(reference.is_optimal());
        let bits: Vec<u64> = reference.values().iter().map(|v| v.to_bits()).collect();
        for threads in [2, 4, 8, 0] {
            let sol = RevisedSolver::new()
                .with_threads(threads)
                .solve(&m)
                .unwrap();
            assert_eq!(sol.status(), reference.status(), "threads={threads}");
            assert_eq!(
                sol.objective().to_bits(),
                reference.objective().to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                sol.iterations(),
                reference.iterations(),
                "threads={threads}"
            );
            let tb: Vec<u64> = sol.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(tb, bits, "threads={threads}");
        }
    }

    #[test]
    fn threaded_sessions_resolve_bit_identically() {
        // The appended-rows dual repair exercises `dual_candidates`.
        let grow = |threads: usize| -> Vec<u64> {
            let m = wide_covering_model(70, 50);
            let vars: Vec<Var> = m.vars().collect();
            let solver = RevisedSolver::new().with_threads(threads);
            let mut s = RevisedSession::start_with(m, solver).unwrap();
            assert!(s.solution().is_optimal());
            for r in 0..6 {
                let e: LinExpr = vars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i + r) % 4 != 1)
                    .map(|(i, &v)| (v, 1.0 + ((i * 13 + r * 5) % 5) as f64 / 2.0))
                    .collect();
                s.add_constraint(e, Cmp::Ge, 9.0 + r as f64).unwrap();
                let sol = s.resolve().unwrap();
                assert!(sol.is_optimal(), "round {r}");
            }
            s.solution().values().iter().map(|v| v.to_bits()).collect()
        };
        let reference = grow(1);
        for threads in [2, 4, 8] {
            assert_eq!(grow(threads), reference, "threads={threads}");
        }
    }

    /// Property-based lockstep check: the assisted pricing scan must pick
    /// the identical entering column as the serial scan on every pivot,
    /// across random models, windows, and thread counts — with a
    /// first-diverging-pivot reporter in the style of
    /// `crates/lp/tests/differential.rs`.
    mod assisted_pricing {
        use super::*;
        use crate::sparse::SparseForm;
        use lubt_obs::TraceRecorder;
        use proptest::prelude::*;
        use proptest::test_runner::TestCaseError;

        /// The solve-path basis seeding (usable slacks, artificials
        /// elsewhere), with an explicit participant count.
        fn seeded_kernel(m: &Model, threads: usize) -> Kernel {
            let sf = SparseForm::build(m);
            let rows = sf.m;
            let mut basis = Vec::with_capacity(rows);
            let mut art_rows = Vec::new();
            for i in 0..rows {
                let sc = sf.slack_col[i];
                let usable = sc != usize::MAX && (sf.at(i, sc) - 1.0).abs() < 1e-12;
                if usable {
                    basis.push(sc);
                } else {
                    basis.push(sf.n + art_rows.len());
                    art_rows.push(i);
                }
            }
            let mut kernel = Kernel::from_parts(sf, basis, art_rows).expect("seed basis");
            kernel.threads = threads;
            kernel
        }

        /// Drives a serial and an assisted kernel through the same pivot
        /// sequence, comparing the entering column and pricing cursor at
        /// every step and the `lp.priced_columns` tally at the end.
        fn assert_lockstep(m: &Model, threads: usize) -> Result<(), TestCaseError> {
            let mut serial = seeded_kernel(m, 1);
            let mut assisted = seeded_kernel(m, threads);
            let rec_s = TraceRecorder::new();
            let rec_a = TraceRecorder::new();
            let phase1 = !serial.art_rows.is_empty();
            for pivot_idx in 0..400 {
                let ys = serial.duals(phase1);
                let ya = assisted.duals(phase1);
                let cs = serial.price(&ys, phase1, false, &rec_s);
                let ca = assisted.price(&ya, phase1, false, &rec_a);
                if cs != ca {
                    return Err(TestCaseError::Fail(format!(
                        "first diverging pivot {pivot_idx} (threads {threads}): \
                             serial entered {cs:?}, assisted entered {ca:?}"
                    )));
                }
                if serial.cursor != assisted.cursor {
                    return Err(TestCaseError::Fail(format!(
                        "cursors diverged at pivot {pivot_idx} (threads {threads}): \
                             serial {}, assisted {}",
                        serial.cursor, assisted.cursor
                    )));
                }
                let Some(enter) = cs else { break };
                let step = |k: &mut Kernel| -> Option<usize> {
                    let mut w = k.dense_col(enter);
                    let mut scratch = std::mem::take(&mut k.scratch);
                    k.factor.ftran(&mut w, &mut scratch);
                    k.scratch = scratch;
                    let pos = k.choose_leaving(&w)?;
                    k.pivot(pos, enter, &w, &lubt_obs::NoopRecorder)
                        .expect("pivot");
                    Some(pos)
                };
                let ps = step(&mut serial);
                let pa = step(&mut assisted);
                if ps != pa {
                    return Err(TestCaseError::Fail(format!(
                        "leaving rows diverged at pivot {pivot_idx} (threads \
                             {threads}): serial {ps:?}, assisted {pa:?}"
                    )));
                }
                if ps.is_none() {
                    break; // unbounded direction: both agree, done
                }
            }
            let priced_s = rec_s.snapshot().counter("lp.priced_columns");
            let priced_a = rec_a.snapshot().counter("lp.priced_columns");
            if priced_s != priced_a {
                return Err(TestCaseError::Fail(format!(
                    "priced-column tallies diverged (threads {threads}): \
                         serial {priced_s}, assisted {priced_a}"
                )));
            }
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn assisted_pricing_matches_serial_entering_columns(
                costs in proptest::collection::vec(0i8..5, 40..90),
                rows in proptest::collection::vec(
                    proptest::collection::vec(-2i8..4, 90), 30..70),
                les in proptest::collection::vec(proptest::bool::ANY, 70),
                rhs in proptest::collection::vec(0i32..40, 70),
                threads in 2usize..9,
            ) {
                let mut m = Model::new();
                let vars: Vec<Var> = costs
                    .iter()
                    .map(|&c| m.add_var(0.0, f64::from(c)))
                    .collect();
                for ((coefs, &le), &r) in rows.iter().zip(&les).zip(&rhs) {
                    let e: LinExpr = vars
                        .iter()
                        .zip(coefs)
                        .filter(|(_, &c)| c != 0)
                        .map(|(&v, &c)| (v, f64::from(c)))
                        .collect();
                    if e.terms().is_empty() {
                        continue;
                    }
                    m.add_constraint(e, if le { Cmp::Le } else { Cmp::Ge }, f64::from(r) / 4.0);
                }
                assert_lockstep(&m, threads)?;
            }
        }
    }
}
