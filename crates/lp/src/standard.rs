//! Conversion of a [`Model`] to computational *standard form*
//! `min c'x  s.t.  A x = b,  x >= 0`, shared by both solvers.
//!
//! Transformations applied:
//!
//! 1. Variable shift `x = x' + lb` so every variable has lower bound 0.
//! 2. One slack (`<=`) or surplus (`>=`) column per inequality row.
//! 3. Row sign normalization so `b >= 0` (recorded for dual recovery).

use crate::model::{Cmp, Model};

/// Dense standard-form image of a model.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Number of rows (original constraints).
    pub m: usize,
    /// Number of *original* (shifted) variables.
    #[allow(dead_code)] // informative; exercised by tests
    pub n_orig: usize,
    /// Total columns: originals + slacks/surpluses.
    pub n: usize,
    /// Row-major `m x n` constraint matrix.
    pub a: Vec<f64>,
    /// Right-hand side, all entries `>= 0`.
    pub b: Vec<f64>,
    /// Costs over all columns (zero on slack columns).
    pub c: Vec<f64>,
    /// Lower-bound shift per original variable.
    pub shift: Vec<f64>,
    /// Constant added to the standard-form objective by the shift.
    #[allow(dead_code)] // informative; exercised by tests
    pub obj_offset: f64,
    /// Whether row `i` was multiplied by -1 during normalization.
    pub row_negated: Vec<bool>,
    /// Column index of the slack/surplus of row `i` (`usize::MAX` for
    /// equality rows).
    pub slack_col: Vec<usize>,
}

impl StandardForm {
    /// Builds the standard form. The model must already be validated.
    pub fn build(model: &Model) -> StandardForm {
        let n_orig = model.num_vars();
        let m = model.num_constraints();
        let n_slack = model
            .constraints
            .iter()
            .filter(|c| c.cmp != Cmp::Eq)
            .count();
        let n = n_orig + n_slack;

        let mut a = vec![0.0; m * n];
        let mut b = vec![0.0; m];
        let mut c = vec![0.0; n];
        let mut row_negated = vec![false; m];
        let mut slack_col = vec![usize::MAX; m];

        c[..n_orig].copy_from_slice(&model.costs);
        let shift = model.lower.clone();
        let obj_offset: f64 = model
            .costs
            .iter()
            .zip(&shift)
            .map(|(cost, lb)| cost * lb)
            .sum();

        let mut next_slack = n_orig;
        for (i, con) in model.constraints.iter().enumerate() {
            let row = &mut a[i * n..(i + 1) * n];
            let mut rhs = con.rhs;
            for &(v, coef) in con.expr.terms() {
                row[v.index()] += coef;
                rhs -= coef * shift[v.index()];
            }
            match con.cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    slack_col[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    slack_col[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Eq => {}
            }
            if rhs < 0.0 {
                for val in row.iter_mut() {
                    *val = -*val;
                }
                rhs = -rhs;
                row_negated[i] = true;
            }
            b[i] = rhs;
        }

        StandardForm {
            m,
            n_orig,
            n,
            a,
            b,
            c,
            shift,
            obj_offset,
            row_negated,
            slack_col,
        }
    }

    #[inline]
    pub fn at(&self, r: usize, col: usize) -> f64 {
        self.a[r * self.n + col]
    }

    /// Maps a standard-form solution vector back to original variable
    /// values (undoing the lower-bound shift).
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        self.shift
            .iter()
            .enumerate()
            .map(|(j, lb)| x_std[j] + lb)
            .collect()
    }

    /// Recovers duals for the *original* rows from standard-form duals
    /// (undoing the row negation).
    pub fn recover_duals(&self, y_std: &[f64]) -> Vec<f64> {
        y_std
            .iter()
            .zip(&self.row_negated)
            .map(|(y, neg)| if *neg { -y } else { *y })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    #[test]
    fn slack_surplus_and_negation() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(2.0, 3.0); // shifted lower bound
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 10.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 4.0);
        m.add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Eq, 1.0); // rhs - 2 < 0 -> negated
        let sf = StandardForm::build(&m);

        assert_eq!(sf.m, 3);
        assert_eq!(sf.n_orig, 2);
        assert_eq!(sf.n, 4); // two inequality rows

        // Row 0: x + y + s0 = 10 - 2
        assert_eq!(sf.at(0, sf.slack_col[0]), 1.0);
        assert!((sf.b[0] - 8.0).abs() < 1e-12);
        // Row 1: x - s1 = 4
        assert_eq!(sf.at(1, sf.slack_col[1]), -1.0);
        assert!((sf.b[1] - 4.0).abs() < 1e-12);
        // Row 2: y = 1 - 2 = -1, negated to -y = 1.
        assert!(sf.row_negated[2]);
        assert_eq!(sf.at(2, 1), -1.0);
        assert!((sf.b[2] - 1.0).abs() < 1e-12);

        // Objective offset = 3 * 2.
        assert!((sf.obj_offset - 6.0).abs() < 1e-12);

        // Recovery adds the shift back.
        let orig = sf.recover(&[5.0, 0.5, 0.0, 0.0]);
        assert_eq!(orig, vec![5.0, 2.5]);

        let duals = sf.recover_duals(&[1.0, 2.0, 3.0]);
        assert_eq!(duals, vec![1.0, 2.0, -3.0]);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (x, 2.0)]), Cmp::Eq, 6.0);
        let sf = StandardForm::build(&m);
        assert_eq!(sf.at(0, 0), 3.0);
    }
}
