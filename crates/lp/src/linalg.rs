//! Minimal dense linear algebra used by the solvers: a column-major-free,
//! row-major square-matrix type with LU (partial pivoting) and Cholesky
//! factorizations. Sizes in this crate are moderate (hundreds to a few
//! thousand), so straightforward O(n^3) dense kernels are appropriate.

// Index-based loops are the natural idiom for the dense kernels here.
#![allow(clippy::needless_range_loop)]

/// Dense square matrix, row-major.
#[derive(Debug, Clone)]
pub(crate) struct SquareMatrix {
    n: usize,
    a: Vec<f64>,
}

impl SquareMatrix {
    pub(crate) fn zeros(n: usize) -> Self {
        SquareMatrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    #[inline]
    pub(crate) fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.n + c]
    }

    /// Factorizes into LU with partial pivoting for repeated solves;
    /// returns `None` for (numerically) singular matrices. Consumes the
    /// matrix.
    pub(crate) fn into_lu(mut self) -> Option<Lu> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut best = self.at(k, k).abs();
            for r in k + 1..n {
                let v = self.at(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if p != k {
                for c in 0..n {
                    let tmp = self.at(k, c);
                    *self.at_mut(k, c) = self.at(p, c);
                    *self.at_mut(p, c) = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = self.at(k, k);
            for r in k + 1..n {
                let f = self.at(r, k) / pivot;
                if f == 0.0 {
                    continue;
                }
                *self.at_mut(r, k) = f;
                for c in k + 1..n {
                    let sub = f * self.at(k, c);
                    *self.at_mut(r, c) -= sub;
                }
            }
        }
        Some(Lu { mat: self, perm })
    }

    /// Solves `self * x = b` by LU with partial pivoting; returns `None` for
    /// (numerically) singular systems. Consumes the matrix in place.
    pub(crate) fn lu_solve(mut self, mut b: Vec<f64>) -> Option<Vec<f64>> {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut best = self.at(k, k).abs();
            for r in k + 1..n {
                let v = self.at(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-14 {
                return None;
            }
            if p != k {
                for c in 0..n {
                    let tmp = self.at(k, c);
                    *self.at_mut(k, c) = self.at(p, c);
                    *self.at_mut(p, c) = tmp;
                }
                b.swap(k, p);
                perm.swap(k, p);
            }
            let pivot = self.at(k, k);
            for r in k + 1..n {
                let f = self.at(r, k) / pivot;
                if f == 0.0 {
                    continue;
                }
                *self.at_mut(r, k) = f;
                for c in k + 1..n {
                    let sub = f * self.at(k, c);
                    *self.at_mut(r, c) -= sub;
                }
                b[r] -= f * b[k];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = b[k];
            for c in k + 1..n {
                s -= self.at(k, c) * x[c];
            }
            x[k] = s / self.at(k, k);
        }
        Some(x)
    }

    /// Cholesky factorization in place (`self` must be symmetric positive
    /// definite up to the `reg` diagonal regularization); returns `false` on
    /// breakdown.
    pub(crate) fn cholesky(&mut self, reg: f64) -> bool {
        let n = self.n;
        for k in 0..n {
            let mut d = self.at(k, k) + reg;
            for j in 0..k {
                let l = self.at(k, j);
                d -= l * l;
            }
            if d <= 0.0 {
                return false;
            }
            let d = d.sqrt();
            *self.at_mut(k, k) = d;
            for i in k + 1..n {
                let mut s = self.at(i, k);
                for j in 0..k {
                    s -= self.at(i, j) * self.at(k, j);
                }
                *self.at_mut(i, k) = s / d;
            }
        }
        true
    }

    /// Solves `L L' x = b` given a prior successful [`Self::cholesky`].
    pub(crate) fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.at(i, j) * y[j];
            }
            y[i] = s / self.at(i, i);
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.at(j, i) * x[j];
            }
            x[i] = s / self.at(i, i);
        }
        x
    }
}

/// Reusable LU factors (partial pivoting) for multi-right-hand-side solves.
#[derive(Debug, Clone)]
pub(crate) struct Lu {
    mat: SquareMatrix,
    perm: Vec<usize>,
}

impl Lu {
    /// Solves `A x = b` for the factored `A`.
    pub(crate) fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.mat.n;
        debug_assert_eq!(b.len(), n);
        // Apply the permutation, then forward/back substitution.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for k in 0..n {
            for c in 0..k {
                let sub = self.mat.at(k, c) * y[c];
                y[k] -= sub;
            }
        }
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = y[k];
            for c in k + 1..n {
                s -= self.mat.at(k, c) * x[c];
            }
            x[k] = s / self.mat.at(k, k);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> SquareMatrix {
        let n = rows.len();
        let mut m = SquareMatrix::zeros(n);
        for (i, r) in rows.iter().enumerate() {
            for (j, v) in r.iter().enumerate() {
                *m.at_mut(i, j) = *v;
            }
        }
        m
    }

    #[test]
    fn lu_solves_generic_system() {
        let m = from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x = m.clone().lu_solve(vec![3.0, 5.0, 5.0]).unwrap();
        // Verify residual.
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..3 {
                s += m.at(i, j) * x[j];
            }
            let b = [3.0, 5.0, 5.0][i];
            assert!((s - b).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_detects_singular() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.lu_solve(vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.lu_solve(vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_round_trip() {
        // SPD matrix A = M M' for a random-ish M.
        let m = from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let mut f = m.clone();
        assert!(f.cholesky(0.0));
        let b = vec![1.0, -2.0, 0.5];
        let x = f.cholesky_solve(&b);
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..3 {
                s += m.at(i, j) * x[j];
            }
            assert!((s - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(!m.cholesky(0.0));
    }

    #[test]
    fn lu_factors_solve_multiple_rhs() {
        let m = from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = m.clone().into_lu().unwrap();
        for b in [
            vec![1.0, 0.0, 0.0],
            vec![3.0, 5.0, 5.0],
            vec![-1.0, 2.0, 7.0],
        ] {
            let x = lu.solve(&b);
            for i in 0..3 {
                let mut s = 0.0;
                for j in 0..3 {
                    s += m.at(i, j) * x[j];
                }
                assert!((s - b[i]).abs() < 1e-10, "rhs {b:?}");
            }
        }
    }

    #[test]
    fn lu_factorization_rejects_singular() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.into_lu().is_none());
        // Permutation-requiring matrix factorizes fine.
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = m.into_lu().unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }
}
