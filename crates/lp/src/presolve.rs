//! Lightweight presolve: structural simplifications applied before a model
//! reaches a solver.
//!
//! The EBF's lazy separation re-solves a growing model many times, so
//! cheap row-level reductions pay off repeatedly:
//!
//! * **canonicalization** — duplicate terms in an expression are combined,
//!   zero coefficients dropped;
//! * **row deduplication** — rows with identical canonical left-hand sides
//!   keep only the binding right-hand side per sense (`>=`: max rhs,
//!   `<=`: min rhs; `==` rows additionally cross-check consistency);
//! * **empty-row resolution** — `0 >= rhs` rows are dropped when trivially
//!   true and flagged as infeasible when not.

use crate::model::{Cmp, Constraint, LinExpr, Model, Var};
use std::collections::HashMap;

/// Outcome of [`presolve`].
#[derive(Debug, Clone, PartialEq)]
pub enum Presolved {
    /// The reduced model (same variables, fewer/tighter rows) plus
    /// reduction statistics.
    Reduced {
        /// The simplified model.
        model: Model,
        /// Rows removed by deduplication or triviality.
        rows_removed: usize,
    },
    /// A row was found that no assignment can satisfy (e.g. `0 >= 3` or
    /// contradictory equalities); the original model is infeasible.
    Infeasible,
}

/// Canonical key of an expression: sorted, combined, zero-free terms.
fn canonical_terms(expr: &LinExpr) -> Vec<(Var, f64)> {
    let mut combined: HashMap<Var, f64> = HashMap::new();
    for &(v, c) in expr.terms() {
        *combined.entry(v).or_insert(0.0) += c;
    }
    let mut terms: Vec<(Var, f64)> = combined.into_iter().filter(|&(_, c)| c != 0.0).collect();
    terms.sort_by_key(|&(v, _)| v);
    terms
}

/// A hashable row signature (coefficients bit-cast so exact duplicates
/// collide; near-duplicates are deliberately left alone).
fn signature(terms: &[(Var, f64)]) -> Vec<(usize, u64)> {
    terms
        .iter()
        .map(|&(v, c)| (v.index(), c.to_bits()))
        .collect()
}

/// Runs the presolve reductions. The returned model shares the variable
/// space of the input, so solutions transfer directly.
///
/// # Example
///
/// ```
/// use lubt_lp::{presolve, Cmp, LinExpr, Model, Presolved};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 2.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 5.0); // dominates
/// match presolve(&m) {
///     Presolved::Reduced { model, rows_removed } => {
///         assert_eq!(model.num_constraints(), 1);
///         assert_eq!(rows_removed, 1);
///         assert_eq!(model.constraints()[0].rhs(), 5.0);
///     }
///     Presolved::Infeasible => unreachable!(),
/// }
/// ```
pub fn presolve(model: &Model) -> Presolved {
    // Keyed by (signature, sense); value = index into `kept`.
    let mut index: HashMap<(Vec<(usize, u64)>, u8), usize> = HashMap::new();
    let mut kept: Vec<Constraint> = Vec::new();
    let mut rows_removed = 0usize;

    // Tolerance for the trivial-row and equality-consistency checks.
    let eps = 1e-9;

    for con in model.constraints() {
        let terms = canonical_terms(con.expr());
        if terms.is_empty() {
            let ok = match con.cmp() {
                Cmp::Le => 0.0 <= con.rhs() + eps,
                Cmp::Ge => 0.0 >= con.rhs() - eps,
                Cmp::Eq => con.rhs().abs() <= eps,
            };
            if !ok {
                return Presolved::Infeasible;
            }
            rows_removed += 1;
            continue;
        }
        let sense = match con.cmp() {
            Cmp::Le => 0u8,
            Cmp::Ge => 1,
            Cmp::Eq => 2,
        };
        let key = (signature(&terms), sense);
        let expr = LinExpr::from_terms(terms);
        match index.get(&key) {
            Some(&slot) => {
                let existing = &mut kept[slot];
                let merged = match con.cmp() {
                    Cmp::Le => existing.rhs().min(con.rhs()),
                    Cmp::Ge => existing.rhs().max(con.rhs()),
                    Cmp::Eq => {
                        if (existing.rhs() - con.rhs()).abs() > eps {
                            return Presolved::Infeasible;
                        }
                        existing.rhs()
                    }
                };
                *existing = Constraint {
                    expr,
                    cmp: con.cmp(),
                    rhs: merged,
                };
                rows_removed += 1;
            }
            None => {
                index.insert(key, kept.len());
                kept.push(Constraint {
                    expr,
                    cmp: con.cmp(),
                    rhs: con.rhs(),
                });
            }
        }
    }

    let mut out = Model::new();
    for i in 0..model.num_vars() {
        let v = Var(i);
        out.add_var(model.lower_bound(v), model.cost(v));
    }
    for c in kept {
        out.add_constraint(c.expr, c.cmp, c.rhs);
    }
    Presolved::Reduced {
        model: out,
        rows_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpSolve, SimplexSolver};

    fn expr(terms: &[(Var, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn deduplicates_keeping_binding_rhs() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 2.0);
        m.add_constraint(expr(&[(y, 1.0), (x, 1.0)]), Cmp::Ge, 7.0); // same row, reordered
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 10.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 9.0);
        match presolve(&m) {
            Presolved::Reduced {
                model,
                rows_removed,
            } => {
                assert_eq!(model.num_constraints(), 2);
                assert_eq!(rows_removed, 2);
                let ge = model
                    .constraints()
                    .iter()
                    .find(|c| c.cmp() == Cmp::Ge)
                    .unwrap();
                assert_eq!(ge.rhs(), 7.0);
                let le = model
                    .constraints()
                    .iter()
                    .find(|c| c.cmp() == Cmp::Le)
                    .unwrap();
                assert_eq!(le.rhs(), 9.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn combines_duplicate_terms_and_drops_zeros() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (x, 2.0), (y, 0.0)]), Cmp::Ge, 6.0);
        let Presolved::Reduced { model, .. } = presolve(&m) else {
            panic!("feasible");
        };
        let c = &model.constraints()[0];
        assert_eq!(c.expr().terms(), &[(x, 3.0)]);
    }

    #[test]
    fn trivial_rows_resolved() {
        let mut m = Model::new();
        let _x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::new(), Cmp::Le, 5.0); // 0 <= 5: drop
        m.add_constraint(LinExpr::new(), Cmp::Ge, -1.0); // 0 >= -1: drop
        let Presolved::Reduced {
            model,
            rows_removed,
        } = presolve(&m)
        else {
            panic!("feasible");
        };
        assert_eq!(model.num_constraints(), 0);
        assert_eq!(rows_removed, 2);

        let mut m = Model::new();
        let _x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::new(), Cmp::Ge, 3.0); // 0 >= 3: infeasible
        assert_eq!(presolve(&m), Presolved::Infeasible);

        // A cancelling expression is an empty row too.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (x, -1.0)]), Cmp::Eq, 2.0);
        assert_eq!(presolve(&m), Presolved::Infeasible);
    }

    #[test]
    fn contradictory_equalities_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 2.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 3.0);
        assert_eq!(presolve(&m), Presolved::Infeasible);
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0); // dominated
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Le, 2.0);
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Le, 2.0); // duplicate
        let Presolved::Reduced {
            model,
            rows_removed,
        } = presolve(&m)
        else {
            panic!("feasible");
        };
        assert_eq!(rows_removed, 2);
        let s1 = SimplexSolver::new().solve(&m).unwrap();
        let s2 = SimplexSolver::new().solve(&model).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-9);
    }
}
