use crate::Var;
use std::fmt;

/// Outcome classification of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal basic/interior solution was found.
    Optimal,
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
        })
    }
}

/// Result of an LP solve: status, primal values, objective and (when the
/// algorithm provides them) constraint duals.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    status: Status,
    values: Vec<f64>,
    objective: f64,
    duals: Option<Vec<f64>>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(
        status: Status,
        values: Vec<f64>,
        objective: f64,
        duals: Option<Vec<f64>>,
        iterations: usize,
    ) -> Self {
        Solution {
            status,
            values,
            objective,
            duals,
            iterations,
        }
    }

    pub(crate) fn infeasible(num_vars: usize, iterations: usize) -> Self {
        Solution::new(
            Status::Infeasible,
            vec![0.0; num_vars],
            f64::NAN,
            None,
            iterations,
        )
    }

    pub(crate) fn unbounded(num_vars: usize, iterations: usize) -> Self {
        Solution::new(
            Status::Unbounded,
            vec![0.0; num_vars],
            f64::NEG_INFINITY,
            None,
            iterations,
        )
    }

    /// Solve status. Primal values and objective are only meaningful when
    /// this is [`Status::Optimal`].
    pub fn status(&self) -> Status {
        self.status
    }

    /// `true` when the status is [`Status::Optimal`].
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of one variable.
    ///
    /// # Panics
    ///
    /// Panics when `var` does not belong to the solved model.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// Dense primal values, indexed by [`Var::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Constraint dual values (one per constraint, in insertion order), when
    /// the solver computed them.
    pub fn duals(&self) -> Option<&[f64]> {
        self.duals.as_deref()
    }

    /// Number of solver iterations (simplex pivots or interior-point steps).
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(Status::Optimal, vec![1.0, 2.0], 5.0, None, 3);
        assert!(s.is_optimal());
        assert_eq!(s.value(Var(1)), 2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.iterations(), 3);
        assert!(s.duals().is_none());
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Optimal.to_string(), "optimal");
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn special_constructors() {
        assert_eq!(Solution::infeasible(2, 0).status(), Status::Infeasible);
        let u = Solution::unbounded(2, 0);
        assert_eq!(u.status(), Status::Unbounded);
        assert_eq!(u.objective(), f64::NEG_INFINITY);
    }
}
