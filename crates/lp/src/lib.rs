//! Linear-programming substrate for the LUBT Edge-Based Formulation.
//!
//! The original paper solved the EBF with the commercial interior-point code
//! LOQO. This crate provides two self-contained solvers with the same
//! surface:
//!
//! * [`SimplexSolver`] — a two-phase dense-tableau primal simplex with
//!   Dantzig pricing and an automatic switch to Bland's anti-cycling rule.
//!   Exact infeasibility/unboundedness certificates; the default choice.
//! * [`InteriorPointSolver`] — a Mehrotra predictor-corrector primal-dual
//!   interior-point method (the algorithm family LOQO belongs to), solving
//!   the normal equations with a dense Cholesky factorization.
//! * [`RevisedSolver`] — a sparse revised simplex sharing the dense
//!   backend's pivot rules and [`WarmStart`] token format, but storing the
//!   constraint matrix column-sparse and keeping only a product-form basis
//!   factorization; the fast path for large Steiner-row LPs.
//!
//! Problems are described with the [`Model`] builder and solved through the
//! [`LpSolve`] trait.
//!
//! # Example
//!
//! ```
//! use lubt_lp::{Cmp, LinExpr, LpSolve, Model, SimplexSolver, Status};
//!
//! // min  x + 2y   s.t.  x + y >= 3,  y <= 2,  x, y >= 0
//! let mut m = Model::new();
//! let x = m.add_var(0.0, 1.0);
//! let y = m.add_var(0.0, 2.0);
//! m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
//! m.add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Le, 2.0);
//!
//! let sol = SimplexSolver::new().solve(&m)?;
//! assert_eq!(sol.status(), Status::Optimal);
//! assert!((sol.objective() - 3.0).abs() < 1e-7); // x = 3, y = 0
//! # Ok::<(), lubt_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod error;
mod factor;
mod interior;
mod linalg;
mod lp_format;
mod model;
mod presolve;
mod revised;
mod session;
mod simplex;
mod solution;
mod sparse;
mod standard;

pub use certificate::{Certificate, ColumnRole, FarkasCertificate, OptimalityCertificate};
pub use error::LpError;
pub use interior::InteriorPointSolver;
pub use lp_format::write_lp;
pub use model::{Cmp, LinExpr, Model, Var};
pub use presolve::{presolve, Presolved};
pub use revised::{RevisedSession, RevisedSolver};
pub use session::SimplexSession;
pub use simplex::{SimplexSolver, WarmStart};
pub use solution::{Solution, Status};

/// Absolute feasibility tolerance used by both solvers on the (scaled)
/// constraint residuals.
pub const FEAS_EPS: f64 = 1e-7;

/// Solver-agnostic interface: every LP algorithm in this crate consumes a
/// [`Model`] and produces a [`Solution`].
///
/// The trait is object-safe so harnesses can switch solvers at run time
/// (see the `ablation_solver` benchmarks).
pub trait LpSolve {
    /// Solves the model to proven optimality (or detects infeasibility /
    /// unboundedness, when the algorithm can certify it).
    ///
    /// # Errors
    ///
    /// Returns [`LpError`] for malformed models (e.g. no variables) or
    /// numerical breakdown; *infeasible* and *unbounded* are not errors but
    /// [`Status`] values on the returned solution.
    fn solve(&self, model: &Model) -> Result<Solution, LpError>;
}
