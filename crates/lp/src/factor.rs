//! Product-form basis factorization for the revised simplex.
//!
//! The factorization represents `B^{-1}` as an ordered list of sparse
//! operators applied left to right:
//!
//! * a **base** Gauss–Jordan product form `E_k ... E_1 B = P` built from
//!   the basis columns (singleton columns — slacks, surpluses,
//!   artificials — are pivoted first so only the structural "bump"
//!   creates fill), followed by the permutation extraction `P`;
//! * one **pivot eta** per simplex basis change (`B_new^{-1} = E ·
//!   B_old^{-1}`);
//! * one **append block** per incremental row batch: appending `k` rows
//!   whose fresh slacks enter the basis gives `B_new = [[B, 0], [C, I]]`,
//!   whose inverse `[[B^{-1}, 0], [-C·B^{-1}, I]]` is applied without
//!   touching the existing factors at all — the sparse analogue of
//!   `Tableau::append_rows`, but `O(nnz(C))` instead of a full re-layout.
//!
//! `ftran` applies the operators in order (`x = B^{-1} v`), `btran`
//! applies their transposes in reverse (`y = B^{-T} v`).
//!
//! # Storage ([`EtaFile`])
//!
//! All etas — base and pivot — live in one structure-of-arrays file: a
//! shared `u32` row-index stream plus a parallel `f64` value stream, with
//! each eta holding an offset range. Low-fill columns stay in that arena
//! (sorted by row index, so accumulation order — and therefore the
//! solve's bit pattern — is deterministic); high-fill columns are
//! promoted to **64-byte-aligned dense blocks** ([`F64x8`], one cache
//! line each) whose fixed-eight-lane inner loops the compiler
//! autovectorizes. The one partial tail block a dense column can have at
//! the vector's end goes through a safe-indexing scalar fallback that is
//! kept under test against the blocked path. Whether a column is sparse
//! or dense depends only on its fill pattern, never on the thread count,
//! so the representation choice cannot perturb cross-thread bit identity.

use crate::sparse::SparseCol;

/// Pivot tolerance of the Gauss–Jordan factorization.
const FACTOR_TOL: f64 = 1e-11;

/// Pivot etas tolerated since the last refactorization before
/// [`Factor::needs_refactor`] fires. Short enough to bound both the
/// per-ftran eta work and accumulated floating-point drift.
const ETA_REFRESH: usize = 64;

/// Minimum nonzeros before a column is even considered for dense blocks.
const DENSE_MIN_NNZ: usize = 16;

/// Eight `f64` lanes on one 64-byte cache line: the unit of dense eta
/// storage, aligned so a block never straddles two lines.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, Default)]
struct F64x8([f64; 8]);

/// Where one eta's off-pivot column lives.
#[derive(Debug, Clone)]
enum EtaBody {
    /// Offset range into the [`EtaFile`] row/value streams (sorted rows).
    Sparse { start: usize, end: usize },
    /// Dense cache-line blocks covering rows
    /// `8 * first_block .. 8 * (first_block + blocks.len())`; absent rows
    /// hold `0.0`.
    Dense {
        first_block: usize,
        blocks: Box<[F64x8]>,
    },
}

/// One Gauss–Jordan eta: the transformed pivot column split into the
/// pivot entry `wr` (row `r`) and the remaining nonzeros in `body`.
#[derive(Debug, Clone)]
struct EtaRef {
    r: usize,
    wr: f64,
    body: EtaBody,
}

/// The structure-of-arrays eta store shared by base and pivot etas.
#[derive(Debug, Clone, Default)]
struct EtaFile {
    rows: Vec<u32>,
    vals: Vec<f64>,
    etas: Vec<EtaRef>,
}

/// `v[8b..8b+8] -= w * t` over dense blocks: full blocks go through a
/// fixed-lane loop the compiler vectorizes, the partial tail block (if
/// the vector ends mid-block) through [`axpy_tail`].
fn dense_axpy(v: &mut [f64], first_block: usize, blocks: &[F64x8], t: f64) {
    let mut base = first_block * 8;
    for blk in blocks {
        if base + 8 <= v.len() {
            let dst: &mut [f64; 8] = (&mut v[base..base + 8]).try_into().expect("full block");
            for (slot, &w) in dst.iter_mut().zip(blk.0.iter()) {
                *slot -= w * t;
            }
        } else {
            axpy_tail(v, base, &blk.0, t);
        }
        base += 8;
    }
}

/// Safe-indexing scalar fallback for a partial tail block.
fn axpy_tail(v: &mut [f64], base: usize, lanes: &[f64; 8], t: f64) {
    for (lane, &w) in lanes.iter().enumerate() {
        if let Some(slot) = v.get_mut(base + lane) {
            *slot -= w * t;
        }
    }
}

/// `sum_i w[i] * v[i]` over dense blocks with eight independent lane
/// accumulators (vectorizable without reassociating within a lane),
/// horizontally summed in lane order at the end — a fixed, deterministic
/// accumulation order.
fn dense_dot(v: &[f64], first_block: usize, blocks: &[F64x8]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut base = first_block * 8;
    for blk in blocks {
        if base + 8 <= v.len() {
            let src: &[f64; 8] = v[base..base + 8].try_into().expect("full block");
            for lane in 0..8 {
                acc[lane] += blk.0[lane] * src[lane];
            }
        } else {
            for (lane, &w) in blk.0.iter().enumerate() {
                if let Some(&x) = v.get(base + lane) {
                    acc[lane] += w * x;
                }
            }
        }
        base += 8;
    }
    let mut s = 0.0;
    for lane in acc {
        s += lane;
    }
    s
}

impl EtaFile {
    fn len(&self) -> usize {
        self.etas.len()
    }

    /// Stores one eta column. `entries` is sorted by row index and never
    /// contains the pivot row `r`. Columns with at least [`DENSE_MIN_NNZ`]
    /// nonzeros averaging two or more per spanned cache line go dense;
    /// everything else lands in the shared arena. The choice is a pure
    /// function of the fill pattern.
    fn push(&mut self, r: usize, wr: f64, entries: &[(usize, f64)]) {
        let dense = entries.len() >= DENSE_MIN_NNZ && {
            let lo = entries[0].0 / 8;
            let hi = entries[entries.len() - 1].0 / 8;
            entries.len() * 4 >= (hi - lo + 1) * 8
        };
        self.push_with_layout(r, wr, entries, dense);
    }

    fn push_with_layout(&mut self, r: usize, wr: f64, entries: &[(usize, f64)], dense: bool) {
        let body = if dense && !entries.is_empty() {
            let lo = entries[0].0 / 8;
            let hi = entries[entries.len() - 1].0 / 8;
            let mut blocks = vec![F64x8::default(); hi - lo + 1].into_boxed_slice();
            for &(i, v) in entries {
                blocks[i / 8 - lo].0[i % 8] = v;
            }
            EtaBody::Dense {
                first_block: lo,
                blocks,
            }
        } else {
            let start = self.rows.len();
            for &(i, v) in entries {
                self.rows.push(i as u32);
                self.vals.push(v);
            }
            EtaBody::Sparse {
                start,
                end: self.rows.len(),
            }
        };
        self.etas.push(EtaRef { r, wr, body });
    }

    /// `v <- E_k v` where `E_k` maps the stored column to the unit vector
    /// `e_r`.
    #[inline]
    fn ftran_eta(&self, k: usize, v: &mut [f64]) {
        let e = &self.etas[k];
        let t = v[e.r];
        if t != 0.0 {
            let t = t / e.wr;
            match &e.body {
                EtaBody::Sparse { start, end } => {
                    let rows = &self.rows[*start..*end];
                    let vals = &self.vals[*start..*end];
                    for (i, w) in rows.iter().zip(vals) {
                        v[*i as usize] -= w * t;
                    }
                }
                EtaBody::Dense {
                    first_block,
                    blocks,
                } => dense_axpy(v, *first_block, blocks, t),
            }
            v[e.r] = t;
        }
    }

    /// `v <- E_k' v`: only component `r` changes.
    #[inline]
    fn btran_eta(&self, k: usize, v: &mut [f64]) {
        let e = &self.etas[k];
        let mut s = v[e.r];
        match &e.body {
            EtaBody::Sparse { start, end } => {
                let rows = &self.rows[*start..*end];
                let vals = &self.vals[*start..*end];
                for (i, w) in rows.iter().zip(vals) {
                    s -= w * v[*i as usize];
                }
            }
            EtaBody::Dense {
                first_block,
                blocks,
            } => s -= dense_dot(v, *first_block, blocks),
        }
        v[e.r] = s / e.wr;
    }

    /// The build-time transform: like [`EtaFile::ftran_eta`] but skipping
    /// zero lanes exactly as the arena path skips absent entries (so both
    /// representations transform bit-identically here) and recording
    /// fresh fill rows in `touched`.
    fn ftran_fill(&self, k: usize, scratch: &mut [f64], touched: &mut Vec<usize>) {
        let e = &self.etas[k];
        let t = scratch[e.r];
        if t != 0.0 {
            let t = t / e.wr;
            let mut apply = |i: usize, w: f64| {
                if scratch[i] == 0.0 {
                    touched.push(i);
                }
                scratch[i] -= w * t;
            };
            match &e.body {
                EtaBody::Sparse { start, end } => {
                    for (i, w) in self.rows[*start..*end].iter().zip(&self.vals[*start..*end]) {
                        apply(*i as usize, *w);
                    }
                }
                EtaBody::Dense {
                    first_block,
                    blocks,
                } => {
                    for (b, blk) in blocks.iter().enumerate() {
                        let base = (first_block + b) * 8;
                        for (lane, &w) in blk.0.iter().enumerate() {
                            if w != 0.0 {
                                apply(base + lane, w);
                            }
                        }
                    }
                }
            }
            scratch[e.r] = t;
        }
    }
}

/// A post-base update operator.
#[derive(Debug, Clone)]
enum Update {
    /// Pivot eta in basis-position space, indexing into the eta file.
    Eta(usize),
    /// `k` appended rows with slack pivots: `rows[k']` holds the appended
    /// row's coefficients on the *basis positions* `0..base` (sorted).
    Append { base: usize, rows: Vec<SparseCol> },
}

/// The basis factorization: base Gauss–Jordan product form plus pivot-eta
/// and append-block updates. See the module docs for the operator algebra
/// and the eta storage layout.
#[derive(Debug, Clone)]
pub(crate) struct Factor {
    /// Current basis dimension.
    dim: usize,
    /// Dimension covered by the base factorization.
    base_dim: usize,
    /// Base and pivot etas, in application order within each group.
    file: EtaFile,
    /// Number of base etas at the front of the file.
    n_base: usize,
    /// `perm[pos]` = pivot row of the base column at position `pos`.
    perm: Vec<usize>,
    updates: Vec<Update>,
    /// Pivot etas accumulated since the base was (re)built.
    pivot_etas: usize,
}

impl Factor {
    /// Factorizes the basis given as sparse columns (position order).
    /// Returns `None` when the basis is singular.
    pub fn build<C: AsRef<[(usize, f64)]>>(cols: &[C]) -> Option<Factor> {
        let dim = cols.len();
        let mut file = EtaFile::default();
        let mut perm = vec![usize::MAX; dim];
        let mut row_used = vec![false; dim];
        let mut scratch = vec![0.0; dim];
        let mut touched: Vec<usize> = Vec::new();

        // Singleton columns first (their etas are pure scalings and create
        // no fill), then the structural bump, both in ascending position
        // order — a fixed, deterministic elimination order.
        let mut order: Vec<usize> = (0..dim).filter(|&p| cols[p].as_ref().len() == 1).collect();
        order.extend((0..dim).filter(|&p| cols[p].as_ref().len() != 1));

        for &pos in &order {
            for &(i, v) in cols[pos].as_ref() {
                if scratch[i] == 0.0 {
                    touched.push(i);
                }
                scratch[i] += v;
            }
            // Transform by the etas recorded so far. Each eta only acts
            // when its pivot row is populated; new fill rows are tracked.
            for k in 0..file.len() {
                file.ftran_fill(k, &mut scratch, &mut touched);
            }
            // Pivot row: largest |value| among unused rows, smallest row
            // index on ties (order-independent, hence deterministic even
            // though `touched` is unordered).
            let mut pivot: Option<(usize, f64)> = None;
            for &i in &touched {
                let a = scratch[i].abs();
                if row_used[i] || a <= FACTOR_TOL {
                    continue;
                }
                let better = match pivot {
                    None => true,
                    Some((pi, pa)) => a > pa || (a == pa && i < pi),
                };
                if better {
                    pivot = Some((i, a));
                }
            }
            let Some((r, _)) = pivot else {
                return None; // singular
            };
            let wr = scratch[r];
            let mut w: Vec<(usize, f64)> = Vec::new();
            for &i in &touched {
                if i != r && scratch[i] != 0.0 {
                    w.push((i, scratch[i]));
                }
                scratch[i] = 0.0;
            }
            touched.clear();
            w.sort_unstable_by_key(|&(i, _)| i);
            row_used[r] = true;
            perm[pos] = r;
            file.push(r, wr, &w);
        }

        let n_base = file.len();
        Some(Factor {
            dim,
            base_dim: dim,
            file,
            n_base,
            perm,
            updates: Vec::new(),
            pivot_etas: 0,
        })
    }

    /// Current basis dimension.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of update operators since the last (re)build — the
    /// `lp.eta_len` observable.
    pub fn eta_len(&self) -> usize {
        self.updates.len()
    }

    /// `true` once enough pivot etas have accumulated that a fresh
    /// factorization is cheaper (and numerically safer) than applying them.
    pub fn needs_refactor(&self) -> bool {
        self.pivot_etas >= ETA_REFRESH
    }

    /// Records a simplex basis change: the entering column's ftran image
    /// `w` (dense) replaces basis position `pos`.
    pub fn push_pivot(&mut self, pos: usize, w: &[f64]) {
        debug_assert_eq!(w.len(), self.dim);
        let mut col: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != pos && v != 0.0 {
                col.push((i, v));
            }
        }
        self.file.push(pos, w[pos], &col);
        self.updates.push(Update::Eta(self.file.len() - 1));
        self.pivot_etas += 1;
    }

    /// Records an appended row block whose fresh slacks enter the basis:
    /// `rows[k']` holds row `k'`'s coefficients on the current basis
    /// positions (sorted by position). The basis dimension grows by
    /// `rows.len()`.
    pub fn push_append(&mut self, rows: Vec<SparseCol>) {
        let k = rows.len();
        self.updates.push(Update::Append {
            base: self.dim,
            rows,
        });
        self.dim += k;
    }

    /// `v <- B^{-1} v`. `scratch` is caller-owned storage reused across
    /// calls (resized as needed).
    pub fn ftran(&self, v: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(v.len(), self.dim);
        for k in 0..self.n_base {
            self.file.ftran_eta(k, v);
        }
        // Permutation extraction: x[pos] = v[perm[pos]].
        scratch.clear();
        scratch.extend_from_slice(&v[..self.base_dim]);
        for pos in 0..self.base_dim {
            v[pos] = scratch[self.perm[pos]];
        }
        for u in &self.updates {
            match u {
                Update::Eta(k) => self.file.ftran_eta(*k, v),
                Update::Append { base, rows } => {
                    for (k, row) in rows.iter().enumerate() {
                        let mut s = 0.0;
                        for &(i, ci) in row {
                            s += ci * v[i];
                        }
                        v[base + k] -= s;
                    }
                }
            }
        }
    }

    /// `v <- B^{-T} v`: the transposed operators applied in reverse.
    pub fn btran(&self, v: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(v.len(), self.dim);
        for u in self.updates.iter().rev() {
            match u {
                Update::Eta(k) => self.file.btran_eta(*k, v),
                Update::Append { base, rows } => {
                    for (k, row) in rows.iter().enumerate() {
                        let f = v[base + k];
                        if f != 0.0 {
                            for &(i, ci) in row {
                                v[i] -= ci * f;
                            }
                        }
                    }
                }
            }
        }
        // Transposed extraction: scatter, then transposed etas in reverse.
        scratch.resize(self.base_dim, 0.0);
        for pos in 0..self.base_dim {
            scratch[self.perm[pos]] = v[pos];
        }
        for k in (0..self.n_base).rev() {
            self.file.btran_eta(k, scratch);
        }
        v[..self.base_dim].copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<SparseCol> {
        let dim = a.len();
        (0..dim)
            .map(|j| {
                (0..dim)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }

    fn mat_t_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        let n = a.len();
        (0..n)
            .map(|j| (0..n).map(|i| a[i][j] * x[i]).sum())
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ftran_btran_invert_a_dense_basis() {
        let a: &[&[f64]] = &[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]];
        let f = Factor::build(&dense_cols(a)).unwrap();
        let x = vec![1.0, -2.0, 0.5];
        let mut scratch = Vec::new();

        let mut v = mat_vec(a, &x); // v = A x  =>  ftran(v) == x
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);

        let mut v = mat_t_vec(a, &x); // v = A' x  =>  btran(v) == x
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        assert!(Factor::build(&dense_cols(a)).is_none());
    }

    #[test]
    fn pivot_eta_tracks_a_column_replacement() {
        let a: &[&[f64]] = &[&[1.0, 1.0], &[0.0, 2.0]];
        let mut f = Factor::build(&dense_cols(a)).unwrap();
        let mut scratch = Vec::new();
        // Replace position 0 with column q = (3, 1)'.
        let mut w = vec![3.0, 1.0];
        f.ftran(&mut w, &mut scratch);
        f.push_pivot(0, &w);
        // New basis: [[3, 1], [1, 2]].
        let b2: &[&[f64]] = &[&[3.0, 1.0], &[1.0, 2.0]];
        let x = vec![0.5, -1.5];
        let mut v = mat_vec(b2, &x);
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);
        let mut v = mat_t_vec(b2, &x);
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn append_block_matches_the_block_inverse() {
        // B = [[2, 0], [1, 1]]; appended row contributes C = (5, 7) and a
        // unit slack, so B_new = [[B, 0], [C, 1]].
        let b0: &[&[f64]] = &[&[2.0, 0.0], &[1.0, 1.0]];
        let mut f = Factor::build(&dense_cols(b0)).unwrap();
        f.push_append(vec![vec![(0, 5.0), (1, 7.0)]]);
        assert_eq!(f.dim(), 3);
        let b1: &[&[f64]] = &[&[2.0, 0.0, 0.0], &[1.0, 1.0, 0.0], &[5.0, 7.0, 1.0]];
        let mut scratch = Vec::new();
        let x = vec![1.0, 2.0, -1.0];
        let mut v = mat_vec(b1, &x);
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);
        let mut v = mat_t_vec(b1, &x);
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn refactor_trigger_fires_after_enough_pivots() {
        let a: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        let mut f = Factor::build(&dense_cols(a)).unwrap();
        assert!(!f.needs_refactor());
        for _ in 0..ETA_REFRESH {
            f.push_pivot(0, &[1.0, 0.0]);
        }
        assert!(f.needs_refactor());
        assert_eq!(f.eta_len(), ETA_REFRESH);
    }

    /// Deterministic value noise for the representation tests.
    fn noise(i: usize) -> f64 {
        1.0 + ((i * 37 + 11) % 97) as f64 / 13.0
    }

    #[test]
    fn dense_and_sparse_bodies_apply_identically() {
        // A high-fill column stored both ways must transform bit-for-bit
        // identically (no -0.0 inputs: lane zeros then subtract exactly
        // nothing). 45 of 48 rows filled, pivot at row 20.
        let dim = 48;
        let r = 20;
        let entries: Vec<(usize, f64)> = (0..dim)
            .filter(|&i| i != r && i % 16 != 3)
            .map(|i| (i, noise(i)))
            .collect();
        assert!(entries.len() >= DENSE_MIN_NNZ);
        let mut file = EtaFile::default();
        file.push_with_layout(r, 2.5, &entries, false);
        file.push_with_layout(r, 2.5, &entries, true);
        assert!(matches!(file.etas[0].body, EtaBody::Sparse { .. }));
        assert!(matches!(file.etas[1].body, EtaBody::Dense { .. }));

        let v0: Vec<f64> = (0..dim).map(|i| noise(i + 5) - 4.0).collect();
        let (mut a, mut b) = (v0.clone(), v0.clone());
        file.ftran_eta(0, &mut a);
        file.ftran_eta(1, &mut b);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "ftran diverged between representations"
        );
        let (mut a, mut b) = (v0.clone(), v0);
        file.btran_eta(0, &mut a);
        file.btran_eta(1, &mut b);
        for (x, y) in a.iter().zip(&b) {
            // btran accumulates lane-wise in the dense path; same result
            // to roundoff, not necessarily the same bits.
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn partial_tail_block_uses_the_safe_fallback() {
        // dim = 21 is not a multiple of 8: the dense column's last block
        // overhangs the vector, forcing the safe-indexing tail path. It
        // must agree with the arena representation of the same column.
        let dim = 21;
        let r = 0;
        let entries: Vec<(usize, f64)> = (1..dim).map(|i| (i, noise(i))).collect();
        let mut file = EtaFile::default();
        file.push_with_layout(r, -1.5, &entries, false);
        file.push_with_layout(r, -1.5, &entries, true);
        match &file.etas[1].body {
            EtaBody::Dense {
                first_block,
                blocks,
            } => {
                assert!(
                    first_block * 8 + blocks.len() * 8 > dim,
                    "tail must overhang"
                );
            }
            EtaBody::Sparse { .. } => panic!("expected a dense body"),
        }

        let v0: Vec<f64> = (0..dim).map(|i| noise(i + 2) - 3.0).collect();
        let (mut a, mut b) = (v0.clone(), v0.clone());
        file.ftran_eta(0, &mut a);
        file.ftran_eta(1, &mut b);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        let (mut a, mut b) = (v0.clone(), v0);
        file.btran_eta(0, &mut a);
        file.btran_eta(1, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn high_fill_pivot_columns_are_promoted_to_dense_blocks() {
        let dim = 64;
        let a: Vec<Vec<f64>> = (0..dim)
            .map(|i| (0..dim).map(|j| if i == j { 4.0 } else { 0.0 }).collect())
            .collect();
        let refs: Vec<&[f64]> = a.iter().map(|r| r.as_slice()).collect();
        let mut f = Factor::build(&dense_cols(&refs)).unwrap();
        // A fully dense entering column must land in block storage.
        let w: Vec<f64> = (0..dim).map(|i| noise(i) / 4.0).collect();
        f.push_pivot(3, &w);
        let Update::Eta(k) = f.updates[0] else {
            panic!("expected a pivot eta");
        };
        assert!(matches!(f.file.etas[k].body, EtaBody::Dense { .. }));
    }
}
