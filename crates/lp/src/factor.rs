//! Product-form basis factorization for the revised simplex.
//!
//! The factorization represents `B^{-1}` as an ordered list of sparse
//! operators applied left to right:
//!
//! * a **base** Gauss–Jordan product form `E_k ... E_1 B = P` built from
//!   the basis columns (singleton columns — slacks, surpluses,
//!   artificials — are pivoted first so only the structural "bump"
//!   creates fill), followed by the permutation extraction `P`;
//! * one **pivot eta** per simplex basis change (`B_new^{-1} = E ·
//!   B_old^{-1}`);
//! * one **append block** per incremental row batch: appending `k` rows
//!   whose fresh slacks enter the basis gives `B_new = [[B, 0], [C, I]]`,
//!   whose inverse `[[B^{-1}, 0], [-C·B^{-1}, I]]` is applied without
//!   touching the existing factors at all — the sparse analogue of
//!   `Tableau::append_rows`, but `O(nnz(C))` instead of a full re-layout.
//!
//! `ftran` applies the operators in order (`x = B^{-1} v`), `btran`
//! applies their transposes in reverse (`y = B^{-T} v`). Every eta stores
//! its column sorted by row index so floating-point accumulation order —
//! and therefore the solve's bit pattern — is deterministic.

use crate::sparse::SparseCol;

/// Pivot tolerance of the Gauss–Jordan factorization.
const FACTOR_TOL: f64 = 1e-11;

/// Pivot etas tolerated since the last refactorization before
/// [`Factor::needs_refactor`] fires. Short enough to bound both the
/// per-ftran eta work and accumulated floating-point drift.
const ETA_REFRESH: usize = 64;

/// A Gauss–Jordan eta: the transformed pivot column `w` split into the
/// pivot entry `wr` (row `r`) and the remaining nonzeros `w` (sorted).
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    wr: f64,
    w: Vec<(usize, f64)>,
}

impl Eta {
    /// `v <- E v` where `E` maps `w` to the unit vector `e_r`.
    #[inline]
    fn ftran(&self, v: &mut [f64]) {
        let t = v[self.r];
        if t != 0.0 {
            let t = t / self.wr;
            for &(i, wi) in &self.w {
                v[i] -= wi * t;
            }
            v[self.r] = t;
        }
    }

    /// `v <- E' v`: only component `r` changes.
    #[inline]
    fn btran(&self, v: &mut [f64]) {
        let mut s = v[self.r];
        for &(i, wi) in &self.w {
            s -= wi * v[i];
        }
        v[self.r] = s / self.wr;
    }
}

/// A post-base update operator.
#[derive(Debug, Clone)]
enum Update {
    /// Pivot eta in basis-position space.
    Eta(Eta),
    /// `k` appended rows with slack pivots: `rows[k']` holds the appended
    /// row's coefficients on the *basis positions* `0..base` (sorted).
    Append { base: usize, rows: Vec<SparseCol> },
}

/// The basis factorization: base Gauss–Jordan product form plus pivot-eta
/// and append-block updates. See the module docs for the operator algebra.
#[derive(Debug, Clone)]
pub(crate) struct Factor {
    /// Current basis dimension.
    dim: usize,
    /// Dimension covered by the base factorization.
    base_dim: usize,
    base_etas: Vec<Eta>,
    /// `perm[pos]` = pivot row of the base column at position `pos`.
    perm: Vec<usize>,
    updates: Vec<Update>,
    /// Pivot etas accumulated since the base was (re)built.
    pivot_etas: usize,
}

impl Factor {
    /// Factorizes the basis given as sparse columns (position order).
    /// Returns `None` when the basis is singular.
    pub fn build<C: AsRef<[(usize, f64)]>>(cols: &[C]) -> Option<Factor> {
        let dim = cols.len();
        let mut base_etas: Vec<Eta> = Vec::with_capacity(dim);
        let mut perm = vec![usize::MAX; dim];
        let mut row_used = vec![false; dim];
        let mut scratch = vec![0.0; dim];
        let mut touched: Vec<usize> = Vec::new();

        // Singleton columns first (their etas are pure scalings and create
        // no fill), then the structural bump, both in ascending position
        // order — a fixed, deterministic elimination order.
        let mut order: Vec<usize> = (0..dim).filter(|&p| cols[p].as_ref().len() == 1).collect();
        order.extend((0..dim).filter(|&p| cols[p].as_ref().len() != 1));

        for &pos in &order {
            for &(i, v) in cols[pos].as_ref() {
                if scratch[i] == 0.0 {
                    touched.push(i);
                }
                scratch[i] += v;
            }
            // Transform by the etas recorded so far. Each eta only acts
            // when its pivot row is populated; new fill rows are tracked.
            for e in &base_etas {
                let t = scratch[e.r];
                if t != 0.0 {
                    let t = t / e.wr;
                    for &(i, wi) in &e.w {
                        if scratch[i] == 0.0 {
                            touched.push(i);
                        }
                        scratch[i] -= wi * t;
                    }
                    scratch[e.r] = t;
                }
            }
            // Pivot row: largest |value| among unused rows, smallest row
            // index on ties (order-independent, hence deterministic even
            // though `touched` is unordered).
            let mut pivot: Option<(usize, f64)> = None;
            for &i in &touched {
                let a = scratch[i].abs();
                if row_used[i] || a <= FACTOR_TOL {
                    continue;
                }
                let better = match pivot {
                    None => true,
                    Some((pi, pa)) => a > pa || (a == pa && i < pi),
                };
                if better {
                    pivot = Some((i, a));
                }
            }
            let Some((r, _)) = pivot else {
                return None; // singular
            };
            let wr = scratch[r];
            let mut w: Vec<(usize, f64)> = Vec::new();
            for &i in &touched {
                if i != r && scratch[i] != 0.0 {
                    w.push((i, scratch[i]));
                }
                scratch[i] = 0.0;
            }
            touched.clear();
            w.sort_unstable_by_key(|&(i, _)| i);
            row_used[r] = true;
            perm[pos] = r;
            base_etas.push(Eta { r, wr, w });
        }

        Some(Factor {
            dim,
            base_dim: dim,
            base_etas,
            perm,
            updates: Vec::new(),
            pivot_etas: 0,
        })
    }

    /// Current basis dimension.
    #[cfg(test)]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of update operators since the last (re)build — the
    /// `lp.eta_len` observable.
    pub fn eta_len(&self) -> usize {
        self.updates.len()
    }

    /// `true` once enough pivot etas have accumulated that a fresh
    /// factorization is cheaper (and numerically safer) than applying them.
    pub fn needs_refactor(&self) -> bool {
        self.pivot_etas >= ETA_REFRESH
    }

    /// Records a simplex basis change: the entering column's ftran image
    /// `w` (dense) replaces basis position `pos`.
    pub fn push_pivot(&mut self, pos: usize, w: &[f64]) {
        debug_assert_eq!(w.len(), self.dim);
        let mut col: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != pos && v != 0.0 {
                col.push((i, v));
            }
        }
        self.updates.push(Update::Eta(Eta {
            r: pos,
            wr: w[pos],
            w: col,
        }));
        self.pivot_etas += 1;
    }

    /// Records an appended row block whose fresh slacks enter the basis:
    /// `rows[k']` holds row `k'`'s coefficients on the current basis
    /// positions (sorted by position). The basis dimension grows by
    /// `rows.len()`.
    pub fn push_append(&mut self, rows: Vec<SparseCol>) {
        let k = rows.len();
        self.updates.push(Update::Append {
            base: self.dim,
            rows,
        });
        self.dim += k;
    }

    /// `v <- B^{-1} v`. `scratch` is caller-owned storage reused across
    /// calls (resized as needed).
    pub fn ftran(&self, v: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(v.len(), self.dim);
        for e in &self.base_etas {
            e.ftran(v);
        }
        // Permutation extraction: x[pos] = v[perm[pos]].
        scratch.clear();
        scratch.extend_from_slice(&v[..self.base_dim]);
        for pos in 0..self.base_dim {
            v[pos] = scratch[self.perm[pos]];
        }
        for u in &self.updates {
            match u {
                Update::Eta(e) => e.ftran(v),
                Update::Append { base, rows } => {
                    for (k, row) in rows.iter().enumerate() {
                        let mut s = 0.0;
                        for &(i, ci) in row {
                            s += ci * v[i];
                        }
                        v[base + k] -= s;
                    }
                }
            }
        }
    }

    /// `v <- B^{-T} v`: the transposed operators applied in reverse.
    pub fn btran(&self, v: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(v.len(), self.dim);
        for u in self.updates.iter().rev() {
            match u {
                Update::Eta(e) => e.btran(v),
                Update::Append { base, rows } => {
                    for (k, row) in rows.iter().enumerate() {
                        let f = v[base + k];
                        if f != 0.0 {
                            for &(i, ci) in row {
                                v[i] -= ci * f;
                            }
                        }
                    }
                }
            }
        }
        // Transposed extraction: scatter, then transposed etas in reverse.
        scratch.resize(self.base_dim, 0.0);
        for pos in 0..self.base_dim {
            scratch[self.perm[pos]] = v[pos];
        }
        for e in self.base_etas.iter().rev() {
            e.btran(scratch);
        }
        v[..self.base_dim].copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<SparseCol> {
        let dim = a.len();
        (0..dim)
            .map(|j| {
                (0..dim)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }

    fn mat_t_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        let n = a.len();
        (0..n)
            .map(|j| (0..n).map(|i| a[i][j] * x[i]).sum())
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ftran_btran_invert_a_dense_basis() {
        let a: &[&[f64]] = &[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]];
        let f = Factor::build(&dense_cols(a)).unwrap();
        let x = vec![1.0, -2.0, 0.5];
        let mut scratch = Vec::new();

        let mut v = mat_vec(a, &x); // v = A x  =>  ftran(v) == x
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);

        let mut v = mat_t_vec(a, &x); // v = A' x  =>  btran(v) == x
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        assert!(Factor::build(&dense_cols(a)).is_none());
    }

    #[test]
    fn pivot_eta_tracks_a_column_replacement() {
        let a: &[&[f64]] = &[&[1.0, 1.0], &[0.0, 2.0]];
        let mut f = Factor::build(&dense_cols(a)).unwrap();
        let mut scratch = Vec::new();
        // Replace position 0 with column q = (3, 1)'.
        let mut w = vec![3.0, 1.0];
        f.ftran(&mut w, &mut scratch);
        f.push_pivot(0, &w);
        // New basis: [[3, 1], [1, 2]].
        let b2: &[&[f64]] = &[&[3.0, 1.0], &[1.0, 2.0]];
        let x = vec![0.5, -1.5];
        let mut v = mat_vec(b2, &x);
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);
        let mut v = mat_t_vec(b2, &x);
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn append_block_matches_the_block_inverse() {
        // B = [[2, 0], [1, 1]]; appended row contributes C = (5, 7) and a
        // unit slack, so B_new = [[B, 0], [C, 1]].
        let b0: &[&[f64]] = &[&[2.0, 0.0], &[1.0, 1.0]];
        let mut f = Factor::build(&dense_cols(b0)).unwrap();
        f.push_append(vec![vec![(0, 5.0), (1, 7.0)]]);
        assert_eq!(f.dim(), 3);
        let b1: &[&[f64]] = &[&[2.0, 0.0, 0.0], &[1.0, 1.0, 0.0], &[5.0, 7.0, 1.0]];
        let mut scratch = Vec::new();
        let x = vec![1.0, 2.0, -1.0];
        let mut v = mat_vec(b1, &x);
        f.ftran(&mut v, &mut scratch);
        assert_close(&v, &x);
        let mut v = mat_t_vec(b1, &x);
        f.btran(&mut v, &mut scratch);
        assert_close(&v, &x);
    }

    #[test]
    fn refactor_trigger_fires_after_enough_pivots() {
        let a: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        let mut f = Factor::build(&dense_cols(a)).unwrap();
        assert!(!f.needs_refactor());
        for _ in 0..ETA_REFRESH {
            f.push_pivot(0, &[1.0, 0.0]);
        }
        assert!(f.needs_refactor());
        assert_eq!(f.eta_len(), ETA_REFRESH);
    }
}
