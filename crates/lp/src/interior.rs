// Index-based loops are the natural idiom for the dense kernels here.
#![allow(clippy::needless_range_loop)]

use crate::linalg::SquareMatrix;
use crate::standard::StandardForm;
use crate::{LpError, LpSolve, Model, Solution, Status};

/// Mehrotra predictor-corrector primal-dual interior-point solver.
///
/// This is the algorithm family of LOQO, the solver used by the original
/// paper (the paper notes interior-point methods outperform simplex on large
/// EBF instances — the `lp_solvers` bench revisits that claim). Each
/// iteration forms the normal-equations matrix `A·D·Aᵀ` (`D = X S⁻¹`) and
/// factors it with a dense Cholesky decomposition; a predictor (affine) and
/// a corrector step share the factorization.
///
/// Interior-point methods converge to optimality for feasible, bounded
/// problems but — unlike the simplex — do not produce combinatorial
/// certificates. For infeasible or unbounded models this solver reports
/// [`LpError::IterationLimit`]; callers wanting certified infeasibility
/// should use [`crate::SimplexSolver`] (the EBF driver does exactly that).
///
/// Set the environment variable `LP_IPM_TRACE=1` to print per-iteration
/// residuals and the duality gap to stderr (convergence debugging).
///
/// # Example
///
/// ```
/// use lubt_lp::{Cmp, InteriorPointSolver, LinExpr, LpSolve, Model};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 2.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
/// let sol = InteriorPointSolver::new().solve(&m)?;
/// assert!((sol.objective() - 3.0).abs() < 1e-5);
/// # Ok::<(), lubt_lp::LpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InteriorPointSolver {
    max_iterations: usize,
    tolerance: f64,
}

impl Default for InteriorPointSolver {
    fn default() -> Self {
        InteriorPointSolver {
            max_iterations: 200,
            tolerance: 1e-9,
        }
    }
}

impl InteriorPointSolver {
    /// Creates a solver with default limits (200 iterations, 1e-9 relative
    /// tolerance).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration limit.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the relative convergence tolerance on residuals and the duality
    /// gap.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// `A x` for the dense standard form.
fn mat_vec(sf: &StandardForm, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; sf.m];
    for i in 0..sf.m {
        let row = &sf.a[i * sf.n..(i + 1) * sf.n];
        out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
    }
    out
}

/// `Aᵀ y`.
fn mat_t_vec(sf: &StandardForm, y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; sf.n];
    for i in 0..sf.m {
        let yi = y[i];
        if yi == 0.0 {
            continue;
        }
        let row = &sf.a[i * sf.n..(i + 1) * sf.n];
        for (o, a) in out.iter_mut().zip(row) {
            *o += a * yi;
        }
    }
    out
}

/// Forms `A diag(d) Aᵀ + reg I`.
fn normal_matrix(sf: &StandardForm, d: &[f64], reg: f64) -> SquareMatrix {
    let m = sf.m;
    let mut out = SquareMatrix::zeros(m);
    for i in 0..m {
        let ri = &sf.a[i * sf.n..(i + 1) * sf.n];
        for j in i..m {
            let rj = &sf.a[j * sf.n..(j + 1) * sf.n];
            let mut s = 0.0;
            for k in 0..sf.n {
                let p = ri[k] * rj[k];
                if p != 0.0 {
                    s += p * d[k];
                }
            }
            *out.at_mut(i, j) = s;
            *out.at_mut(j, i) = s;
        }
        *out.at_mut(i, i) += reg;
    }
    out
}

fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

impl LpSolve for InteriorPointSolver {
    fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        model.validate()?;
        let sf = StandardForm::build(model);
        let (m, n) = (sf.m, sf.n);

        if m == 0 {
            // Mirror the simplex's constraint-free handling.
            if model.costs.iter().any(|&c| c < -1e-12) {
                return Err(LpError::IterationLimit {
                    limit: self.max_iterations,
                });
            }
            let x = sf.recover(&vec![0.0; n]);
            let obj = model.objective_value(&x);
            return Ok(Solution::new(Status::Optimal, x, obj, Some(vec![]), 0));
        }

        // ---- Mehrotra starting point. ----
        // x~ = Aᵀ(AAᵀ)⁻¹ b,  y~ = (AAᵀ)⁻¹ A c,  s~ = c − Aᵀ y~.
        let ones = vec![1.0; n];
        let mut aat = normal_matrix(&sf, &ones, 1e-10);
        if !aat.cholesky(0.0) {
            aat = normal_matrix(&sf, &ones, 1e-6);
            if !aat.cholesky(0.0) {
                return Err(LpError::NumericalBreakdown(
                    "AA' not positive definite (rank-deficient rows?)".to_string(),
                ));
            }
        }
        let w = aat.cholesky_solve(&sf.b);
        let mut x = mat_t_vec(&sf, &w);
        let ac = mat_vec(&sf, &sf.c);
        let mut y = aat.cholesky_solve(&ac);
        let aty = mat_t_vec(&sf, &y);
        let mut s: Vec<f64> = sf.c.iter().zip(&aty).map(|(c, a)| c - a).collect();

        let dx = (-1.5 * x.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0);
        let ds = (-1.5 * s.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0);
        x.iter_mut().for_each(|v| *v += dx + 0.1);
        s.iter_mut().for_each(|v| *v += ds + 0.1);
        let xs: f64 = x.iter().zip(&s).map(|(a, b)| a * b).sum();
        let sum_s: f64 = s.iter().sum();
        let sum_x: f64 = x.iter().sum();
        let dx2 = 0.5 * xs / sum_s;
        let ds2 = 0.5 * xs / sum_x;
        x.iter_mut().for_each(|v| *v += dx2);
        s.iter_mut().for_each(|v| *v += ds2);

        let b_scale = 1.0 + norm_inf(&sf.b);
        let c_scale = 1.0 + norm_inf(&sf.c);

        let mut iterations = 0usize;
        while iterations < self.max_iterations {
            let ax = mat_vec(&sf, &x);
            let rp: Vec<f64> = sf.b.iter().zip(&ax).map(|(b, a)| b - a).collect();
            let aty = mat_t_vec(&sf, &y);
            let rd: Vec<f64> =
                sf.c.iter()
                    .zip(&aty)
                    .zip(&s)
                    .map(|((c, a), sv)| c - a - sv)
                    .collect();
            let mu: f64 = x.iter().zip(&s).map(|(a, b)| a * b).sum::<f64>() / n as f64;
            if std::env::var("LP_IPM_TRACE").is_ok() {
                let cx: f64 = sf.c.iter().zip(&x).map(|(c, xv)| c * xv).sum();
                let by: f64 = sf.b.iter().zip(&y).map(|(b, yv)| b * yv).sum();
                eprintln!(
                    "it {iterations}: rp {:.2e} rd {:.2e} mu {:.2e} cx {:.6e} by {:.6e}",
                    norm_inf(&rp),
                    norm_inf(&rd),
                    mu,
                    cx,
                    by
                );
            }

            // Residuals on degenerate LPs (duplicated EBF rows) stall two
            // orders above the complementarity floor while the duality gap
            // is already zero; accept them at a proportionally looser
            // threshold than mu.
            let residual_tol = self.tolerance * 100.0;
            if norm_inf(&rp) / b_scale < residual_tol
                && norm_inf(&rd) / c_scale < residual_tol
                && mu / c_scale < self.tolerance
            {
                let x_orig = sf.recover(&x);
                let objective = model.objective_value(&x_orig);
                let duals = sf.recover_duals(&y);
                return Ok(Solution::new(
                    Status::Optimal,
                    x_orig,
                    objective,
                    Some(duals),
                    iterations,
                ));
            }

            // Normal-equations factorization shared by both steps.
            let d: Vec<f64> = x.iter().zip(&s).map(|(xv, sv)| xv / sv).collect();
            // Regularization must stay far below the matrix scale or the
            // Newton step degrades and the iteration stalls; start at zero
            // and escalate only on factorization breakdown.
            let mut reg = 0.0;
            let mut fact = normal_matrix(&sf, &d, reg);
            let mut tries = 0;
            while !fact.cholesky(0.0) {
                reg = if reg == 0.0 {
                    1e-12 * (1.0 + norm_inf(&d))
                } else {
                    reg * 100.0
                };
                tries += 1;
                if tries > 6 {
                    return Err(LpError::NumericalBreakdown(
                        "normal equations lost positive definiteness".to_string(),
                    ));
                }
                fact = normal_matrix(&sf, &d, reg);
            }

            // Solves the Newton system for a given complementarity target v.
            let solve_dir = |v: &[f64]| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
                // rhs = rp + A·(D·rd − S⁻¹ v)
                let tmp: Vec<f64> = (0..n).map(|j| d[j] * rd[j] - v[j] / s[j]).collect();
                let atmp = mat_vec(&sf, &tmp);
                let rhs: Vec<f64> = rp.iter().zip(&atmp).map(|(r, a)| r + a).collect();
                let dy = fact.cholesky_solve(&rhs);
                let atdy = mat_t_vec(&sf, &dy);
                let dx: Vec<f64> = (0..n)
                    .map(|j| d[j] * (atdy[j] - rd[j]) + v[j] / s[j])
                    .collect();
                let ds: Vec<f64> = (0..n).map(|j| (v[j] - s[j] * dx[j]) / x[j]).collect();
                (dx, dy, ds)
            };

            // Predictor (affine scaling) direction: v = −X S e.
            let v_aff: Vec<f64> = x.iter().zip(&s).map(|(a, b)| -a * b).collect();
            let (dx_a, _dy_a, ds_a) = solve_dir(&v_aff);
            let alpha_p_aff = max_step(&x, &dx_a);
            let alpha_d_aff = max_step(&s, &ds_a);
            let mu_aff: f64 = (0..n)
                .map(|j| (x[j] + alpha_p_aff * dx_a[j]) * (s[j] + alpha_d_aff * ds_a[j]))
                .sum::<f64>()
                / n as f64;
            let sigma = (mu_aff / mu).powi(3).clamp(1e-8, 1.0);

            // Corrector: v = σμe − XSe − ΔXaff ΔSaff e.
            let v_cor: Vec<f64> = (0..n)
                .map(|j| sigma * mu - x[j] * s[j] - dx_a[j] * ds_a[j])
                .collect();
            let (dx, dy, ds_step) = solve_dir(&v_cor);

            let alpha_p = (0.9995 * max_step(&x, &dx)).min(1.0);
            let alpha_d = (0.9995 * max_step(&s, &ds_step)).min(1.0);
            for j in 0..n {
                x[j] += alpha_p * dx[j];
                s[j] += alpha_d * ds_step[j];
            }
            for (yi, dyi) in y.iter_mut().zip(&dy) {
                *yi += alpha_d * dyi;
            }
            iterations += 1;
        }
        Err(LpError::IterationLimit {
            limit: self.max_iterations,
        })
    }
}

/// Largest `alpha >= 0` with `z + alpha*dz >= 0` componentwise (capped at a
/// large constant for strictly interior directions).
fn max_step(z: &[f64], dz: &[f64]) -> f64 {
    let mut alpha = f64::INFINITY;
    for (zi, di) in z.iter().zip(dz) {
        if *di < 0.0 {
            alpha = alpha.min(-zi / di);
        }
    }
    alpha.min(1e12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr};
    use crate::SimplexSolver;

    fn expr(terms: &[(crate::Var, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn matches_simplex_on_small_lp() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(y, 1.0)]), Cmp::Le, 2.0);
        let si = SimplexSolver::new().solve(&m).unwrap();
        let ip = InteriorPointSolver::new().solve(&m).unwrap();
        assert!(ip.is_optimal());
        assert!((si.objective() - ip.objective()).abs() < 1e-5);
    }

    #[test]
    fn equality_rows() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 2.0);
        let y = m.add_var(0.0, 3.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 4.0);
        let s = InteriorPointSolver::new().solve(&m).unwrap();
        assert!((s.objective() - 8.0).abs() < 1e-5); // all weight on x
        assert!(m.check_feasible(s.values(), 1e-5).is_ok());
    }

    #[test]
    fn shifted_bounds() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0);
        let y = m.add_var(2.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 5.0);
        let s = InteriorPointSolver::new().solve(&m).unwrap();
        assert!((s.objective() - 5.0).abs() < 1e-5);
        assert!(s.value(x) >= 1.0 - 1e-6 && s.value(y) >= 2.0 - 1e-6);
    }

    #[test]
    fn infeasible_reports_iteration_limit() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        let r = InteriorPointSolver::new().with_max_iterations(60).solve(&m);
        assert!(matches!(r, Err(LpError::IterationLimit { .. })));
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 2.0);
        let s = InteriorPointSolver::new().solve(&m).unwrap();
        let duals = s.duals().unwrap();
        let dual_obj = 3.0 * duals[0] + 2.0 * duals[1];
        assert!((dual_obj - s.objective()).abs() < 1e-4, "duals {duals:?}");
    }

    #[test]
    fn moderately_sized_random_lp_agrees_with_simplex() {
        // Deterministic pseudo-random LP with a known feasible point.
        let mut m = Model::new();
        let n = 20;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(0.0, 1.0 + (i % 5) as f64))
            .collect();
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for r in 0..15 {
            let mut e = LinExpr::new();
            let mut rhs = 0.0;
            for &v in &vars {
                let coef = (next() * 3.0).floor();
                if coef > 0.0 {
                    e.add_term(v, coef);
                    rhs += coef; // feasible at x = e
                }
            }
            let cmp = if r % 3 == 0 { Cmp::Le } else { Cmp::Ge };
            let slacked = match cmp {
                Cmp::Le => rhs * 1.5,
                _ => rhs * 0.5,
            };
            m.add_constraint(e, cmp, slacked);
        }
        let si = SimplexSolver::new().solve(&m).unwrap();
        let ip = InteriorPointSolver::new().solve(&m).unwrap();
        assert!(si.is_optimal() && ip.is_optimal());
        let scale = 1.0 + si.objective().abs();
        assert!(
            (si.objective() - ip.objective()).abs() / scale < 1e-5,
            "simplex {} vs ipm {}",
            si.objective(),
            ip.objective()
        );
    }
}
