use std::error::Error;
use std::fmt;

/// Errors produced by the LP layer.
///
/// Infeasibility and unboundedness of a well-formed model are *not* errors:
/// they are reported as [`crate::Status`] values. `LpError` covers malformed
/// input and numerical breakdown.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The model has no variables.
    EmptyModel,
    /// A coefficient, bound or right-hand side was NaN or infinite.
    NonFiniteInput {
        /// Human-readable location of the offending value.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A constraint referenced a variable that does not belong to the model.
    UnknownVariable {
        /// Index of the unknown variable.
        index: usize,
        /// Number of variables in the model.
        model_vars: usize,
    },
    /// The solver exceeded its iteration limit without converging.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A factorization failed (severely ill-conditioned system).
    NumericalBreakdown(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::EmptyModel => write!(f, "model has no variables"),
            LpError::NonFiniteInput { what, value } => {
                write!(f, "non-finite value {value} in {what}")
            }
            LpError::UnknownVariable { index, model_vars } => write!(
                f,
                "variable index {index} out of range for model with {model_vars} variables"
            ),
            LpError::IterationLimit { limit } => {
                write!(f, "iteration limit {limit} reached without convergence")
            }
            LpError::NumericalBreakdown(msg) => write!(f, "numerical breakdown: {msg}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LpError::EmptyModel.to_string().contains("no variables"));
        assert!(LpError::IterationLimit { limit: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
