//! Incremental simplex session: keep the optimal tableau alive across
//! re-solves of a model that only *appends inequality rows* — the lazy
//! constraint-separation pattern.
//!
//! Appending a row to an optimal tableau is O(nnz · width): eliminate the
//! basic variables from the raw row, seed it with its own slack, and run
//! the dual simplex until primal feasibility returns. Unlike
//! [`crate::SimplexSolver::solve_warm`] (which rebuilds the tableau from a
//! basis in O(m²n)), the session never recomputes what it already knows.

// Index-based loops are the natural idiom for the dense kernels here.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use lubt_obs::Recorder;

use crate::certificate::{CertSeed, Certificate, ColumnRole};
use crate::model::{Cmp, LinExpr, Model};
use crate::simplex::{dual_then_primal, ReoptOutcome, SimplexSolver, Tableau};
use crate::standard::StandardForm;
use crate::{LpError, Solution, Status};

/// A combined-and-sorted appended row: coefficients over shifted
/// variables, sense, shifted right-hand side.
type PendingRow = (Vec<(usize, f64)>, Cmp, f64);

/// An incremental solver bound to one growing model.
///
/// # Example
///
/// ```
/// use lubt_lp::{Cmp, LinExpr, Model, SimplexSession};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 1.0);
/// m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
///
/// let mut session = SimplexSession::start(m)?;
/// assert!((session.solution().objective() - 4.0).abs() < 1e-7);
///
/// // Tighten: x alone must reach 3.
/// session.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 3.0)?;
/// let sol = session.resolve()?;
/// assert!((sol.objective() - 4.0).abs() < 1e-7); // x = 3, y = 1
/// # Ok::<(), lubt_lp::LpError>(())
/// ```
pub struct SimplexSession {
    model: Model,
    /// Standard form of the *initial* model (variable shifts stay valid).
    shift: Vec<f64>,
    /// Live tableau, kept at an optimal basis between resolves.
    t: Tableau,
    /// Rows appended since the last resolve.
    pending: Vec<PendingRow>,
    /// Cached solution of the current tableau.
    solution: Solution,
    max_iterations: usize,
    recorder: Arc<dyn Recorder>,
    infeasible: bool,
    /// Role of every tableau column, for certificate seeds. Grows by one
    /// slack per appended row.
    col_roles: Vec<ColumnRole>,
    /// Seed of the certificate for the most recent (re)solve outcome.
    cert_seed: Option<CertSeed>,
}

impl SimplexSession {
    /// Cold-solves `model` and retains the tableau for incremental growth.
    ///
    /// # Errors
    ///
    /// * [`LpError`] on validation/numerics;
    /// * models that are initially infeasible or unbounded are *not*
    ///   errors — query [`SimplexSession::solution`] for the status, but
    ///   such sessions cannot be grown.
    pub fn start(model: Model) -> Result<Self, LpError> {
        Self::start_with(model, SimplexSolver::new())
    }

    /// Like [`SimplexSession::start`], but the cold solve and every later
    /// [`SimplexSession::resolve`] inherit `solver`'s pivot budget and
    /// recorder.
    pub fn start_with(model: Model, solver: SimplexSolver) -> Result<Self, LpError> {
        let (solution, tableau, cert_seed) = solver.solve_keeping_tableau(&model)?;
        let sf = StandardForm::build(&model);
        let infeasible = solution.status() != Status::Optimal;
        let t = tableau.unwrap_or_else(|| Tableau::from_costs(&vec![0.0; sf.n]));
        // Mirror `solve_full`'s column layout: structurals, slacks in row
        // order, artificials in row order (truncated away when the fallback
        // tableau has no artificial block).
        let mut col_roles: Vec<ColumnRole> = Vec::with_capacity(t.cols);
        col_roles.extend((0..model.num_vars()).map(ColumnRole::Structural));
        col_roles.extend(
            (0..sf.m)
                .filter(|&i| sf.slack_col[i] != usize::MAX)
                .map(ColumnRole::Slack),
        );
        col_roles.extend(
            (0..sf.m)
                .filter(|&i| {
                    let sc = sf.slack_col[i];
                    !(sc != usize::MAX && (sf.at(i, sc) - 1.0).abs() < 1e-12)
                })
                .map(ColumnRole::Artificial),
        );
        col_roles.truncate(t.cols);
        Ok(SimplexSession {
            shift: sf.shift,
            model,
            t,
            pending: Vec::new(),
            solution,
            max_iterations: solver.max_iterations(),
            recorder: Arc::clone(solver.recorder()),
            infeasible,
            col_roles,
            cert_seed,
        })
    }

    /// The model as grown so far.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The solution of the most recent (re)solve.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Materializes the certificate for the most recent (re)solve outcome:
    /// optimality duals when optimal, a Farkas ray when infeasible. `None`
    /// for unbounded outcomes or when the basis cannot be factorized.
    pub fn certificate(&self) -> Option<Certificate> {
        self.cert_seed
            .as_ref()
            .and_then(|s| crate::certificate::compute(&self.model, s))
    }

    /// Appends an inequality row (`Le` or `Ge`). Takes effect at the next
    /// [`SimplexSession::resolve`].
    ///
    /// # Errors
    ///
    /// [`LpError::NonFiniteInput`] for bad numbers; equality rows are not
    /// supported incrementally (`NumericalBreakdown` explains why — start a
    /// fresh session instead).
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) -> Result<(), LpError> {
        if cmp == Cmp::Eq {
            return Err(LpError::NumericalBreakdown(
                "incremental sessions accept only inequality rows (equalities need artificials)"
                    .to_string(),
            ));
        }
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteInput {
                what: "appended row rhs".to_string(),
                value: rhs,
            });
        }
        // Dense-combine duplicates, apply the variable shift to the rhs.
        let mut combined: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let mut shifted_rhs = rhs;
        for &(v, c) in expr.terms() {
            if v.index() >= self.model.num_vars() {
                return Err(LpError::UnknownVariable {
                    index: v.index(),
                    model_vars: self.model.num_vars(),
                });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: "appended row coefficient".to_string(),
                    value: c,
                });
            }
            *combined.entry(v.index()).or_insert(0.0) += c;
            shifted_rhs -= c * self.shift[v.index()];
        }
        let mut terms: Vec<(usize, f64)> = combined.into_iter().collect();
        terms.sort_by_key(|&(i, _)| i);
        self.model.add_constraint(expr, cmp, rhs);
        self.pending.push((terms, cmp, shifted_rhs));
        Ok(())
    }

    /// Integrates all pending rows and re-optimizes with the dual simplex.
    ///
    /// # Errors
    ///
    /// [`LpError::IterationLimit`] on pivot-budget exhaustion. An
    /// *infeasible* grown model is reported via the returned solution's
    /// status, and the session becomes permanently infeasible (appending
    /// rows cannot restore feasibility).
    pub fn resolve(&mut self) -> Result<&Solution, LpError> {
        if self.infeasible {
            self.pending.clear();
            return Ok(&self.solution);
        }
        if self.pending.is_empty() {
            return Ok(&self.solution);
        }
        let batch: Vec<(Vec<(usize, f64)>, f64)> = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(terms, cmp, rhs)| {
                // Orient the row so its slack carries +1: `sum <= rhs`
                // becomes `sum + s = rhs`; `sum >= rhs` becomes
                // `-sum + s = -rhs`.
                let sign = match cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => unreachable!("rejected in add_constraint"),
                };
                (
                    terms.iter().map(|&(i, c)| (i, sign * c)).collect(),
                    sign * rhs,
                )
            })
            .collect();
        let first_new_row = self.t.m;
        self.t.append_rows(&batch);
        for k in 0..batch.len() {
            self.col_roles.push(ColumnRole::Slack(first_new_row + k));
        }
        let mut iters = self.solution.iterations();
        if self.recorder.enabled() {
            self.recorder.incr("simplex.resolves", 1);
        }
        let status = dual_then_primal(
            &mut self.t,
            &mut iters,
            self.max_iterations,
            &*self.recorder,
        )?;
        if self.recorder.enabled() {
            self.recorder
                .record_max("simplex.peak_pivots", iters as u64);
            self.recorder.gauge(
                "simplex.limit_fraction",
                iters as f64 / self.max_iterations.max(1) as f64,
            );
        }
        let basis_roles = || self.t.basis.iter().map(|&c| self.col_roles[c]).collect();
        match status {
            ReoptOutcome::Optimal => {
                self.cert_seed = Some(CertSeed::Optimal(basis_roles()));
                let n_orig = self.model.num_vars();
                let mut x = vec![0.0; n_orig];
                for r in 0..self.t.m {
                    let b = self.t.basis[r];
                    if b < n_orig {
                        x[b] = self.t.rhs(r).max(0.0);
                    }
                }
                for (xi, s) in x.iter_mut().zip(&self.shift) {
                    *xi += s;
                }
                let objective = self.model.objective_value(&x);
                self.solution = Solution::new(Status::Optimal, x, objective, None, iters);
            }
            ReoptOutcome::Infeasible { row } => {
                self.cert_seed = Some(CertSeed::DualRow(basis_roles(), row));
                self.infeasible = true;
                self.solution = Solution::infeasible(self.model.num_vars(), iters);
            }
            ReoptOutcome::Unbounded => {
                self.cert_seed = None;
                self.solution = Solution::unbounded(self.model.num_vars(), iters);
            }
        }
        Ok(&self.solution)
    }
}

impl std::fmt::Debug for SimplexSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimplexSession")
            .field("vars", &self.model.num_vars())
            .field("rows", &self.model.num_constraints())
            .field("pending", &self.pending.len())
            .field("status", &self.solution.status())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Var;
    use crate::LpSolve;

    fn expr(terms: &[(Var, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    #[test]
    fn session_matches_cold_solves_row_by_row() {
        let mut base = Model::new();
        let vars = base.add_vars(5, 0.0, 1.0);
        base.add_constraint(
            LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
            Cmp::Ge,
            10.0,
        );
        let mut session = SimplexSession::start(base.clone()).unwrap();
        let rows: &[(&[usize], Cmp, f64)] = &[
            (&[0, 1], Cmp::Ge, 6.0),
            (&[2, 3], Cmp::Ge, 5.0),
            (&[4], Cmp::Le, 2.0),
            (&[0, 4], Cmp::Ge, 3.0),
        ];
        for &(cols, cmp, rhs) in rows {
            let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
            base.add_constraint(e.clone(), cmp, rhs);
            session.add_constraint(e, cmp, rhs).unwrap();
            let inc = session.resolve().unwrap().clone();
            let cold = SimplexSolver::new().solve(&base).unwrap();
            assert_eq!(inc.status(), cold.status());
            assert!(
                (inc.objective() - cold.objective()).abs() < 1e-7,
                "incremental {} vs cold {}",
                inc.objective(),
                cold.objective()
            );
            assert!(base.check_feasible(inc.values(), 1e-6).is_ok());
        }
    }

    #[test]
    fn session_with_shifted_lower_bounds() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 1.0);
        let y = m.add_var(-1.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);
        let mut s = SimplexSession::start(m).unwrap();
        assert!((s.solution().objective() - 4.0).abs() < 1e-7);
        s.add_constraint(expr(&[(y, 1.0)]), Cmp::Ge, 1.5).unwrap();
        let sol = s.resolve().unwrap();
        // y = 1.5, x = 2.5 (x's bound is 2, but x + y >= 4 forces 2.5).
        assert!((sol.objective() - 4.0).abs() < 1e-7);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 1.5 - 1e-9);
    }

    #[test]
    fn session_detects_infeasibility_and_stays_there() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
        let mut s = SimplexSession::start(m).unwrap();
        s.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0).unwrap();
        assert_eq!(s.resolve().unwrap().status(), Status::Infeasible);
        // Further rows keep it infeasible without panicking.
        s.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 1.0).unwrap();
        assert_eq!(s.resolve().unwrap().status(), Status::Infeasible);
    }

    #[test]
    fn equality_rows_are_rejected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 1.0);
        let mut s = SimplexSession::start(m).unwrap();
        assert!(s.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 2.0).is_err());
    }

    #[test]
    fn duplicate_terms_in_appended_rows_combine() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 100.0);
        let mut s = SimplexSession::start(m).unwrap();
        s.add_constraint(expr(&[(x, 1.0), (x, 2.0)]), Cmp::Ge, 9.0)
            .unwrap();
        let sol = s.resolve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn resolve_without_pending_is_a_no_op() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 2.0);
        let mut s = SimplexSession::start(m).unwrap();
        let before = s.solution().objective();
        let after = s.resolve().unwrap().objective();
        assert_eq!(before, after);
    }
}
