use crate::LpError;
use std::fmt;

/// Handle to a decision variable of a [`Model`].
///
/// `Var`s are created by [`Model::add_var`] and are only meaningful for the
/// model that created them; using them across models is caught at solve
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Positional index of the variable within its model (also the index of
    /// its value in [`crate::Solution::values`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        })
    }
}

/// A sparse linear expression `sum(coef * var)`.
///
/// Duplicate variables are allowed and combine additively.
///
/// # Example
///
/// ```
/// use lubt_lp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 1.0);
/// let expr = LinExpr::new().with_term(x, 2.0).with_term(y, -1.0);
/// assert_eq!(expr.terms().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(Var, f64)>,
}

impl LinExpr {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (Var, f64)>>(terms: I) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
        }
    }

    /// Adds a term in place.
    pub fn add_term(&mut self, var: Var, coef: f64) -> &mut Self {
        self.terms.push((var, coef));
        self
    }

    /// Adds a term, builder style.
    #[must_use]
    pub fn with_term(mut self, var: Var, coef: f64) -> Self {
        self.terms.push((var, coef));
        self
    }

    /// The raw `(variable, coefficient)` pairs (duplicates possible).
    pub fn terms(&self) -> &[(Var, f64)] {
        &self.terms
    }

    /// Evaluates the expression against a dense value vector.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.0]).sum()
    }
}

impl FromIterator<(Var, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (Var, f64)>>(iter: I) -> Self {
        LinExpr::from_terms(iter)
    }
}

impl Extend<(Var, f64)> for LinExpr {
    fn extend<I: IntoIterator<Item = (Var, f64)>>(&mut self, iter: I) {
        self.terms.extend(iter);
    }
}

/// One linear constraint `expr cmp rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// The left-hand-side expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The comparison sense.
    pub fn cmp(&self) -> Cmp {
        self.cmp
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }
}

/// A minimization LP: `min c'x` subject to linear constraints and
/// per-variable lower bounds.
///
/// All variables carry a finite lower bound (default use cases in LUBT use
/// `0`, wire lengths being non-negative); upper bounds, when needed, are
/// expressed as explicit constraints.
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    pub(crate) costs: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty minimization model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with lower bound `lower` and objective coefficient
    /// `cost`; returns its handle.
    pub fn add_var(&mut self, lower: f64, cost: f64) -> Var {
        self.costs.push(cost);
        self.lower.push(lower);
        Var(self.costs.len() - 1)
    }

    /// Adds `n` variables sharing the same lower bound and cost; returns
    /// their handles in order.
    pub fn add_vars(&mut self, n: usize, lower: f64, cost: f64) -> Vec<Var> {
        (0..n).map(|_| self.add_var(lower, cost)).collect()
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// The variables in insertion order (so external auditors can iterate
    /// costs, bounds, and per-variable reduced costs without holding the
    /// `Var` handles from construction time).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.costs.len()).map(Var)
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective coefficient of `var`.
    pub fn cost(&self, var: Var) -> f64 {
        self.costs[var.0]
    }

    /// Lower bound of `var`.
    pub fn lower_bound(&self, var: Var) -> f64 {
        self.lower[var.0]
    }

    /// Objective value of a dense assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.costs.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Checks that `values` satisfies every constraint and lower bound
    /// within `eps`; returns the index of the first violated constraint (or
    /// `usize::MAX` for a bound violation) as the error payload.
    pub fn check_feasible(&self, values: &[f64], eps: f64) -> Result<(), usize> {
        for (i, (x, lb)) in values.iter().zip(&self.lower).enumerate() {
            if *x < *lb - eps {
                let _ = i;
                return Err(usize::MAX);
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            let lhs = c.expr.eval(values);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + eps,
                Cmp::Ge => lhs >= c.rhs - eps,
                Cmp::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Validates the model: at least one variable, all inputs finite, all
    /// constraint variables in range.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`LpError`] on the first violation found.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.costs.is_empty() {
            return Err(LpError::EmptyModel);
        }
        for (i, c) in self.costs.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: format!("objective coefficient of x{i}"),
                    value: *c,
                });
            }
        }
        for (i, l) in self.lower.iter().enumerate() {
            if !l.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: format!("lower bound of x{i}"),
                    value: *l,
                });
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: format!("rhs of constraint {ci}"),
                    value: c.rhs,
                });
            }
            for &(v, coef) in c.expr.terms() {
                if v.0 >= self.costs.len() {
                    return Err(LpError::UnknownVariable {
                        index: v.0,
                        model_vars: self.costs.len(),
                    });
                }
                if !coef.is_finite() {
                    return Err(LpError::NonFiniteInput {
                        what: format!("coefficient of {v} in constraint {ci}"),
                        value: coef,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(-5.0, 2.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.cost(y), 2.0);
        assert_eq!(m.lower_bound(y), -5.0);
        assert_eq!(m.objective_value(&[1.0, 1.0]), 3.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn expr_duplicates_combine_in_eval() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let e = LinExpr::from_terms([(x, 1.0), (x, 2.0)]);
        assert_eq!(e.eval(&[10.0]), 30.0);
    }

    #[test]
    fn validation_catches_problems() {
        let m = Model::new();
        assert_eq!(m.validate(), Err(LpError::EmptyModel));

        let mut m = Model::new();
        let _ = m.add_var(0.0, f64::NAN);
        assert!(matches!(m.validate(), Err(LpError::NonFiniteInput { .. })));

        let mut m = Model::new();
        let _x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(Var(7), 1.0)]), Cmp::Le, 1.0);
        assert!(matches!(m.validate(), Err(LpError::UnknownVariable { .. })));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 5.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 2.0);
        assert!(m.check_feasible(&[3.0], 1e-9).is_ok());
        assert_eq!(m.check_feasible(&[6.0], 1e-9), Err(0));
        assert_eq!(m.check_feasible(&[1.0], 1e-9), Err(1));
        assert_eq!(m.check_feasible(&[-1.0], 1e-9), Err(usize::MAX));
    }

    #[test]
    fn collect_into_expr() {
        let mut m = Model::new();
        let vars = m.add_vars(3, 0.0, 1.0);
        let e: LinExpr = vars.iter().map(|&v| (v, 1.0)).collect();
        assert_eq!(e.terms().len(), 3);
        let mut e2 = LinExpr::new();
        e2.extend(vars.iter().map(|&v| (v, 2.0)));
        assert_eq!(e2.eval(&[1.0, 1.0, 1.0]), 6.0);
    }
}
