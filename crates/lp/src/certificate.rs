//! Post-solve certificates: enough of the final basis to reconstruct, on
//! demand, the dual vector proving optimality or the Farkas ray proving
//! infeasibility — in the *original* row orientation of the [`Model`], so
//! external auditors (see the `lubt-audit` crate) can verify them with
//! exact arithmetic against the model as the caller wrote it.
//!
//! The solvers never pay for certification on their hot paths: a solve
//! records only a [`CertSeed`] (column roles of the final basis plus, for
//! dual-simplex infeasibility, the certifying row). [`compute`] turns a
//! seed into a [`Certificate`] with one dense `O(m^3)` LU solve, and is
//! only called when auditing is requested.
//!
//! # Orientation
//!
//! Internally both backends normalize rows so the standard-form rhs is
//! non-negative (`B_int = D · B_orig` for a ±1 diagonal `D`). Certificates
//! are stated over `B_orig`:
//!
//! * optimal duals `y` solve `B_orig' y = c_B`, which equals `D · y_int` —
//!   exactly the convention of [`crate::Solution::duals`];
//! * a dual-simplex Farkas ray is `r = -B_orig^{-T} e_row`; the two `D`
//!   factors cancel, so no per-row sign bookkeeping is needed;
//! * a phase-1 Farkas ray solves `B_orig' r = c¹_B` where `c¹_B` is 1 on
//!   artificial columns — whose original-orientation sign *does* depend on
//!   `D`, replayed bit-exactly by [`row_negation_flags`].

use crate::linalg::SquareMatrix;
use crate::model::{Cmp, Model};

/// Role of one basis column, stated in terms of the original model rather
/// than internal standard-form column numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// Structural variable `j` of the model.
    Structural(usize),
    /// Slack (`<=`) or surplus (`>=`) of constraint row `i`.
    Slack(usize),
    /// Residual artificial of constraint row `i`.
    Artificial(usize),
}

/// Optimality certificate: the final basis and the dual vector it implies.
///
/// `duals` follow the [`crate::Solution::duals`] convention (one entry per
/// constraint, original row orientation: `>=` rows carry non-negative
/// duals at optimality, `<=` rows non-positive). Fields are public so
/// external auditors — and tests that deliberately corrupt certificates —
/// can inspect and rewrite them.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalityCertificate {
    /// Final basis, one [`ColumnRole`] per constraint row.
    pub basis: Vec<ColumnRole>,
    /// Constraint duals implied by the basis, original row orientation.
    pub duals: Vec<f64>,
}

/// Farkas infeasibility certificate: row multipliers `r` such that every
/// point satisfying the constraints would have to satisfy
/// `0 >= sum_i r_i * b'_i > 0` — a contradiction.
///
/// Concretely, with the variable shift `x = x' + lb` (`x' >= 0`) and
/// shifted rhs `b'_i = rhs_i - sum coef * lb`, a valid ray has `r_i <= 0`
/// on `<=` rows, `r_i >= 0` on `>=` rows, `sum_i r_i a_ij <= 0` for every
/// variable `j`, and `sum_i r_i b'_i > 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct FarkasCertificate {
    /// One multiplier per constraint row (rows beyond the subsystem that
    /// certified infeasibility are zero).
    pub ray: Vec<f64>,
}

/// Certificate attached to a solve outcome: a dual proof of optimality or
/// a Farkas proof of infeasibility. Unbounded outcomes carry none.
#[derive(Debug, Clone, PartialEq)]
pub enum Certificate {
    /// The solve ended optimal; here is the basis and its duals.
    Optimality(OptimalityCertificate),
    /// The solve ended infeasible; here is the Farkas ray.
    Farkas(FarkasCertificate),
}

/// Deferred certificate: the minimum bookkeeping a solve must retain so
/// [`compute`] can reconstruct the certificate later. Kept cheap (a role
/// per basis column) so the hot solve paths stay free of dense work.
#[derive(Debug, Clone)]
pub(crate) enum CertSeed {
    /// Optimal basis.
    Optimal(Vec<ColumnRole>),
    /// Basis at a phase-1 exit with a positive artificial sum.
    Phase1(Vec<ColumnRole>),
    /// Basis at a dual-simplex infeasibility exit, plus the certifying row
    /// position.
    DualRow(Vec<ColumnRole>, usize),
}

/// Replays the standard-form builders' rhs-sign normalization: row `i` was
/// multiplied by -1 iff its shifted rhs came out negative. The arithmetic
/// must stay float-identical to `StandardForm::build` / `SparseForm::build`
/// (same accumulation order, same strict `< 0.0` test).
pub(crate) fn row_negation_flags(model: &Model) -> Vec<bool> {
    model
        .constraints
        .iter()
        .map(|con| {
            let mut rhs = con.rhs;
            for &(v, coef) in con.expr.terms() {
                rhs -= coef * model.lower[v.index()];
            }
            rhs < 0.0
        })
        .collect()
}

/// Transposed original-orientation basis matrix (`row k` = basis column
/// `k`) over the first `roles.len()` constraint rows. `None` for roles
/// that do not name a valid column (e.g. a slack on an equality row).
fn basis_transpose(model: &Model, roles: &[ColumnRole]) -> Option<SquareMatrix> {
    let m = roles.len();
    if m > model.num_constraints() {
        return None;
    }
    let negated = row_negation_flags(model);
    let mut bt = SquareMatrix::zeros(m);
    for (k, &role) in roles.iter().enumerate() {
        match role {
            ColumnRole::Structural(j) => {
                if j >= model.num_vars() {
                    return None;
                }
                for (i, con) in model.constraints.iter().take(m).enumerate() {
                    for &(v, coef) in con.expr.terms() {
                        if v.index() == j {
                            *bt.at_mut(k, i) += coef;
                        }
                    }
                }
            }
            ColumnRole::Slack(i) => {
                if i >= m {
                    return None;
                }
                let sigma = match model.constraints[i].cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => return None,
                };
                *bt.at_mut(k, i) += sigma;
            }
            ColumnRole::Artificial(i) => {
                if i >= m {
                    return None;
                }
                *bt.at_mut(k, i) += if negated[i] { -1.0 } else { 1.0 };
            }
        }
    }
    Some(bt)
}

/// Materializes a [`Certificate`] from a seed with one dense LU solve.
/// `None` when the basis is malformed or numerically singular (auditors
/// treat a missing certificate as a failure in its own right).
pub(crate) fn compute(model: &Model, seed: &CertSeed) -> Option<Certificate> {
    let total_rows = model.num_constraints();
    match seed {
        CertSeed::Optimal(roles) => {
            let bt = basis_transpose(model, roles)?;
            let cb: Vec<f64> = roles
                .iter()
                .map(|r| match *r {
                    ColumnRole::Structural(j) => model.costs[j],
                    _ => 0.0,
                })
                .collect();
            let duals = bt.lu_solve(cb)?;
            Some(Certificate::Optimality(OptimalityCertificate {
                basis: roles.clone(),
                duals,
            }))
        }
        CertSeed::Phase1(roles) => {
            let bt = basis_transpose(model, roles)?;
            let cb: Vec<f64> = roles
                .iter()
                .map(|r| match r {
                    ColumnRole::Artificial(_) => 1.0,
                    _ => 0.0,
                })
                .collect();
            let mut ray = bt.lu_solve(cb)?;
            ray.resize(total_rows, 0.0);
            Some(Certificate::Farkas(FarkasCertificate { ray }))
        }
        CertSeed::DualRow(roles, row) => {
            if *row >= roles.len() {
                return None;
            }
            let bt = basis_transpose(model, roles)?;
            let mut e = vec![0.0; roles.len()];
            e[*row] = 1.0;
            let v = bt.lu_solve(e)?;
            let mut ray: Vec<f64> = v.into_iter().map(|t| -t).collect();
            ray.resize(total_rows, 0.0);
            Some(Certificate::Farkas(FarkasCertificate { ray }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    #[test]
    fn negation_flags_match_standard_form() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(2.0, 3.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Le, 10.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 4.0);
        m.add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Eq, 1.0); // 1 - 2 < 0
        let flags = row_negation_flags(&m);
        let sf = crate::standard::StandardForm::build(&m);
        assert_eq!(flags, sf.row_negated);
    }

    #[test]
    fn malformed_roles_yield_no_certificate() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Eq, 2.0);
        // Slack on an equality row is not a column.
        let seed = CertSeed::Optimal(vec![ColumnRole::Slack(0)]);
        assert!(compute(&m, &seed).is_none());
        // Out-of-range structural index.
        let seed = CertSeed::Optimal(vec![ColumnRole::Structural(7)]);
        assert!(compute(&m, &seed).is_none());
        // Row index past the subsystem.
        let seed = CertSeed::DualRow(vec![ColumnRole::Structural(0)], 3);
        assert!(compute(&m, &seed).is_none());
    }

    #[test]
    fn empty_basis_of_a_constraint_free_model() {
        let mut m = Model::new();
        let _ = m.add_var(0.0, 1.0);
        let Some(Certificate::Optimality(c)) = compute(&m, &CertSeed::Optimal(Vec::new())) else {
            panic!("empty basis is trivially certifiable");
        };
        assert!(c.basis.is_empty());
        assert!(c.duals.is_empty());
    }
}
