//! Randomized cross-validation of the LP solvers.
//!
//! * 2-variable LPs are solved exactly by brute-force vertex enumeration and
//!   compared against the simplex.
//! * Random covering LPs check simplex/interior-point agreement.

use lubt_lp::{Cmp, InteriorPointSolver, LinExpr, LpSolve, Model, SimplexSolver, Status};
use proptest::prelude::*;

/// One random inequality `a*x + b*y (<=|>=) r`.
#[derive(Debug, Clone)]
struct RandCon {
    a: f64,
    b: f64,
    le: bool,
    r: f64,
}

fn rand_con() -> impl Strategy<Value = RandCon> {
    (
        -3.0..3.0f64,
        -3.0..3.0f64,
        proptest::bool::ANY,
        -5.0..8.0f64,
    )
        .prop_map(|(a, b, le, r)| RandCon { a, b, le, r })
}

/// Exact 2-D optimum by enumerating intersections of active-constraint
/// pairs (including the box and the non-negativity axes).
fn brute_force_2d(cons: &[RandCon], cx: f64, cy: f64, box_hi: f64) -> Option<(f64, f64, f64)> {
    // Lines: each constraint boundary, x=0, y=0, x=box, y=box.
    let mut lines: Vec<(f64, f64, f64)> = cons.iter().map(|c| (c.a, c.b, c.r)).collect();
    lines.push((1.0, 0.0, 0.0));
    lines.push((0.0, 1.0, 0.0));
    lines.push((1.0, 0.0, box_hi));
    lines.push((0.0, 1.0, box_hi));

    let feasible = |x: f64, y: f64| -> bool {
        if !((-1e-7..=box_hi + 1e-7).contains(&x) && (-1e-7..=box_hi + 1e-7).contains(&y)) {
            return false;
        }
        cons.iter().all(|c| {
            let lhs = c.a * x + c.b * y;
            if c.le {
                lhs <= c.r + 1e-7
            } else {
                lhs >= c.r - 1e-7
            }
        })
    };

    let mut best: Option<(f64, f64, f64)> = None;
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a1, b1, r1) = lines[i];
            let (a2, b2, r2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (r1 * b2 - r2 * b1) / det;
            let y = (a1 * r2 - a2 * r1) / det;
            if feasible(x, y) {
                let obj = cx * x + cy * y;
                if best.is_none_or(|(bo, _, _)| obj < bo) {
                    best = Some((obj, x, y));
                }
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simplex agrees with exhaustive vertex enumeration on boxed 2-D LPs.
    #[test]
    fn simplex_matches_bruteforce_2d(
        cons in proptest::collection::vec(rand_con(), 1..6),
        cx in -2.0..2.0f64,
        cy in -2.0..2.0f64,
    ) {
        let box_hi = 20.0;
        let mut m = Model::new();
        let x = m.add_var(0.0, cx);
        let y = m.add_var(0.0, cy);
        for c in &cons {
            let e = LinExpr::from_terms([(x, c.a), (y, c.b)]);
            m.add_constraint(e, if c.le { Cmp::Le } else { Cmp::Ge }, c.r);
        }
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, box_hi);
        m.add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Le, box_hi);

        let sol = SimplexSolver::new().solve(&m).unwrap();
        match brute_force_2d(&cons, cx, cy, box_hi) {
            Some((obj, _, _)) => {
                prop_assert_eq!(sol.status(), Status::Optimal);
                prop_assert!((sol.objective() - obj).abs() < 1e-5,
                    "simplex {} vs brute force {}", sol.objective(), obj);
                prop_assert!(m.check_feasible(sol.values(), 1e-6).is_ok());
            }
            None => prop_assert_eq!(sol.status(), Status::Infeasible),
        }
    }

    /// Simplex and interior point agree on random covering LPs
    /// (min c'x, A x >= b, A >= 0, c > 0 — always feasible and bounded).
    #[test]
    fn solvers_agree_on_covering_lps(
        n in 2usize..8,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u8..3, 8), 1.0..10.0f64), 1..8),
        costs in proptest::collection::vec(0.5..3.0f64, 8),
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|i| m.add_var(0.0, costs[i])).collect();
        let mut any_row = false;
        for (coefs, rhs) in &rows {
            let e: LinExpr = vars
                .iter()
                .enumerate()
                .filter(|&(i, _)| coefs[i] > 0)
                .map(|(i, &v)| (v, f64::from(coefs[i])))
                .collect();
            if e.terms().is_empty() {
                continue;
            }
            any_row = true;
            m.add_constraint(e, Cmp::Ge, *rhs);
        }
        prop_assume!(any_row);

        let si = SimplexSolver::new().solve(&m).unwrap();
        let ip = InteriorPointSolver::new().solve(&m).unwrap();
        prop_assert!(si.is_optimal() && ip.is_optimal());
        let scale = 1.0 + si.objective().abs();
        prop_assert!((si.objective() - ip.objective()).abs() / scale < 1e-5,
            "simplex {} vs ipm {}", si.objective(), ip.objective());
        prop_assert!(m.check_feasible(si.values(), 1e-6).is_ok());
        prop_assert!(m.check_feasible(ip.values(), 1e-5).is_ok());
    }

    /// Duals from the simplex always satisfy strong duality on feasible
    /// bounded problems.
    #[test]
    fn simplex_duals_strong_duality(
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u8..3, 5), 1.0..10.0f64), 1..6),
        costs in proptest::collection::vec(0.5..3.0f64, 5),
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..5).map(|i| m.add_var(0.0, costs[i])).collect();
        let mut rhs_all = Vec::new();
        for (coefs, rhs) in &rows {
            let e: LinExpr = vars
                .iter()
                .enumerate()
                .filter(|&(i, _)| coefs[i] > 0)
                .map(|(i, &v)| (v, f64::from(coefs[i])))
                .collect();
            if e.terms().is_empty() {
                continue;
            }
            m.add_constraint(e, Cmp::Ge, *rhs);
            rhs_all.push(*rhs);
        }
        prop_assume!(!rhs_all.is_empty());
        let s = SimplexSolver::new().solve(&m).unwrap();
        prop_assert!(s.is_optimal());
        let duals = s.duals().expect("simplex computes duals");
        let dual_obj: f64 = duals.iter().zip(&rhs_all).map(|(y, b)| y * b).sum();
        let scale = 1.0 + s.objective().abs();
        prop_assert!((dual_obj - s.objective()).abs() / scale < 1e-6,
            "dual {} vs primal {}", dual_obj, s.objective());
        // Dual feasibility for >= rows of a min problem: y >= 0.
        for y in duals {
            prop_assert!(*y >= -1e-7);
        }
    }
}
