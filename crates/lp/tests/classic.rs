//! Classic LP test problems: textbook instances with known optima and
//! known failure modes (cycling, exponential pivot paths, degeneracy).

use lubt_lp::{Cmp, InteriorPointSolver, LinExpr, LpSolve, Model, SimplexSolver, Status};

fn expr(terms: &[(lubt_lp::Var, f64)]) -> LinExpr {
    LinExpr::from_terms(terms.iter().copied())
}

/// Beale's classic cycling example: a degenerate LP on which the plain
/// Dantzig rule cycles forever without anti-cycling. Optimum 0.05 at
/// x = (1/25, 0, 1, 0).
///
/// min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
/// s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
///      0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
///      x6 <= 1
#[test]
fn beale_cycling_example_terminates_at_optimum() {
    let mut m = Model::new();
    let x4 = m.add_var(0.0, -0.75);
    let x5 = m.add_var(0.0, 150.0);
    let x6 = m.add_var(0.0, -0.02);
    let x7 = m.add_var(0.0, 6.0);
    m.add_constraint(
        expr(&[(x4, 0.25), (x5, -60.0), (x6, -1.0 / 25.0), (x7, 9.0)]),
        Cmp::Le,
        0.0,
    );
    m.add_constraint(
        expr(&[(x4, 0.5), (x5, -90.0), (x6, -1.0 / 50.0), (x7, 3.0)]),
        Cmp::Le,
        0.0,
    );
    m.add_constraint(expr(&[(x6, 1.0)]), Cmp::Le, 1.0);
    let s = SimplexSolver::new().solve(&m).unwrap();
    assert_eq!(s.status(), Status::Optimal);
    assert!(
        (s.objective() + 0.05).abs() < 1e-9,
        "objective {}",
        s.objective()
    );
    assert!((s.value(x6) - 1.0).abs() < 1e-9);
}

/// Klee-Minty cube of dimension `n`: max 2^(n-1) x1 + ... + x_n with the
/// distorted cube constraints. Known optimum 5^n (we minimize the
/// negation). The simplex must reach it even if the pivot path is long.
fn klee_minty(n: usize) -> (Model, f64) {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(0.0, -(2.0f64.powi((n - 1 - i) as i32)))) // minimize -c'x
        .collect();
    for i in 0..n {
        let mut terms = Vec::new();
        for (j, &v) in vars.iter().enumerate().take(i) {
            terms.push((v, 2.0f64.powi((i - j + 1) as i32)));
        }
        terms.push((vars[i], 1.0));
        m.add_constraint(
            LinExpr::from_terms(terms),
            Cmp::Le,
            5.0f64.powi(i as i32 + 1),
        );
    }
    (m, -(5.0f64.powi(n as i32)))
}

#[test]
fn klee_minty_cubes_solve_exactly() {
    for n in 2..=7 {
        let (m, opt) = klee_minty(n);
        let s = SimplexSolver::new().solve(&m).unwrap();
        assert_eq!(s.status(), Status::Optimal, "n={n}");
        let rel = (s.objective() - opt).abs() / opt.abs();
        assert!(rel < 1e-9, "n={n}: got {}, want {opt}", s.objective());
    }
}

#[test]
fn klee_minty_interior_point_agrees() {
    // Interior-point methods famously cut through Klee-Minty cubes.
    let (m, opt) = klee_minty(5);
    let s = InteriorPointSolver::new().solve(&m).unwrap();
    let rel = (s.objective() - opt).abs() / opt.abs();
    assert!(rel < 1e-6, "got {}, want {opt}", s.objective());
}

/// Balanced transportation problem (2 suppliers x 3 consumers) with a
/// hand-checked optimum.
///
/// supply: s1 = 20, s2 = 30; demand: d1 = 10, d2 = 25, d3 = 15
/// costs:        d1  d2  d3
///         s1     2   3   1
///         s2     5   4   8
/// Optimal shipping: s1 -> d3 (15), s1 -> d1 (5), s2 -> d1 (5), s2 -> d2 (25)
/// cost = 15*1 + 5*2 + 5*5 + 25*4 = 150.
#[test]
fn transportation_problem() {
    let mut m = Model::new();
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let mut x = Vec::new();
    for row in &costs {
        x.push(row.iter().map(|&c| m.add_var(0.0, c)).collect::<Vec<_>>());
    }
    let supply = [20.0, 30.0];
    let demand = [10.0, 25.0, 15.0];
    for (i, &s) in supply.iter().enumerate() {
        let e = LinExpr::from_terms(x[i].iter().map(|&v| (v, 1.0)));
        m.add_constraint(e, Cmp::Eq, s);
    }
    for (j, &d) in demand.iter().enumerate() {
        let e = LinExpr::from_terms(x.iter().map(|row| (row[j], 1.0)));
        m.add_constraint(e, Cmp::Eq, d);
    }
    let s = SimplexSolver::new().solve(&m).unwrap();
    assert_eq!(s.status(), Status::Optimal);
    assert!(
        (s.objective() - 150.0).abs() < 1e-7,
        "objective {}",
        s.objective()
    );
    // Flow conservation in the solution.
    for (i, &sup) in supply.iter().enumerate() {
        let shipped: f64 = x[i].iter().map(|&v| s.value(v)).sum();
        assert!((shipped - sup).abs() < 1e-7);
    }
    // Interior point agrees.
    let ip = InteriorPointSolver::new().solve(&m).unwrap();
    assert!((ip.objective() - 150.0).abs() < 1e-5);
}

/// A fully degenerate assignment-like LP: many optimal vertices, duplicate
/// rows, zero right-hand sides.
#[test]
fn heavily_degenerate_lp() {
    let mut m = Model::new();
    let n = 6;
    let vars = m.add_vars(n, 0.0, 1.0);
    // x_i - x_{i+1} <= 0 chain (forces x_0 <= ... <= x_{n-1}).
    for w in vars.windows(2) {
        m.add_constraint(expr(&[(w[0], 1.0), (w[1], -1.0)]), Cmp::Le, 0.0);
        // Duplicate each row to stress degeneracy handling.
        m.add_constraint(expr(&[(w[0], 1.0), (w[1], -1.0)]), Cmp::Le, 0.0);
    }
    m.add_constraint(expr(&[(vars[n - 1], 1.0)]), Cmp::Le, 10.0);
    m.add_constraint(expr(&[(vars[0], 1.0)]), Cmp::Ge, 0.0);
    let s = SimplexSolver::new().solve(&m).unwrap();
    assert_eq!(s.status(), Status::Optimal);
    // Everything at the lower bound is optimal: objective 0.
    assert!(s.objective().abs() < 1e-9);
}

/// The dual pair sanity: primal min c'x (Ax >= b) and its reported duals
/// satisfy complementary slackness on a small example.
#[test]
fn complementary_slackness() {
    let mut m = Model::new();
    let x = m.add_var(0.0, 3.0);
    let y = m.add_var(0.0, 2.0);
    m.add_constraint(expr(&[(x, 1.0), (y, 2.0)]), Cmp::Ge, 8.0); // active
    m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 2.0); // slack
    let s = SimplexSolver::new().solve(&m).unwrap();
    let duals = s.duals().unwrap();
    let slack1 = s.value(x) + 2.0 * s.value(y) - 8.0;
    let slack2 = s.value(x) + s.value(y) - 2.0;
    // y_i * slack_i == 0.
    assert!((duals[0] * slack1).abs() < 1e-7);
    assert!((duals[1] * slack2).abs() < 1e-7);
    // The slack row's dual is zero (it is inactive at the optimum).
    assert!(slack2 > 1.0 && duals[1].abs() < 1e-9);
}
