//! Focused coverage of the presolve `Infeasible` path: every way a model
//! can be proven hopeless without a single pivot, plus the boundaries of
//! what the bit-exact reductions deliberately do *not* catch.

use lubt_lp::{presolve, Cmp, LinExpr, LpSolve, Model, Presolved, SimplexSolver, Status, Var};

fn expr(terms: &[(Var, f64)]) -> LinExpr {
    LinExpr::from_terms(terms.iter().copied())
}

#[test]
fn empty_rows_with_unsatisfiable_rhs_are_infeasible() {
    // 0 >= 3
    let mut m = Model::new();
    let _ = m.add_var(0.0, 1.0);
    m.add_constraint(LinExpr::new(), Cmp::Ge, 3.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);

    // 0 <= -2
    let mut m = Model::new();
    let _ = m.add_var(0.0, 1.0);
    m.add_constraint(LinExpr::new(), Cmp::Le, -2.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);

    // 0 == 1
    let mut m = Model::new();
    let _ = m.add_var(0.0, 1.0);
    m.add_constraint(LinExpr::new(), Cmp::Eq, 1.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);
}

#[test]
fn cancelling_terms_reduce_to_an_empty_infeasible_row() {
    // x - x == 2 canonicalizes to 0 == 2.
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0), (x, -1.0)]), Cmp::Eq, 2.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);

    // 2x - x - x >= 0.5 likewise.
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 2.0), (x, -1.0), (x, -1.0)]), Cmp::Ge, 0.5);
    assert_eq!(presolve(&m), Presolved::Infeasible);
}

#[test]
fn contradictory_equalities_survive_term_reordering() {
    // x + y == 4 and y + x == 5 collide after canonical sorting.
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    let y = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 4.0);
    m.add_constraint(expr(&[(y, 1.0), (x, 1.0)]), Cmp::Eq, 5.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);
}

#[test]
fn contradictory_equalities_survive_term_combining() {
    // x == 1 and (0.5x + 0.5x) == 2: identical after combining duplicate
    // terms (0.5 + 0.5 is exact in binary), so the cross-check fires.
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 1.0);
    m.add_constraint(expr(&[(x, 0.5), (x, 0.5)]), Cmp::Eq, 2.0);
    assert_eq!(presolve(&m), Presolved::Infeasible);
}

#[test]
fn nearly_equal_empty_row_rhs_is_tolerated() {
    // 0 == 1e-12 is within the presolve tolerance: dropped, not flagged.
    let mut m = Model::new();
    let _ = m.add_var(0.0, 1.0);
    m.add_constraint(LinExpr::new(), Cmp::Eq, 1e-12);
    match presolve(&m) {
        Presolved::Reduced { rows_removed, .. } => assert_eq!(rows_removed, 1),
        Presolved::Infeasible => panic!("1e-12 should be within tolerance"),
    }
}

#[test]
fn scaled_contradictions_are_left_for_the_solver() {
    // x == 1 and 2x == 4 contradict, but their canonical signatures differ
    // (coefficients 1.0 vs 2.0), so the bit-exact presolve passes them
    // through — and the simplex then certifies infeasibility. This pins
    // down the division of labor between presolve and solver.
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 1.0);
    m.add_constraint(expr(&[(x, 2.0)]), Cmp::Eq, 4.0);
    match presolve(&m) {
        Presolved::Reduced {
            model,
            rows_removed,
        } => {
            assert_eq!(rows_removed, 0);
            assert_eq!(model.num_constraints(), 2);
            let sol = SimplexSolver::new().solve(&model).unwrap();
            assert_eq!(sol.status(), Status::Infeasible);
        }
        Presolved::Infeasible => panic!("bit-exact dedup must not merge scaled rows"),
    }
}

#[test]
fn presolve_verdict_matches_the_simplex_on_the_original_model() {
    // Whenever presolve says Infeasible, the untouched model must agree.
    let build = |rhs: f64| {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, 2.0);
        m.add_constraint(expr(&[(x, 1.0)]), Cmp::Eq, rhs);
        m
    };
    let contradictory = build(3.0);
    assert_eq!(presolve(&contradictory), Presolved::Infeasible);
    let sol = SimplexSolver::new().solve(&contradictory).unwrap();
    assert_eq!(sol.status(), Status::Infeasible);

    let consistent = build(2.0);
    assert!(matches!(
        presolve(&consistent),
        Presolved::Reduced {
            rows_removed: 1,
            ..
        }
    ));
    let sol = SimplexSolver::new().solve(&consistent).unwrap();
    assert_eq!(sol.status(), Status::Optimal);
}
