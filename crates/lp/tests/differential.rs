//! Differential testing of the dense tableau simplex against the sparse
//! revised simplex: on random LPs spanning all three outcomes (optimal,
//! infeasible, unbounded) the two backends must agree on status and — when
//! optimal — on objective to 1e-9, both cold and across incremental
//! session rounds. On a mismatch the failure message carries a
//! first-diverging-pivot diagnostic built from the per-phase pivot
//! counters of both backends.
//!
//! The final property widens the wall to three backends: random
//! tree-structured systems (the LUBT shape — path-delay windows plus
//! pairwise separation rows on a random rooted tree) are expressed both as
//! an explicit LP [`Model`] and as a [`lubt_dp::DpInstance`], and the
//! dense simplex, the revised simplex and the exact DP oracle must agree
//! on status and objective.

use std::sync::Arc;

use lubt_dp::{DpInstance, DpPair, DpSink, DpStatus};
use lubt_lp::{
    Cmp, LinExpr, LpSolve, Model, RevisedSession, RevisedSolver, SimplexSession, SimplexSolver,
    Solution, Status, Var,
};
use lubt_obs::{Recorder, SolveTrace, TraceRecorder};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Integral coefficient grids keep the arithmetic of both backends
/// essentially exact, so a 1e-9 objective comparison is meaningful and
/// status flips at tolerance boundaries cannot occur.
#[derive(Debug, Clone)]
struct RandRow {
    coefs: Vec<i8>,
    le: bool,
    rhs_quarters: i32,
}

impl RandRow {
    /// Rewrites the row into covering shape (`sum |a| x >= max(|b|, 1/4)`),
    /// which keeps a nonnegative-cost LP feasible and bounded.
    fn make_covering(&mut self) {
        for c in &mut self.coefs {
            *c = c.abs();
        }
        self.le = false;
        self.rhs_quarters = self.rhs_quarters.abs().max(1);
    }

    fn expr(&self, vars: &[Var]) -> LinExpr {
        vars.iter()
            .enumerate()
            .filter(|&(i, _)| self.coefs[i] != 0)
            .map(|(i, &v)| (v, f64::from(self.coefs[i])))
            .collect()
    }

    fn cmp(&self) -> Cmp {
        if self.le {
            Cmp::Le
        } else {
            Cmp::Ge
        }
    }

    fn rhs(&self) -> f64 {
        f64::from(self.rhs_quarters) / 4.0
    }
}

fn rand_row(width: usize) -> impl Strategy<Value = RandRow> {
    (
        proptest::collection::vec(-3i8..4, width),
        proptest::bool::ANY,
        -20i32..32,
    )
        .prop_map(|(coefs, le, rhs_quarters)| RandRow {
            coefs,
            le,
            rhs_quarters,
        })
}

fn build(n: usize, costs: &[i8], rows: &[RandRow]) -> (Model, Vec<Var>) {
    let mut m = Model::new();
    let vars: Vec<Var> = (0..n)
        .map(|i| m.add_var(0.0, f64::from(costs[i])))
        .collect();
    for row in rows {
        let e = row.expr(&vars);
        if e.terms().is_empty() {
            continue;
        }
        m.add_constraint(e, row.cmp(), row.rhs());
    }
    (m, vars)
}

/// Solves with both backends under tracing and, when they disagree,
/// renders the counter evidence locating the first pivot at which the two
/// runs can have diverged.
fn solve_both(m: &Model) -> Result<(Solution, Solution), TestCaseError> {
    let dense_rec = Arc::new(TraceRecorder::new());
    let revised_rec = Arc::new(TraceRecorder::new());
    let dense = SimplexSolver::new()
        .with_recorder(dense_rec.clone() as Arc<dyn Recorder>)
        .solve(m)
        .map_err(|e| TestCaseError::Fail(format!("dense: {e}")))?;
    let revised = RevisedSolver::new()
        .with_recorder(revised_rec.clone() as Arc<dyn Recorder>)
        .solve(m)
        .map_err(|e| TestCaseError::Fail(format!("revised: {e}")))?;
    let agree = dense.status() == revised.status()
        && (!dense.is_optimal()
            || (dense.objective() - revised.objective()).abs()
                <= 1e-9 * (1.0 + dense.objective().abs()));
    if agree {
        Ok((dense, revised))
    } else {
        Err(TestCaseError::Fail(divergence_diagnostic(
            &dense,
            &revised,
            &dense_rec.snapshot(),
            &revised_rec.snapshot(),
        )))
    }
}

/// Both pivot sequences are deterministic, so the first divergence is
/// bounded by the point where the per-phase pivot counts stop matching;
/// report that pivot index along with both backends' counter evidence.
fn divergence_diagnostic(
    dense: &Solution,
    revised: &Solution,
    dt: &SolveTrace,
    rt: &SolveTrace,
) -> String {
    let phases = [
        (
            "primal",
            dt.counter("simplex.pivots"),
            rt.counter("lp.pivots"),
        ),
        (
            "dual",
            dt.counter("simplex.dual_pivots"),
            rt.counter("lp.dual_pivots"),
        ),
    ];
    let mut pivot_base = 0u64;
    let mut first = None;
    for (phase, d, r) in phases {
        if d != r && first.is_none() {
            first = Some(format!(
                "first diverging pivot no later than {} (in the {phase} phase: \
                 dense made {d} pivot(s), revised {r})",
                pivot_base + d.min(r) + 1
            ));
        }
        pivot_base += d.min(r);
    }
    let first = first.unwrap_or_else(|| {
        format!(
            "pivot counts agree ({} primal / {} dual): backends diverge in \
             arithmetic, not in the pivot sequence",
            dt.counter("simplex.pivots"),
            dt.counter("simplex.dual_pivots"),
        )
    });
    format!(
        "backends disagree: dense {:?} obj {} ({} iter) vs revised {:?} obj {} ({} iter); {first}; \
         dense degenerate={} bland={}, revised degenerate={} bland={} priced={}",
        dense.status(),
        dense.objective(),
        dense.iterations(),
        revised.status(),
        revised.objective(),
        revised.iterations(),
        dt.counter("simplex.degenerate_pivots"),
        dt.counter("simplex.bland_activations"),
        rt.counter("lp.degenerate_pivots"),
        rt.counter("lp.bland_activations"),
        rt.counter("lp.priced_columns"),
    )
}

/// A random rooted tree system in the LUBT shape: node 0 is the root,
/// `parents[v] < v`, every leaf-ish node carries a quarter-lattice delay
/// window, and sink pairs carry separation rows. Quarter-unit data keeps
/// all three backends exact, so a 1e-9 comparison is meaningful.
#[derive(Debug, Clone)]
struct TreeSystem {
    /// `parents[v]` for `v >= 1`; implicitly `parents[v] < v`.
    parents: Vec<usize>,
    /// Edge weight (quarters) of the edge into node `v`; entry 0 unused.
    weight_q: Vec<i32>,
    /// Per-sink `(node, lower_q, upper_q)` windows.
    windows: Vec<(usize, i32, i32)>,
    /// Pairwise separation `(a, b, dist_q)` rows between sink nodes.
    pairs: Vec<(usize, usize, i32)>,
    /// Nodes whose incoming edge is pinned to zero.
    zero_edges: Vec<usize>,
}

impl TreeSystem {
    fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Edge set (as node indices `>= 1`) of the tree path `a .. b`.
    fn path_edges(&self, a: usize, b: usize) -> Vec<usize> {
        let root_path = |mut v: usize| {
            let mut p = vec![v];
            while v != 0 {
                v = self.parents[v];
                p.push(v);
            }
            p
        };
        let (pa, pb) = (root_path(a), root_path(b));
        // Symmetric difference of the two root paths = the a..b path.
        let mut edges: Vec<usize> = pa
            .iter()
            .filter(|v| !pb.contains(v))
            .chain(pb.iter().filter(|v| !pa.contains(v)))
            .copied()
            .collect();
        edges.sort_unstable();
        edges
    }

    /// The explicit LP over edge-length variables, mirroring exactly the
    /// rows the DP instance implies (Ge only for positive lowers, Le only
    /// for finite uppers — here all uppers are finite).
    fn model(&self) -> Model {
        let mut m = Model::new();
        let vars: Vec<Var> = (0..self.num_nodes())
            .map(|v| {
                // The root's "incoming edge" variable exists only to keep
                // indices aligned with the DP's per-node lengths; it is in
                // no row and carries no cost.
                let cost = if v == 0 {
                    0.0
                } else {
                    f64::from(self.weight_q[v]) / 4.0
                };
                m.add_var(0.0, cost)
            })
            .collect();
        for &z in &self.zero_edges {
            m.add_constraint(
                [(vars[z], 1.0)].into_iter().collect::<LinExpr>(),
                Cmp::Eq,
                0.0,
            );
        }
        for &(node, lower_q, upper_q) in &self.windows {
            let path: LinExpr = self
                .path_edges(0, node)
                .into_iter()
                .map(|v| (vars[v], 1.0))
                .collect();
            if lower_q > 0 {
                m.add_constraint(path.clone(), Cmp::Ge, f64::from(lower_q) / 4.0);
            }
            m.add_constraint(path, Cmp::Le, f64::from(upper_q) / 4.0);
        }
        for &(a, b, dist_q) in &self.pairs {
            let edges = self.path_edges(a, b);
            if edges.is_empty() {
                continue;
            }
            let e: LinExpr = edges.into_iter().map(|v| (vars[v], 1.0)).collect();
            m.add_constraint(e, Cmp::Ge, f64::from(dist_q) / 4.0);
        }
        m
    }

    /// The same system as the DP oracle's plain-data instance.
    fn dp_instance(&self) -> DpInstance {
        DpInstance {
            parents: self.parents.clone(),
            root: 0,
            weights: self
                .weight_q
                .iter()
                .take(self.num_nodes())
                .map(|&w| f64::from(w) / 4.0)
                .collect(),
            zero_edges: self.zero_edges.clone(),
            sinks: self
                .windows
                .iter()
                .map(|&(node, lower_q, upper_q)| DpSink {
                    node,
                    lower: f64::from(lower_q) / 4.0,
                    upper: f64::from(upper_q) / 4.0,
                })
                .collect(),
            pairs: self
                .pairs
                .iter()
                .map(|&(a, b, dist_q)| DpPair {
                    a,
                    b,
                    dist: f64::from(dist_q) / 4.0,
                })
                .collect(),
        }
    }
}

fn tree_system() -> impl Strategy<Value = TreeSystem> {
    (
        // Raw material; prop_map folds it into a valid rooted tree.
        proptest::collection::vec(0u32..u32::MAX, 2..7), // parent picks
        proptest::collection::vec(0i32..9, 7),           // edge weights (quarters)
        proptest::collection::vec((0i32..60, 0i32..40), 7), // windows (lower, width)
        proptest::collection::vec(0i32..30, 24),         // pair separations
        0u32..8,                                         // zero-edge mask over nodes 1..
    )
        .prop_map(|(picks, weight_q, raw_windows, pair_dists, zero_mask)| {
            let n = picks.len() + 1;
            let parents: Vec<usize> = std::iter::once(0)
                .chain(
                    picks
                        .iter()
                        .enumerate()
                        .map(|(i, &p)| (p as usize) % (i + 1)),
                )
                .collect();
            // Sinks are the childless nodes — the LUBT shape.
            let sinks: Vec<usize> = (1..n).filter(|&v| !parents[1..].contains(&v)).collect();
            let windows = sinks
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let (lo, w) = raw_windows[i % raw_windows.len()];
                    (s, lo, lo + w)
                })
                .collect();
            let mut pairs = Vec::new();
            let mut k = 0;
            for i in 0..sinks.len() {
                for j in i + 1..sinks.len() {
                    pairs.push((sinks[i], sinks[j], pair_dists[k % pair_dists.len()]));
                    k += 1;
                }
            }
            let zero_edges = (1..n).filter(|&v| zero_mask >> (v - 1) & 1 == 1).collect();
            TreeSystem {
                parents,
                weight_q,
                windows,
                pairs,
                zero_edges,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random mixed-sense LPs with signed costs naturally span optimal,
    /// infeasible and unbounded outcomes; the backends must agree on all
    /// three.
    #[test]
    fn dense_and_revised_agree_on_random_mixed_lps(
        n in 1usize..6,
        costs in proptest::collection::vec(-3i8..4, 6),
        rows in proptest::collection::vec(rand_row(6), 0..8),
    ) {
        let (m, _) = build(n, &costs, &rows);
        let (dense, revised) = solve_both(&m)?;
        if dense.is_optimal() {
            prop_assert!(m.check_feasible(revised.values(), 1e-6).is_ok());
        }
        prop_assert_eq!(dense.status(), revised.status());
    }

    /// Covering LPs (always optimal) pin the tight 1e-9 objective
    /// agreement on the pure phase-1 + phase-2 path.
    #[test]
    fn dense_and_revised_agree_on_covering_lps(
        n in 2usize..8,
        costs in proptest::collection::vec(1i8..4, 8),
        rows in proptest::collection::vec(rand_row(8), 1..8),
    ) {
        let mut rows = rows;
        for row in &mut rows {
            row.make_covering();
        }
        let (m, _) = build(n, &costs, &rows);
        prop_assume!(m.num_constraints() > 0);
        let (dense, revised) = solve_both(&m)?;
        prop_assert_eq!(dense.status(), Status::Optimal);
        prop_assert_eq!(revised.status(), Status::Optimal);
    }

    /// The incremental sessions must stay in lock-step across separation
    /// rounds: after every batch of appended rows, both report the same
    /// status and (when optimal) objectives within 1e-9.
    #[test]
    fn sessions_agree_across_incremental_rounds(
        n in 2usize..6,
        costs in proptest::collection::vec(1i8..4, 6),
        seed_rows in proptest::collection::vec(rand_row(6), 1..4),
        append_rounds in proptest::collection::vec(
            proptest::collection::vec(rand_row(6), 1..3), 1..4),
    ) {
        // Covering-shaped base keeps the seed optimal so both sessions
        // start growable; appended rows are unrestricted and may drive
        // the model infeasible — in which case both must latch.
        let mut base_rows = seed_rows;
        for row in &mut base_rows {
            row.make_covering();
        }
        let (base, vars) = build(n, &costs, &base_rows);
        prop_assume!(base.num_constraints() > 0);
        let mut dense = SimplexSession::start_with(base.clone(), SimplexSolver::new())
            .map_err(|e| TestCaseError::Fail(format!("dense start: {e}")))?;
        let mut revised = RevisedSession::start_with(base, RevisedSolver::new())
            .map_err(|e| TestCaseError::Fail(format!("revised start: {e}")))?;
        for (round, batch) in append_rounds.iter().enumerate() {
            for row in batch {
                let e = row.expr(&vars);
                if e.terms().is_empty() {
                    continue;
                }
                dense
                    .add_constraint(e.clone(), row.cmp(), row.rhs())
                    .map_err(|e| TestCaseError::Fail(format!("dense add: {e}")))?;
                revised
                    .add_constraint(e, row.cmp(), row.rhs())
                    .map_err(|e| TestCaseError::Fail(format!("revised add: {e}")))?;
            }
            let ds = dense
                .resolve()
                .map_err(|e| TestCaseError::Fail(format!("dense resolve: {e}")))?
                .clone();
            let rs = revised
                .resolve()
                .map_err(|e| TestCaseError::Fail(format!("revised resolve: {e}")))?
                .clone();
            prop_assert_eq!(
                ds.status(),
                rs.status(),
                "round {}: dense {:?} vs revised {:?}",
                round,
                ds.status(),
                rs.status()
            );
            if ds.status() == Status::Optimal {
                prop_assert!(
                    (ds.objective() - rs.objective()).abs()
                        <= 1e-9 * (1.0 + ds.objective().abs()),
                    "round {}: dense obj {} vs revised obj {}",
                    round,
                    ds.objective(),
                    rs.objective()
                );
            }
        }
    }

    /// Tree-structured systems, three ways: the same windows + separation
    /// rows solved by the dense simplex and the revised simplex as an
    /// explicit LP, and by the exact DP oracle from the plain-data
    /// instance. All three must agree on status, and on the objective to
    /// 1e-9 when optimal; the DP's edge lengths must additionally be
    /// feasible for the explicit model.
    #[test]
    fn dense_revised_and_dp_agree_on_tree_systems(sys in tree_system()) {
        let m = sys.model();
        let (dense, _revised) = solve_both(&m)?;
        let dp = lubt_dp::solve(&sys.dp_instance(), 1 << 20)
            .map_err(|e| TestCaseError::Fail(format!("dp: {e}")))?;
        match dp.status {
            DpStatus::Optimal => {
                prop_assert_eq!(
                    dense.status(),
                    Status::Optimal,
                    "LP says {:?}, exact DP says optimal (obj {})",
                    dense.status(),
                    dp.objective
                );
                prop_assert!(
                    (dense.objective() - dp.objective).abs()
                        <= 1e-9 * (1.0 + dense.objective().abs()),
                    "LP obj {} vs exact DP obj {} on {:?}",
                    dense.objective(),
                    dp.objective,
                    sys
                );
                prop_assert!(
                    m.check_feasible(&dp.lengths, 1e-6).is_ok(),
                    "DP lengths violate the explicit model: {:?}",
                    dp.lengths
                );
            }
            DpStatus::Infeasible => {
                prop_assert_eq!(
                    dense.status(),
                    Status::Infeasible,
                    "LP says {:?}, exact DP says infeasible",
                    dense.status()
                );
            }
        }
    }
}
