//! Differential testing of the dense tableau simplex against the sparse
//! revised simplex: on random LPs spanning all three outcomes (optimal,
//! infeasible, unbounded) the two backends must agree on status and — when
//! optimal — on objective to 1e-9, both cold and across incremental
//! session rounds. On a mismatch the failure message carries a
//! first-diverging-pivot diagnostic built from the per-phase pivot
//! counters of both backends.

use std::sync::Arc;

use lubt_lp::{
    Cmp, LinExpr, LpSolve, Model, RevisedSession, RevisedSolver, SimplexSession, SimplexSolver,
    Solution, Status, Var,
};
use lubt_obs::{Recorder, SolveTrace, TraceRecorder};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Integral coefficient grids keep the arithmetic of both backends
/// essentially exact, so a 1e-9 objective comparison is meaningful and
/// status flips at tolerance boundaries cannot occur.
#[derive(Debug, Clone)]
struct RandRow {
    coefs: Vec<i8>,
    le: bool,
    rhs_quarters: i32,
}

impl RandRow {
    /// Rewrites the row into covering shape (`sum |a| x >= max(|b|, 1/4)`),
    /// which keeps a nonnegative-cost LP feasible and bounded.
    fn make_covering(&mut self) {
        for c in &mut self.coefs {
            *c = c.abs();
        }
        self.le = false;
        self.rhs_quarters = self.rhs_quarters.abs().max(1);
    }

    fn expr(&self, vars: &[Var]) -> LinExpr {
        vars.iter()
            .enumerate()
            .filter(|&(i, _)| self.coefs[i] != 0)
            .map(|(i, &v)| (v, f64::from(self.coefs[i])))
            .collect()
    }

    fn cmp(&self) -> Cmp {
        if self.le {
            Cmp::Le
        } else {
            Cmp::Ge
        }
    }

    fn rhs(&self) -> f64 {
        f64::from(self.rhs_quarters) / 4.0
    }
}

fn rand_row(width: usize) -> impl Strategy<Value = RandRow> {
    (
        proptest::collection::vec(-3i8..4, width),
        proptest::bool::ANY,
        -20i32..32,
    )
        .prop_map(|(coefs, le, rhs_quarters)| RandRow {
            coefs,
            le,
            rhs_quarters,
        })
}

fn build(n: usize, costs: &[i8], rows: &[RandRow]) -> (Model, Vec<Var>) {
    let mut m = Model::new();
    let vars: Vec<Var> = (0..n)
        .map(|i| m.add_var(0.0, f64::from(costs[i])))
        .collect();
    for row in rows {
        let e = row.expr(&vars);
        if e.terms().is_empty() {
            continue;
        }
        m.add_constraint(e, row.cmp(), row.rhs());
    }
    (m, vars)
}

/// Solves with both backends under tracing and, when they disagree,
/// renders the counter evidence locating the first pivot at which the two
/// runs can have diverged.
fn solve_both(m: &Model) -> Result<(Solution, Solution), TestCaseError> {
    let dense_rec = Arc::new(TraceRecorder::new());
    let revised_rec = Arc::new(TraceRecorder::new());
    let dense = SimplexSolver::new()
        .with_recorder(dense_rec.clone() as Arc<dyn Recorder>)
        .solve(m)
        .map_err(|e| TestCaseError::Fail(format!("dense: {e}")))?;
    let revised = RevisedSolver::new()
        .with_recorder(revised_rec.clone() as Arc<dyn Recorder>)
        .solve(m)
        .map_err(|e| TestCaseError::Fail(format!("revised: {e}")))?;
    let agree = dense.status() == revised.status()
        && (!dense.is_optimal()
            || (dense.objective() - revised.objective()).abs()
                <= 1e-9 * (1.0 + dense.objective().abs()));
    if agree {
        Ok((dense, revised))
    } else {
        Err(TestCaseError::Fail(divergence_diagnostic(
            &dense,
            &revised,
            &dense_rec.snapshot(),
            &revised_rec.snapshot(),
        )))
    }
}

/// Both pivot sequences are deterministic, so the first divergence is
/// bounded by the point where the per-phase pivot counts stop matching;
/// report that pivot index along with both backends' counter evidence.
fn divergence_diagnostic(
    dense: &Solution,
    revised: &Solution,
    dt: &SolveTrace,
    rt: &SolveTrace,
) -> String {
    let phases = [
        (
            "primal",
            dt.counter("simplex.pivots"),
            rt.counter("lp.pivots"),
        ),
        (
            "dual",
            dt.counter("simplex.dual_pivots"),
            rt.counter("lp.dual_pivots"),
        ),
    ];
    let mut pivot_base = 0u64;
    let mut first = None;
    for (phase, d, r) in phases {
        if d != r && first.is_none() {
            first = Some(format!(
                "first diverging pivot no later than {} (in the {phase} phase: \
                 dense made {d} pivot(s), revised {r})",
                pivot_base + d.min(r) + 1
            ));
        }
        pivot_base += d.min(r);
    }
    let first = first.unwrap_or_else(|| {
        format!(
            "pivot counts agree ({} primal / {} dual): backends diverge in \
             arithmetic, not in the pivot sequence",
            dt.counter("simplex.pivots"),
            dt.counter("simplex.dual_pivots"),
        )
    });
    format!(
        "backends disagree: dense {:?} obj {} ({} iter) vs revised {:?} obj {} ({} iter); {first}; \
         dense degenerate={} bland={}, revised degenerate={} bland={} priced={}",
        dense.status(),
        dense.objective(),
        dense.iterations(),
        revised.status(),
        revised.objective(),
        revised.iterations(),
        dt.counter("simplex.degenerate_pivots"),
        dt.counter("simplex.bland_activations"),
        rt.counter("lp.degenerate_pivots"),
        rt.counter("lp.bland_activations"),
        rt.counter("lp.priced_columns"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random mixed-sense LPs with signed costs naturally span optimal,
    /// infeasible and unbounded outcomes; the backends must agree on all
    /// three.
    #[test]
    fn dense_and_revised_agree_on_random_mixed_lps(
        n in 1usize..6,
        costs in proptest::collection::vec(-3i8..4, 6),
        rows in proptest::collection::vec(rand_row(6), 0..8),
    ) {
        let (m, _) = build(n, &costs, &rows);
        let (dense, revised) = solve_both(&m)?;
        if dense.is_optimal() {
            prop_assert!(m.check_feasible(revised.values(), 1e-6).is_ok());
        }
        prop_assert_eq!(dense.status(), revised.status());
    }

    /// Covering LPs (always optimal) pin the tight 1e-9 objective
    /// agreement on the pure phase-1 + phase-2 path.
    #[test]
    fn dense_and_revised_agree_on_covering_lps(
        n in 2usize..8,
        costs in proptest::collection::vec(1i8..4, 8),
        rows in proptest::collection::vec(rand_row(8), 1..8),
    ) {
        let mut rows = rows;
        for row in &mut rows {
            row.make_covering();
        }
        let (m, _) = build(n, &costs, &rows);
        prop_assume!(m.num_constraints() > 0);
        let (dense, revised) = solve_both(&m)?;
        prop_assert_eq!(dense.status(), Status::Optimal);
        prop_assert_eq!(revised.status(), Status::Optimal);
    }

    /// The incremental sessions must stay in lock-step across separation
    /// rounds: after every batch of appended rows, both report the same
    /// status and (when optimal) objectives within 1e-9.
    #[test]
    fn sessions_agree_across_incremental_rounds(
        n in 2usize..6,
        costs in proptest::collection::vec(1i8..4, 6),
        seed_rows in proptest::collection::vec(rand_row(6), 1..4),
        append_rounds in proptest::collection::vec(
            proptest::collection::vec(rand_row(6), 1..3), 1..4),
    ) {
        // Covering-shaped base keeps the seed optimal so both sessions
        // start growable; appended rows are unrestricted and may drive
        // the model infeasible — in which case both must latch.
        let mut base_rows = seed_rows;
        for row in &mut base_rows {
            row.make_covering();
        }
        let (base, vars) = build(n, &costs, &base_rows);
        prop_assume!(base.num_constraints() > 0);
        let mut dense = SimplexSession::start_with(base.clone(), SimplexSolver::new())
            .map_err(|e| TestCaseError::Fail(format!("dense start: {e}")))?;
        let mut revised = RevisedSession::start_with(base, RevisedSolver::new())
            .map_err(|e| TestCaseError::Fail(format!("revised start: {e}")))?;
        for (round, batch) in append_rounds.iter().enumerate() {
            for row in batch {
                let e = row.expr(&vars);
                if e.terms().is_empty() {
                    continue;
                }
                dense
                    .add_constraint(e.clone(), row.cmp(), row.rhs())
                    .map_err(|e| TestCaseError::Fail(format!("dense add: {e}")))?;
                revised
                    .add_constraint(e, row.cmp(), row.rhs())
                    .map_err(|e| TestCaseError::Fail(format!("revised add: {e}")))?;
            }
            let ds = dense
                .resolve()
                .map_err(|e| TestCaseError::Fail(format!("dense resolve: {e}")))?
                .clone();
            let rs = revised
                .resolve()
                .map_err(|e| TestCaseError::Fail(format!("revised resolve: {e}")))?
                .clone();
            prop_assert_eq!(
                ds.status(),
                rs.status(),
                "round {}: dense {:?} vs revised {:?}",
                round,
                ds.status(),
                rs.status()
            );
            if ds.status() == Status::Optimal {
                prop_assert!(
                    (ds.objective() - rs.objective()).abs()
                        <= 1e-9 * (1.0 + ds.objective().abs()),
                    "round {}: dense obj {} vs revised obj {}",
                    round,
                    ds.objective(),
                    rs.objective()
                );
            }
        }
    }
}
