//! Warm-started dual-simplex re-solves: correctness against cold solves on
//! growing models (the lazy-separation pattern).

use lubt_lp::{Cmp, LinExpr, LpSolve, Model, SimplexSolver, Status};

fn expr(terms: &[(lubt_lp::Var, f64)]) -> LinExpr {
    LinExpr::from_terms(terms.iter().copied())
}

#[test]
fn warm_resolve_matches_cold_on_growing_model() {
    // Covering LP grown one row at a time.
    let mut m = Model::new();
    let n = 6;
    let vars = m.add_vars(n, 0.0, 1.0);
    m.add_constraint(
        LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
        Cmp::Ge,
        10.0,
    );
    let solver = SimplexSolver::new();
    let (sol, mut warm) = solver.solve_warm(&m, None).unwrap();
    assert_eq!(sol.status(), Status::Optimal);

    // Append rows; re-solve warm and cold; compare.
    let rows: &[(&[usize], f64)] = &[
        (&[0, 1], 5.0),
        (&[2, 3, 4], 7.0),
        (&[0, 5], 4.0),
        (&[1, 2], 6.0),
        (&[3, 5], 9.0),
    ];
    for (idx, &(cols, rhs)) in rows.iter().enumerate() {
        let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
        m.add_constraint(e, Cmp::Ge, rhs);
        let (warm_sol, next) = solver.solve_warm(&m, warm.as_ref()).unwrap();
        let cold_sol = solver.solve(&m).unwrap();
        assert_eq!(warm_sol.status(), Status::Optimal, "row {idx}");
        assert!(
            (warm_sol.objective() - cold_sol.objective()).abs() < 1e-7,
            "row {idx}: warm {} vs cold {}",
            warm_sol.objective(),
            cold_sol.objective()
        );
        assert!(
            m.check_feasible(warm_sol.values(), 1e-6).is_ok(),
            "row {idx}"
        );
        // Warm restarts should be much cheaper than the cold solve once
        // the model has some size (not asserted strictly — just recorded
        // via iteration counts staying small).
        assert!(
            warm_sol.iterations() <= cold_sol.iterations() + 5,
            "row {idx}"
        );
        warm = next;
        assert!(warm.is_some(), "row {idx}: basis should stay reusable");
    }
}

#[test]
fn warm_detects_infeasibility_of_appended_row() {
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0)]), Cmp::Le, 3.0);
    let solver = SimplexSolver::new();
    let (_, warm) = solver.solve_warm(&m, None).unwrap();
    // Contradicts the first row.
    m.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
    let (sol, _) = solver.solve_warm(&m, warm.as_ref()).unwrap();
    assert_eq!(sol.status(), Status::Infeasible);
}

#[test]
fn mismatched_token_falls_back_to_cold() {
    let mut m1 = Model::new();
    let x = m1.add_var(0.0, 1.0);
    m1.add_constraint(expr(&[(x, 1.0)]), Cmp::Ge, 2.0);
    let solver = SimplexSolver::new();
    let (_, warm) = solver.solve_warm(&m1, None).unwrap();

    // Different variable count: token must be ignored, not misapplied.
    let mut m2 = Model::new();
    let a = m2.add_var(0.0, 1.0);
    let b = m2.add_var(0.0, 1.0);
    m2.add_constraint(expr(&[(a, 1.0), (b, 1.0)]), Cmp::Ge, 3.0);
    let (sol, _) = solver.solve_warm(&m2, warm.as_ref()).unwrap();
    assert_eq!(sol.status(), Status::Optimal);
    assert!((sol.objective() - 3.0).abs() < 1e-7);
}

#[test]
fn appended_equality_rows_fall_back_cleanly() {
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    let y = m.add_var(0.0, 1.0);
    m.add_constraint(expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 2.0);
    let solver = SimplexSolver::new();
    let (_, warm) = solver.solve_warm(&m, None).unwrap();
    m.add_constraint(expr(&[(x, 1.0), (y, -1.0)]), Cmp::Eq, 1.0);
    let (sol, _) = solver.solve_warm(&m, warm.as_ref()).unwrap();
    assert_eq!(sol.status(), Status::Optimal);
    // x + y = 2, x - y = 1 -> x = 1.5, y = 0.5.
    assert!((sol.value(x) - 1.5).abs() < 1e-7);
    assert!((sol.value(y) - 0.5).abs() < 1e-7);
}

#[test]
fn unchanged_model_resolves_in_zero_pivots() {
    let mut m = Model::new();
    let vars = m.add_vars(4, 0.0, 1.0);
    m.add_constraint(
        LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
        Cmp::Ge,
        8.0,
    );
    let solver = SimplexSolver::new();
    let (_, warm) = solver.solve_warm(&m, None).unwrap();
    let (sol, _) = solver.solve_warm(&m, warm.as_ref()).unwrap();
    assert_eq!(sol.iterations(), 0, "old optimum must be recognized");
    assert!((sol.objective() - 8.0).abs() < 1e-7);
}
