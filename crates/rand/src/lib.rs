//! Workspace-local stand-in for the tiny slice of the `rand` crate that
//! LUBT uses: a seedable deterministic generator and `gen_range` over
//! half-open numeric ranges.
//!
//! The build environment is fully offline, so third-party crates cannot be
//! fetched; this shim keeps the public call sites (`StdRng::seed_from_u64`,
//! `rng.gen_range(a..b)`) source-compatible. Streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on determinism
//! per seed, not on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of `u64` randomness.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Value;
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Value;
}

impl SampleRange for Range<f64> {
    type Value = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against floating-point rounding landing exactly on `end`.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Value = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Value = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i32, i64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Value
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (0.0..1.0).sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: SplitMix64 seeding into a
    /// xorshift64* stream. Fast, tiny state, adequate for test-instance
    /// synthesis (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One SplitMix64 round decorrelates small consecutive seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..10.0), b.gen_range(0.0..10.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        let alike = (0..32).filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(alike.count() < 32, "different seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&f));
            let u = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let b = rng.gen_range(0u8..3);
            assert!(b < 3);
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
