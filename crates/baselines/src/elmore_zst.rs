//! Exact zero-skew clock routing under the **Elmore delay model** — Tsay's
//! algorithm (ICCAD'91), the paper's reference \[4\] and the historical
//! anchor of the whole DME family.
//!
//! Bottom-up, every cluster carries its merging region (a TRR), its total
//! subtree capacitance and the common Elmore delay from the region to every
//! sink below it. Merging two clusters along a wire of length `d` splits
//! the wire at the point where the two sides' Elmore delays balance — a
//! closed-form quadratic (`x` below). When no split point exists inside
//! the wire, the fast side's branch is *elongated* (snaked) by the positive
//! root of the balance quadratic, exactly as in Tsay's paper. Top-down
//! placement reuses the shared DME embedder.

use lubt_core::{embed_tree, LubtError, PlacementPolicy};
use lubt_delay::elmore::{node_delays, ElmoreParams};
use lubt_delay::linear::tree_cost;
use lubt_geom::{Point, Trr};
use lubt_topology::{nearest_neighbor_topology, NodeId, SourceMode, Topology};

/// A constructed Elmore zero-skew tree.
#[derive(Debug, Clone)]
pub struct ElmoreZst {
    /// The (generated or supplied) topology.
    pub topology: Topology,
    /// Edge lengths (indexed by node, entry 0 unused).
    pub edge_lengths: Vec<f64>,
    /// Node placements.
    pub positions: Vec<Point>,
    /// The common sink delay (Elmore units).
    pub delay: f64,
    /// The electrical parameters used.
    pub params: ElmoreParams,
}

impl ElmoreZst {
    /// Total wirelength.
    pub fn cost(&self) -> f64 {
        tree_cost(&self.edge_lengths)
    }

    /// Recomputed Elmore skew (should be ~0; exposed for assertions).
    pub fn skew(&self) -> f64 {
        let d = node_delays(&self.topology, &self.edge_lengths, &self.params);
        lubt_delay::skew::skew(&self.topology, &d)
    }
}

/// Balance split for a wire of length `d` joining cluster `a`
/// (delay `ta`, cap `ca`) and cluster `b`: returns `(ea, eb)` with
/// `ea + eb = d` when an interior balance point exists, or an elongated
/// pair otherwise.
fn elmore_split(ta: f64, ca: f64, tb: f64, cb: f64, d: f64, params: &ElmoreParams) -> (f64, f64) {
    let (r, c) = (params.r_w, params.c_w);
    // Balance: ta + r x (c x / 2 + ca) = tb + r (d-x) (c (d-x) / 2 + cb).
    let denom = r * (c * d + ca + cb);
    if denom > 0.0 {
        let x = ((r * c / 2.0) * d * d + r * cb * d + (tb - ta)) / denom;
        if (0.0..=d).contains(&x) {
            return (x, d - x);
        }
        if x < 0.0 {
            // `a` is already slower at its own region: put the whole wire
            // on b's side and elongate b until the delays meet.
            return (0.0, elongation(tb, cb, ta, params).max(d));
        }
        // Symmetric.
        return (elongation(ta, ca, tb, params).max(d), 0.0);
    }
    // Zero-resistance or zero-capacitance degenerate cases: split evenly.
    (d / 2.0, d / 2.0)
}

/// Wire length `e` with `t_fast + r e (c e / 2 + cap) = t_slow`
/// (`t_slow >= t_fast`): the snaking length that delays the fast side to
/// match.
fn elongation(t_fast: f64, cap: f64, t_slow: f64, params: &ElmoreParams) -> f64 {
    let (r, c) = (params.r_w, params.c_w);
    let need = (t_slow - t_fast).max(0.0);
    if need == 0.0 {
        return 0.0;
    }
    if r == 0.0 {
        return 0.0; // no resistance: wire adds no delay; nothing to do
    }
    if c == 0.0 {
        // Linear in e: r e cap = need.
        return if cap > 0.0 { need / (r * cap) } else { 0.0 };
    }
    // (rc/2) e^2 + r cap e - need = 0, positive root.
    let disc = (r * cap) * (r * cap) + 2.0 * r * c * need;
    (-r * cap + disc.sqrt()) / (r * c)
}

/// Builds an exact zero-skew tree under the Elmore model.
///
/// * `topology` — optional explicit binary topology; nearest-neighbor merge
///   otherwise.
///
/// # Errors
///
/// Propagates [`LubtError`] for invalid topologies or failed embeddings.
///
/// # Panics
///
/// Panics when `sinks` is empty.
///
/// # Example
///
/// ```
/// use lubt_baselines::elmore_zero_skew_tree;
/// use lubt_delay::ElmoreParams;
/// use lubt_geom::Point;
/// let sinks = [Point::new(0.0, 0.0), Point::new(20.0, 4.0), Point::new(8.0, 16.0)];
/// let params = ElmoreParams::uniform(0.1, 0.2, 1.0, 3);
/// let zst = elmore_zero_skew_tree(&sinks, Some(Point::new(10.0, 8.0)), None, params)?;
/// assert!(zst.skew() < 1e-9 * (1.0 + zst.delay));
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn elmore_zero_skew_tree(
    sinks: &[Point],
    source: Option<Point>,
    topology: Option<Topology>,
    params: ElmoreParams,
) -> Result<ElmoreZst, LubtError> {
    assert!(!sinks.is_empty(), "need at least one sink");
    let mode = if source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    let topology = topology.unwrap_or_else(|| nearest_neighbor_topology(sinks, mode));
    if !topology.is_binary(mode) {
        return Err(LubtError::Input(
            "Elmore zero-skew merging requires a binary topology".to_string(),
        ));
    }
    if sinks.len() != topology.num_sinks() {
        return Err(LubtError::Input(format!(
            "{} sink locations for {} topology sinks",
            sinks.len(),
            topology.num_sinks()
        )));
    }

    let n = topology.num_nodes();
    let mut region: Vec<Option<Trr>> = vec![None; n];
    let mut delay = vec![0.0f64; n];
    let mut cap = vec![0.0f64; n];
    let mut lengths = vec![0.0f64; n];

    for v in topology.postorder() {
        let vi = v.index();
        if topology.is_sink(v) {
            region[vi] = Some(Trr::from_point(sinks[vi - 1]));
            cap[vi] = params.sink_caps.get(vi - 1).copied().unwrap_or(0.0);
            continue;
        }
        let kids: Vec<NodeId> = topology.children(v).collect();
        if kids.len() != 2 {
            continue; // the Given-mode root (single child), handled below
        }
        let (a, b) = (kids[0], kids[1]);
        let (ra, rb) = (
            region[a.index()].expect("postorder"),
            region[b.index()].expect("postorder"),
        );
        let d = ra.dist(&rb);
        let (ea, eb) = elmore_split(
            delay[a.index()],
            cap[a.index()],
            delay[b.index()],
            cap[b.index()],
            d,
            &params,
        );
        lengths[a.index()] = ea;
        lengths[b.index()] = eb;
        let merged = ra
            .expanded(ea)
            .intersect(&rb.expanded(eb))
            .or_else(|| {
                let s = 1e-9 * (1.0 + d.abs());
                ra.expanded(ea + s).intersect(&rb.expanded(eb + s))
            })
            .ok_or(LubtError::Embedding { node: vi })?;
        region[vi] = Some(merged);
        cap[vi] = cap[a.index()] + cap[b.index()] + params.c_w * (ea + eb);
        delay[vi] = delay[a.index()] + params.r_w * ea * (params.c_w * ea / 2.0 + cap[a.index()]);
        debug_assert!(
            (delay[vi]
                - (delay[b.index()] + params.r_w * eb * (params.c_w * eb / 2.0 + cap[b.index()])))
            .abs()
                < 1e-6 * (1.0 + delay[vi]),
            "merge at s{vi} is unbalanced"
        );
    }

    // Root treatment: with a pinned source, the root edge adds the same
    // Elmore delay to every sink (zero skew preserved).
    let realized = match source {
        Some(s0) => {
            let c0 = topology
                .children(topology.root())
                .next()
                .expect("Given-mode root has one child");
            let rc = region[c0.index()].expect("computed");
            let e = rc.dist_to_point(s0);
            lengths[c0.index()] = e;
            delay[c0.index()] + params.r_w * e * (params.c_w * e / 2.0 + cap[c0.index()])
        }
        None => delay[0],
    };

    let positions = embed_tree(
        &topology,
        sinks,
        source,
        &lengths,
        PlacementPolicy::ClosestToParent,
    )?;
    Ok(ElmoreZst {
        topology,
        edge_lengths: lengths,
        positions,
        delay: realized,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = ((i * 89 + seed as usize * 113) % 211) as f64;
                let b = ((i * 47 + seed as usize * 59) % 193) as f64;
                Point::new(a, b)
            })
            .collect()
    }

    #[test]
    fn two_sinks_balance_toward_the_heavier_load() {
        // Equal geometry, unequal loads: the merge point shifts toward the
        // heavier sink (more wire on the light side).
        let sinks = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let mut params = ElmoreParams::uniform(1.0, 1.0, 1.0, 2);
        params.sink_caps[1] = 10.0; // sink 2 is heavy
        let zst = elmore_zero_skew_tree(&sinks, Some(Point::new(5.0, 5.0)), None, params).unwrap();
        assert!(zst.skew() < 1e-9 * (1.0 + zst.delay), "skew {}", zst.skew());
        // Wire toward the light sink 1 is longer than toward heavy sink 2.
        assert!(
            zst.edge_lengths[1] > zst.edge_lengths[2],
            "e1 {} vs e2 {}",
            zst.edge_lengths[1],
            zst.edge_lengths[2]
        );
    }

    #[test]
    fn zero_elmore_skew_across_random_instances() {
        for seed in 0..4u64 {
            let sinks = scatter(14, seed);
            let params = ElmoreParams::uniform(0.05, 0.3, 1.5, 14);
            let zst = elmore_zero_skew_tree(&sinks, None, None, params).unwrap();
            let rel = zst.skew() / (1.0 + zst.delay);
            assert!(rel < 1e-9, "seed {seed}: relative skew {rel}");
            // Edges realizable.
            for (c, p) in zst.topology.edges() {
                let d = zst.positions[c.index()].dist(zst.positions[p.index()]);
                assert!(d <= zst.edge_lengths[c.index()] + 1e-6);
            }
        }
    }

    #[test]
    fn elongation_branch_balances_unequal_depths() {
        // Nested topology with a far pair and a near sink: the near sink's
        // branch must snake.
        let sinks = [
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(30.0, 1.0),
        ];
        let params = ElmoreParams::uniform(0.2, 0.5, 1.0, 3);
        let topo = Topology::from_parents(3, &[0, 4, 4, 5, 5, 0]).unwrap();
        let zst = elmore_zero_skew_tree(&sinks, Some(Point::new(30.0, 10.0)), Some(topo), params)
            .unwrap();
        assert!(zst.skew() < 1e-6 * (1.0 + zst.delay), "skew {}", zst.skew());
        // Sink 3's edge is elongated beyond its geometric span.
        let span = zst.positions[3].dist(zst.positions[5]);
        assert!(zst.edge_lengths[3] > span + 1.0, "no snaking happened");
    }

    #[test]
    fn quadratic_elongation_formula() {
        let params = ElmoreParams::uniform(2.0, 3.0, 0.0, 0);
        // Solve for e, then substitute back.
        let (t_fast, cap, t_slow) = (1.0, 4.0, 25.0);
        let e = elongation(t_fast, cap, t_slow, &params);
        let realized = t_fast + params.r_w * e * (params.c_w * e / 2.0 + cap);
        assert!((realized - t_slow).abs() < 1e-9);
        assert_eq!(elongation(5.0, 1.0, 5.0, &params), 0.0);
    }

    #[test]
    fn elmore_and_linear_zst_differ_under_load() {
        // With heavy unequal loads the Elmore balance point departs from
        // the wirelength midpoint, so the trees differ.
        let sinks = [Point::new(0.0, 0.0), Point::new(20.0, 0.0)];
        let mut params = ElmoreParams::uniform(1.0, 0.5, 0.1, 2);
        params.sink_caps[0] = 20.0;
        let e = elmore_zero_skew_tree(&sinks, Some(Point::new(10.0, 10.0)), None, params).unwrap();
        let l = crate::zero_skew_tree(&sinks, Some(Point::new(10.0, 10.0)), None, None).unwrap();
        // Linear splits 10/10; Elmore favors the loaded sink.
        assert!((l.edge_lengths[1] - 10.0).abs() < 1e-9);
        assert!(e.edge_lengths[1] < 10.0 - 1e-3, "e1 {}", e.edge_lengths[1]);
    }
}
