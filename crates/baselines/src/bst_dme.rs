//! Bounded-Skew Tree construction (linear delay), standing in for the
//! paper's comparator \[9\] (Huang-Kahng-Tsao, DAC'95).
//!
//! Bottom-up nearest-neighbor merging over **octilinear merging regions**.
//! Each cluster carries a region `R` and a delay window `[lo, hi]` with the
//! invariant: *rooted at any point of `R`, the subtree can be completed so
//! that every sink delay falls in `[lo, hi]`*, and `hi - lo <= B`.
//!
//! A merge is parameterized by the split difference `x = e_a - e_b`. The
//! skew budget admits `x` in an interval; instead of committing to a single
//! `x` (which would collapse the merged region to a thin zero-skew-style
//! segment), the construction keeps a **window** `[x1, x2]` of splits whose
//! width is charged against the leftover skew slack `B - width`. The merged
//! region is the correspondingly *fattened* intersection
//! `R_a.exp((d+x2)/2) ∩ R_b.exp((d-x1)/2)`, clipped to the children's x/y
//! **corridor** (only points on genuine shortest connections defer real
//! choices) — larger regions make later merges shorter, which is exactly
//! how a skew budget buys wirelength (the mechanism behind the falling
//! cost column of Table 1). With `B = 0` the window degenerates and the
//! construction reduces to zero-skew DME; with `B = inf` it approaches a
//! greedy Steiner heuristic. Merge *ordering* uses balanced representative
//! points (the same rule as the nearest-neighbor topology generator), so
//! the topology stays comparable across budgets.
//!
//! Top-down, join points are seeded at their balanced representatives
//! (projected into the feasible region ∩ parent reach ball), refined by a
//! few sweeps toward the component-wise median of their tree neighbors,
//! and edges are realized *tight* (elongation floors are kept only where a
//! delay-gap detour was unavoidable) — so the realized skew respects the
//! budget by the invariant above while the wirelength converges toward the
//! regions' optimum.

use lubt_core::LubtError;
use lubt_delay::linear::{node_delays, tree_cost};
use lubt_geom::{Octilinear, Point};
use lubt_topology::{MergeTreeBuilder, SourceMode, Topology};

/// A constructed bounded-skew tree.
#[derive(Debug, Clone)]
pub struct BstTree {
    /// The merge topology the construction chose (feed this to the EBF for
    /// the Table 1 protocol).
    pub topology: Topology,
    /// Edge lengths (indexed by node, entry 0 unused).
    pub edge_lengths: Vec<f64>,
    /// Node placements.
    pub positions: Vec<Point>,
    /// The skew budget the construction honored.
    pub skew_bound: f64,
}

impl BstTree {
    /// Total wirelength.
    pub fn cost(&self) -> f64 {
        tree_cost(&self.edge_lengths)
    }

    /// `(shortest, longest)` realized sink delay — the window the Table 1
    /// protocol hands to the EBF as `[l, u]`.
    pub fn delay_range(&self) -> (f64, f64) {
        let d = node_delays(&self.topology, &self.edge_lengths);
        lubt_delay::skew::delay_range(&self.topology, &d)
    }

    /// Realized skew (`<= skew_bound` by construction).
    pub fn skew(&self) -> f64 {
        let (lo, hi) = self.delay_range();
        hi - lo
    }
}

#[derive(Clone)]
struct Cluster {
    handle: lubt_topology::ClusterId,
    region: Octilinear,
    lo: f64,
    hi: f64,
    /// Balanced representative point, used only for the merge *ordering*:
    /// fattened regions of far-apart clusters can overlap, so region
    /// distance is a degenerate ordering metric, while representative
    /// points keep the topology stable across skew budgets (making the
    /// Table 1 cost columns comparable).
    rep: Point,
    /// Linear-delay depth of the representative (drives rep balancing,
    /// exactly as in the nearest-neighbor topology generator).
    rep_delay: f64,
}

impl Cluster {
    fn handle_index(&self) -> usize {
        self.handle.index()
    }
}

/// Outcome of the split computation for one merge.
struct Split {
    /// Expansion radius on the `a` side: `(d + x2) / 2` (or the elongated
    /// `e_a` when a detour was forced).
    reach_a: f64,
    /// Expansion radius on the `b` side.
    reach_b: f64,
    /// Elongation floor for `a`'s edge (0 unless a detour was forced).
    floor_a: f64,
    /// Elongation floor for `b`'s edge.
    floor_b: f64,
    /// Merged delay window.
    lo: f64,
    hi: f64,
}

/// Chooses the split window for merging `a` and `b` at region distance `d`
/// under skew budget `B`. See the module docs for the derivation.
fn split_window(a: &Cluster, b: &Cluster, d: f64, skew_bound: f64) -> Split {
    // Hard constraints on x = e_a - e_b from the skew budget:
    //   (a.hi + e_a) - (b.lo + e_b) <= B  =>  x <= p
    //   (b.hi + e_b) - (a.lo + e_a) <= B  =>  x >= -q
    let p = skew_bound - a.hi + b.lo;
    let q = skew_bound - b.hi + a.lo;

    if -q > p {
        // Numerically emptied window (float accumulation on the invariant
        // p + q = 2B - wa - wb >= 0): least-violating midpoint, no spread.
        let x = (p - q) / 2.0;
        let total = d.max(x.abs());
        let (ea, eb) = ((total + x) / 2.0, (total - x) / 2.0);
        return Split {
            reach_a: ea,
            reach_b: eb,
            floor_a: ea,
            floor_b: eb,
            lo: (a.lo + ea).min(b.lo + eb),
            hi: (a.hi + ea).max(b.hi + eb),
        };
    }

    let x_lo = (-q).max(-d);
    let x_hi = p.min(d);
    if x_lo > x_hi {
        // The budget forces |x| > d: a detour on the shallow side. No
        // window spread; edges are floored (snaked) to the assigned
        // lengths so the delay guarantee stays exact.
        let x = if p < -d { p } else { -q };
        let total = x.abs();
        let (ea, eb) = ((total + x) / 2.0, (total - x) / 2.0);
        return Split {
            reach_a: ea,
            reach_b: eb,
            floor_a: ea,
            floor_b: eb,
            lo: (a.lo + ea).min(b.lo + eb),
            hi: (a.hi + ea).max(b.hi + eb),
        };
    }

    // Preferred split: balance the window centers (zero-skew flavour).
    let balanced = ((b.lo + b.hi) - (a.lo + a.hi)) / 2.0;
    let x_star = balanced.clamp(x_lo, x_hi);
    let base_width = (a.hi + (d + x_star) / 2.0).max(b.hi + (d - x_star) / 2.0)
        - (a.lo + (d + x_star) / 2.0).min(b.lo + (d - x_star) / 2.0);
    // Spread the window as far as the leftover skew slack allows; every
    // unit of spread is a unit of region fattening.
    let slack = (skew_bound - base_width).max(0.0);
    let spread = (x_hi - x_lo).min(slack);
    let x1 = (x_star - spread / 2.0).clamp(x_lo, x_hi - spread);
    let x2 = x1 + spread;

    let reach_a = (d + x2) / 2.0;
    let reach_b = (d - x1) / 2.0;
    Split {
        reach_a,
        reach_b,
        floor_a: 0.0,
        floor_b: 0.0,
        lo: (a.lo + (d + x1) / 2.0).min(b.lo + (d - x2) / 2.0),
        hi: (a.hi + reach_a).max(b.hi + reach_b),
    }
}

/// Builds a bounded-skew tree over `sinks` with skew budget `skew_bound`
/// (absolute units; pass `f64::INFINITY` for an unconstrained Steiner
/// heuristic, `0.0` for zero skew).
///
/// # Errors
///
/// Propagates [`LubtError`] from the final topology assembly (cannot occur
/// for valid inputs).
///
/// # Panics
///
/// Panics when `sinks` is empty or `skew_bound` is negative/NaN.
///
/// # Example
///
/// ```
/// use lubt_baselines::bounded_skew_tree;
/// use lubt_geom::Point;
/// let sinks = [Point::new(0.0, 0.0), Point::new(20.0, 0.0), Point::new(10.0, 15.0)];
/// let bst = bounded_skew_tree(&sinks, Some(Point::new(10.0, 5.0)), 3.0)?;
/// assert!(bst.skew() <= 3.0 + 1e-9);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn bounded_skew_tree(
    sinks: &[Point],
    source: Option<Point>,
    skew_bound: f64,
) -> Result<BstTree, LubtError> {
    assert!(!sinks.is_empty(), "need at least one sink");
    assert!(
        skew_bound >= 0.0 && !skew_bound.is_nan(),
        "skew bound must be non-negative"
    );
    let m = sinks.len();
    let mode = if source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    let mut builder = MergeTreeBuilder::new(m);

    let mut clusters: Vec<Option<Cluster>> = sinks
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Some(Cluster {
                handle: builder.sink(i),
                region: Octilinear::from_point(p),
                lo: 0.0,
                hi: 0.0,
                rep: p,
                rep_delay: 0.0,
            })
        })
        .collect();
    // Per-cluster side tables, indexed by handle (sinks 0..m, merges on).
    let mut floor_of_cluster: Vec<f64> = vec![0.0; 2 * m];
    // Maximum edge length budgeted for the cluster's parent edge; placement
    // must stay within this reach of the parent or the delay window breaks.
    let mut reach_of_cluster: Vec<f64> = vec![f64::INFINITY; 2 * m];
    let mut region_of_cluster: Vec<Option<Octilinear>> = clusters
        .iter()
        .map(|c| c.as_ref().map(|c| c.region))
        .collect();
    region_of_cluster.resize(2 * m, None);
    // Balanced representative per cluster: the placement initializer (the
    // reps encode zero-skew-quality geometry; refinement then exploits the
    // fat regions from there).
    let mut rep_of_cluster: Vec<Point> = sinks.to_vec();
    rep_of_cluster.resize(2 * m, Point::ORIGIN);

    // Merge-ordering metric: distance between balanced representatives.
    // Pure greedy marginal-wire ordering is myopic (it measurably degrades
    // the zero-skew end), while representative distance reproduces the
    // nearest-neighbor generator the zero-skew reference uses, keeping the
    // Table 1 columns comparable across budgets.
    let merge_cost = |a: &Cluster, b: &Cluster| -> f64 { a.rep.dist(b.rep) };
    let nearest_of = |clusters: &[Option<Cluster>], i: usize| -> Option<(usize, f64)> {
        let ci = clusters[i].as_ref()?;
        let mut best: Option<(usize, f64)> = None;
        for (j, cj) in clusters.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(cj) = cj {
                let d = merge_cost(ci, cj);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
        }
        best
    };
    let mut nn: Vec<Option<(usize, f64)>> = (0..clusters.len())
        .map(|i| nearest_of(&clusters, i))
        .collect();

    let mut live = m;
    while live > 1 {
        let (i, _) = nn
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|(_, d)| (i, d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"))
            .expect("at least two live clusters");
        let (j, _) = nn[i].expect("cached entry");

        let a = clusters[i].take().expect("live");
        let b = clusters[j].take().expect("live");
        // Wire math uses the *regions* (this is where the skew budget pays
        // off: fattened regions are closer).
        let d = a.region.dist(&b.region);
        let split = split_window(&a, &b, d, skew_bound);
        floor_of_cluster[a.handle_index()] = split.floor_a;
        floor_of_cluster[b.handle_index()] = split.floor_b;
        reach_of_cluster[a.handle_index()] = split.reach_a;
        reach_of_cluster[b.handle_index()] = split.reach_b;

        let raw = a
            .region
            .expanded(split.reach_a)
            .intersect(&b.region.expanded(split.reach_b))
            .or_else(|| {
                // reach_a + reach_b == dist can miss the touch by one ulp;
                // retry with a proportional epsilon.
                let s = 1e-9 * (1.0 + d.abs());
                a.region
                    .expanded(split.reach_a + s)
                    .intersect(&b.region.expanded(split.reach_b + s))
            })
            .expect("reach_a + reach_b >= dist implies overlap");
        // Clip to the corridor between the children: points off every
        // shortest connection would cost phantom wire later.
        let region = raw.intersect(&a.region.hull(&b.region)).unwrap_or(raw);
        debug_assert!(region.x().lo().is_finite() && region.x().hi().is_finite()
            && region.y().lo().is_finite() && region.y().hi().is_finite(),
            "non-finite region: split reach_a={} reach_b={} d={d} a.window=[{},{}] b.window=[{},{}]",
            split.reach_a, split.reach_b, a.lo, a.hi, b.lo, b.hi);
        let handle = builder.merge(a.handle, b.handle);
        // Representative update mirrors the NN topology generator's
        // balanced merge on the representative points.
        let rep_d = a.rep.dist(b.rep);
        let gap = a.rep_delay - b.rep_delay;
        let (rep, rep_delay) = if gap.abs() <= rep_d {
            let ea_rep = ((rep_d - gap) / 2.0).clamp(0.0, rep_d);
            let t = if rep_d > 0.0 { ea_rep / rep_d } else { 0.5 };
            (
                Point::new(
                    a.rep.x + t * (b.rep.x - a.rep.x),
                    a.rep.y + t * (b.rep.y - a.rep.y),
                ),
                a.rep_delay + ea_rep,
            )
        } else if a.rep_delay > b.rep_delay {
            (a.rep, a.rep_delay)
        } else {
            (b.rep, b.rep_delay)
        };
        let merged = Cluster {
            handle,
            region,
            lo: split.lo,
            hi: split.hi,
            rep,
            rep_delay,
        };
        rep_of_cluster[merged.handle_index()] = rep;
        debug_assert!(
            merged.hi - merged.lo <= skew_bound + 1e-6 * (1.0 + skew_bound.min(1e12)),
            "window {} exceeds budget {skew_bound}",
            merged.hi - merged.lo
        );
        region_of_cluster[merged.handle_index()] = Some(region);
        clusters[i] = Some(merged);
        nn[j] = None;
        nn[i] = nearest_of(&clusters, i);
        for k in 0..clusters.len() {
            if k == i || clusters[k].is_none() {
                continue;
            }
            match nn[k] {
                Some((p, _)) if p == i || p == j => nn[k] = nearest_of(&clusters, k),
                _ => {
                    let ck = clusters[k].as_ref().expect("live");
                    let d = merge_cost(ck, clusters[i].as_ref().expect("live"));
                    if nn[k].is_none_or(|(_, bd)| d < bd) {
                        nn[k] = Some((i, d));
                    }
                }
            }
        }
        live -= 1;
    }

    let top = clusters
        .iter()
        .flatten()
        .next()
        .expect("one cluster remains")
        .clone();

    let (topology, map) = builder.finish_with_map(top.handle, mode)?;

    // Scatter per-cluster data onto topology nodes.
    let n = topology.num_nodes();
    let mut floors = vec![0.0; n];
    let mut reaches = vec![f64::INFINITY; n];
    let mut region_of_node: Vec<Option<Octilinear>> = vec![None; n];
    let mut rep_of_node: Vec<Point> = vec![Point::ORIGIN; n];
    for (cluster, node) in map.iter().enumerate() {
        if let Some(node) = node {
            if node.index() != 0 {
                floors[node.index()] = floor_of_cluster[cluster];
                reaches[node.index()] = reach_of_cluster[cluster];
            }
            region_of_node[node.index()] = region_of_cluster[cluster];
            rep_of_node[node.index()] = rep_of_cluster[cluster];
        }
    }
    if source.is_none() {
        // In Free mode node 0 *is* the top cluster.
        region_of_node[0] = Some(top.region);
    }

    // Top-down placement with tight edges (respecting elongation floors).
    let mut positions = vec![Point::ORIGIN; n];
    let mut edge_lengths = vec![0.0; n];
    positions[0] = match source {
        Some(s0) => s0,
        None => top.region.closest_point_to(top.rep),
    };
    // Initial top-down placement: nearest point of the merging region
    // within the budgeted reach of the parent (the delay window assumed the
    // parent edge never exceeds `reach`).
    let feasible_wrt_parent = |v: lubt_topology::NodeId, pp: Point| -> Option<Octilinear> {
        let region = region_of_node[v.index()]?;
        if reaches[v.index()].is_finite() {
            debug_assert!(
                reaches[v.index()] >= 0.0,
                "node {v}: negative reach {}",
                reaches[v.index()]
            );
            let ball = Octilinear::from_point(pp).expanded(reaches[v.index()]);
            Some(region.intersect(&ball).unwrap_or_else(|| {
                // Numeric touch miss: collapse to the nearest point.
                Octilinear::from_point(region.closest_point_to(pp))
            }))
        } else {
            Some(region)
        }
    };
    for v in topology.preorder() {
        if v == topology.root() {
            continue;
        }
        let parent = topology.parent(v).expect("non-root");
        let pp = positions[parent.index()];
        debug_assert!(
            pp.is_finite(),
            "parent {} of {v} has non-finite position",
            parent
        );
        positions[v.index()] = match feasible_wrt_parent(v, pp) {
            // Seed at the balanced representative (good global geometry),
            // constrained to the feasible set.
            Some(f) => f.closest_point_to(rep_of_node[v.index()]),
            None => pp,
        };
        debug_assert!(
            positions[v.index()].is_finite(),
            "node {v}: non-finite placement, reach {} rep {}",
            reaches[v.index()],
            rep_of_node[v.index()]
        );
    }

    // Median refinement: sweep internal nodes toward the component-wise
    // median of their tree neighbors (the 1-point L1 Steiner optimum),
    // projected into the region and every adjacent reach ball, so the
    // delay window stays valid while the total wirelength drops. This is
    // where a loose skew budget — whose fat merging regions leave slack in
    // the feasibility sets — actually buys wirelength.
    for _sweep in 0..4 {
        for v in topology.preorder() {
            if topology.is_sink(v) || region_of_node[v.index()].is_none() {
                continue;
            }
            let mut anchor_pts = Vec::with_capacity(3);
            if let Some(parent) = topology.parent(v) {
                anchor_pts.push(positions[parent.index()]);
            }
            for c in topology.children(v) {
                anchor_pts.push(positions[c.index()]);
            }
            if anchor_pts.is_empty() {
                continue;
            }
            let median = |mut vals: Vec<f64>| -> f64 {
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                vals[vals.len() / 2]
            };
            let target = Point::new(
                median(anchor_pts.iter().map(|p| p.x).collect()),
                median(anchor_pts.iter().map(|p| p.y).collect()),
            );
            // Feasibility: own region, parent reach, children reaches.
            let mut feasible = match topology.parent(v) {
                Some(parent) => match feasible_wrt_parent(v, positions[parent.index()]) {
                    Some(f) => f,
                    None => continue,
                },
                None => region_of_node[v.index()].expect("checked above"),
            };
            let mut ok = true;
            for c in topology.children(v) {
                if !reaches[c.index()].is_finite() {
                    continue;
                }
                let ball =
                    Octilinear::from_point(positions[c.index()]).expanded(reaches[c.index()]);
                match feasible.intersect(&ball) {
                    Some(f) => feasible = f,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                positions[v.index()] = feasible.closest_point_to(target);
            }
        }
    }

    for v in topology.preorder() {
        if v == topology.root() {
            continue;
        }
        let parent = topology.parent(v).expect("non-root");
        let pp = positions[parent.index()];
        edge_lengths[v.index()] = positions[v.index()].dist(pp).max(floors[v.index()]);
    }

    Ok(BstTree {
        topology,
        edge_lengths,
        positions,
        skew_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = ((i * 83 + seed as usize * 131) % 223) as f64;
                let b = ((i * 59 + seed as usize * 37) % 199) as f64;
                Point::new(a, b)
            })
            .collect()
    }

    #[test]
    fn skew_bound_is_respected() {
        let sinks = scatter(20, 1);
        for b in [0.0, 5.0, 25.0, 100.0, f64::INFINITY] {
            let bst = bounded_skew_tree(&sinks, Some(Point::new(100.0, 100.0)), b).unwrap();
            assert!(bst.skew() <= b + 1e-6, "bound {b}: skew {}", bst.skew());
            // Edges realizable.
            for (c, p) in bst.topology.edges() {
                let d = bst.positions[c.index()].dist(bst.positions[p.index()]);
                assert!(
                    d <= bst.edge_lengths[c.index()] + 1e-6,
                    "bound {b}, edge {c}: dist {d} > len {}",
                    bst.edge_lengths[c.index()]
                );
            }
        }
    }

    #[test]
    fn cost_falls_as_bound_loosens() {
        let sinks = scatter(24, 7);
        let radius = 150.0;
        let costs: Vec<f64> = [0.0, 0.1 * radius, 0.5 * radius, 2.0 * radius, f64::INFINITY]
            .iter()
            .map(|&b| bounded_skew_tree(&sinks, None, b).unwrap().cost())
            .collect();
        // Strict shape claim of Table 1: the loose end is genuinely cheaper
        // than the zero-skew end.
        assert!(
            costs.last().unwrap() < &(costs[0] * 0.95),
            "costs {costs:?}"
        );
        // And the trend is (weakly) monotone within noise.
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] * 1.05 + 1e-6, "costs {costs:?}");
        }
    }

    #[test]
    fn zero_bound_means_zero_skew() {
        let sinks = scatter(15, 3);
        let bst = bounded_skew_tree(&sinks, None, 0.0).unwrap();
        assert!(bst.skew() < 1e-9, "skew {}", bst.skew());
    }

    #[test]
    fn uniform_instances_stay_within_budget() {
        // Mirrors the r1/r3 synthetic geometry that exposed the float
        // cascade in an earlier revision.
        for seed in [1u64, 2, 3] {
            let sinks: Vec<Point> = (0..30)
                .map(|i| {
                    let a = ((i * 7919 + seed as usize * 104729) % 99991) as f64;
                    let b = ((i * 6101 + seed as usize * 15487) % 99991) as f64;
                    Point::new(a, b)
                })
                .collect();
            for bound in [0.0, 1000.0, 50_000.0] {
                let bst =
                    bounded_skew_tree(&sinks, Some(Point::new(50_000.0, 50_000.0)), bound).unwrap();
                assert!(
                    bst.skew() <= bound + 1e-5,
                    "seed {seed} bound {bound}: skew {}",
                    bst.skew()
                );
            }
        }
    }

    #[test]
    fn single_sink() {
        let bst = bounded_skew_tree(&[Point::new(3.0, 4.0)], Some(Point::ORIGIN), 0.0).unwrap();
        assert!((bst.cost() - 7.0).abs() < 1e-12);
        let (lo, hi) = bst.delay_range();
        assert_eq!(lo, hi);
    }
}
