//! Shortest-path tree: the Lemma 3.1 construction.
//!
//! Collapsing every Steiner point onto the source gives each sink a direct
//! source connection of length `dist(s0, s_i)` — the minimum possible delay
//! for every sink simultaneously, at the price of the largest reasonable
//! wirelength. The paper uses it as the feasibility anchor (any upper
//! bounds at least the distances are achievable) and it serves here as a
//! reference curve in the benches.

use lubt_geom::Point;
use lubt_topology::Topology;

/// Edge lengths of the Lemma 3.1 SPT on a given topology: Steiner edges 0,
/// each sink edge the full source distance.
///
/// Also returns positions realizing it (every Steiner point at the
/// source).
///
/// # Panics
///
/// Panics when `sinks.len() != topo.num_sinks()`.
pub fn shortest_path_tree(
    topo: &Topology,
    sinks: &[Point],
    source: Point,
) -> (Vec<f64>, Vec<Point>) {
    assert_eq!(sinks.len(), topo.num_sinks());
    let n = topo.num_nodes();
    let mut lengths = vec![0.0; n];
    let mut positions = vec![source; n];
    for s in topo.sinks() {
        let p = sinks[s.index() - 1];
        positions[s.index()] = p;
        lengths[s.index()] = source.dist(p);
    }
    // Edges above sinks already set; all other edges stay 0 — but a sink's
    // edge belongs to the sink node, and Steiner nodes' edges are 0, which
    // is exactly the Lemma 3.1 assignment. Nothing further to do, unless a
    // sink is an internal node (non-Lemma topologies), which we reject.
    assert!(
        topo.all_sinks_are_leaves(),
        "the SPT construction requires sinks to be leaves (Lemma 3.1)"
    );
    (lengths, positions)
}

/// Total wirelength of the direct star: `sum dist(s0, s_i)` — the cost of
/// [`shortest_path_tree`] regardless of topology.
pub fn star_wirelength(source: Point, sinks: &[Point]) -> f64 {
    sinks.iter().map(|p| source.dist(*p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_delay::linear::{node_delays, tree_cost};
    use lubt_topology::{nearest_neighbor_topology, SourceMode};

    #[test]
    fn spt_realizes_minimum_delays() {
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(3.0, 7.0),
        ];
        let src = Point::new(5.0, 5.0);
        let topo = nearest_neighbor_topology(&sinks, SourceMode::Given);
        let (lengths, positions) = shortest_path_tree(&topo, &sinks, src);
        let d = node_delays(&topo, &lengths);
        for s in topo.sinks() {
            assert!((d[s.index()] - src.dist(sinks[s.index() - 1])).abs() < 1e-12);
        }
        assert!((tree_cost(&lengths) - star_wirelength(src, &sinks)).abs() < 1e-12);
        // Every edge realizable: steiner points sit on the source.
        for (c, p) in topo.edges() {
            assert!(positions[c.index()].dist(positions[p.index()]) <= lengths[c.index()] + 1e-12);
        }
    }

    #[test]
    fn star_wirelength_empty() {
        assert_eq!(star_wirelength(Point::ORIGIN, &[]), 0.0);
    }
}
