//! Exact linear-delay zero-skew tree (ZST) construction — DME in the style
//! of Boese-Kahng (ASIC'92), the paper's reference \[7\].
//!
//! Topology comes from nearest-neighbor merging (or is supplied); the
//! merging pass is the §4.6 closed form from `lubt-core`; placement uses
//! the shared embedder. Cross-validation against the LP path (`l = u`)
//! lives in the integration tests.

use lubt_core::{embed_tree, zero_skew_edge_lengths, LubtError, PlacementPolicy};
use lubt_delay::linear::{node_delays, tree_cost};
use lubt_geom::Point;
use lubt_topology::{nearest_neighbor_topology, SourceMode, Topology};

/// A constructed zero-skew tree.
#[derive(Debug, Clone)]
pub struct ZstTree {
    /// The (generated or supplied) topology.
    pub topology: Topology,
    /// Edge lengths (indexed by node, entry 0 unused).
    pub edge_lengths: Vec<f64>,
    /// Node placements.
    pub positions: Vec<Point>,
    /// The common sink delay.
    pub delay: f64,
}

impl ZstTree {
    /// Total wirelength.
    pub fn cost(&self) -> f64 {
        tree_cost(&self.edge_lengths)
    }

    /// Recomputed skew (should be ~0; exposed for test assertions).
    pub fn skew(&self) -> f64 {
        let d = node_delays(&self.topology, &self.edge_lengths);
        lubt_delay::skew::skew(&self.topology, &d)
    }
}

/// Builds a zero-skew tree over `sinks`.
///
/// * `source` — pins the driver location; `None` lets the construction
///   choose it.
/// * `topology` — optional explicit topology (must be binary and match the
///   source mode); nearest-neighbor merge otherwise.
/// * `target` — the common delay; `None` uses the minimum achievable.
///
/// # Errors
///
/// Propagates [`LubtError`] for invalid topologies or an unreachable
/// `target`.
///
/// # Panics
///
/// Panics when `sinks` is empty.
///
/// # Example
///
/// ```
/// use lubt_baselines::zero_skew_tree;
/// use lubt_geom::Point;
/// let zst = zero_skew_tree(
///     &[Point::new(0.0, 0.0), Point::new(8.0, 0.0), Point::new(4.0, 6.0)],
///     Some(Point::new(4.0, 2.0)),
///     None,
///     None,
/// )?;
/// assert!(zst.skew() < 1e-9);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn zero_skew_tree(
    sinks: &[Point],
    source: Option<Point>,
    topology: Option<Topology>,
    target: Option<f64>,
) -> Result<ZstTree, LubtError> {
    assert!(!sinks.is_empty(), "need at least one sink");
    let mode = if source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    let topology = topology.unwrap_or_else(|| nearest_neighbor_topology(sinks, mode));
    let zst = zero_skew_edge_lengths(&topology, sinks, source, target)?;
    let positions = embed_tree(
        &topology,
        sinks,
        source,
        &zst.edge_lengths,
        PlacementPolicy::ClosestToParent,
    )?;
    Ok(ZstTree {
        topology,
        edge_lengths: zst.edge_lengths,
        positions,
        delay: zst.delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = ((i * 97 + seed as usize * 31) % 211) as f64;
                let b = ((i * 53 + seed as usize * 77) % 197) as f64;
                Point::new(a, b)
            })
            .collect()
    }

    #[test]
    fn zero_skew_holds_across_sizes() {
        for n in [2usize, 3, 5, 9, 17, 40] {
            let sinks = scatter(n, n as u64);
            let zst = zero_skew_tree(&sinks, None, None, None).unwrap();
            assert!(zst.skew() < 1e-9, "n={n}: skew {}", zst.skew());
            // All edges physically realizable.
            for (c, p) in zst.topology.edges() {
                let d = zst.positions[c.index()].dist(zst.positions[p.index()]);
                assert!(d <= zst.edge_lengths[c.index()] + 1e-6);
            }
        }
    }

    #[test]
    fn source_pinned_variant() {
        let sinks = scatter(12, 3);
        let src = Point::new(100.0, 100.0);
        let zst = zero_skew_tree(&sinks, Some(src), None, None).unwrap();
        assert!(zst.skew() < 1e-9);
        assert_eq!(zst.positions[0], src);
        // Delay at least the radius (no sink can be reached faster than its
        // distance).
        let radius = lubt_delay::skew::radius_with_source(src, &sinks);
        assert!(zst.delay >= radius - 1e-9);
    }

    #[test]
    fn target_stretches_cost() {
        let sinks = scatter(8, 9);
        let natural = zero_skew_tree(&sinks, None, None, None).unwrap();
        let stretched = zero_skew_tree(&sinks, None, None, Some(natural.delay * 1.5)).unwrap();
        assert!(stretched.cost() > natural.cost());
        assert!(stretched.skew() < 1e-9);
        assert!((stretched.delay - natural.delay * 1.5).abs() < 1e-9);
    }
}
