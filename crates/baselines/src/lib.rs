//! Baseline clock/global-routing constructions the LUBT paper compares
//! against or builds upon.
//!
//! * [`bst_dme`] — a linear-delay **Bounded-Skew Tree** constructor in the
//!   DME style of Huang-Kahng-Tsao (DAC'95), the paper's reference \[9\]
//!   and the comparator of Table 1: nearest-neighbor bottom-up merging with
//!   octilinear merging regions and skew-budgeted edge allocation, then
//!   top-down embedding.
//! * [`zero_skew_dme`] — exact linear-delay **Zero-Skew Tree** (DME /
//!   Boese-Kahng, reference \[7\]), wrapping the core crate's §4.6 merging
//!   pass with topology generation and embedding.
//! * [`elmore_zst`] — exact zero-skew under the **Elmore** model (Tsay
//!   ICCAD'91, reference \[4\]): quadratic balance splits and snaking
//!   elongation.
//! * [`spt`] — the **Shortest-Path Tree** of Lemma 3.1 (all Steiner points
//!   collapsed onto the source), the minimum-delay / maximum-cost
//!   reference point.
//!
//! The Table 1 protocol ("run \[9\], extract its topology and realized
//! delay window, hand both to the EBF") is implemented on top of
//! [`bst_dme::BstTree`]; see the bench crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bst_dme;
pub mod elmore_zst;
pub mod spt;
pub mod zero_skew_dme;

pub use bst_dme::{bounded_skew_tree, BstTree};
pub use elmore_zst::{elmore_zero_skew_tree, ElmoreZst};
pub use spt::{shortest_path_tree, star_wirelength};
pub use zero_skew_dme::{zero_skew_tree, ZstTree};
