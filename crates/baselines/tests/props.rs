//! Property tests over the baseline constructions.

use lubt_baselines::{bounded_skew_tree, elmore_zero_skew_tree, zero_skew_tree};
use lubt_delay::elmore::ElmoreParams;
use lubt_geom::Point;
use proptest::prelude::*;

fn sink_set() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y)),
        2..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bounded-skew construction honors its budget and produces
    /// physically realizable edges, for any budget.
    #[test]
    fn bst_respects_any_budget(
        sinks in sink_set(),
        budget_frac in 0.0..3.0f64,
        sx in 0.0..1000.0f64,
        sy in 0.0..1000.0f64,
    ) {
        let src = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| src.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let budget = budget_frac * radius;
        let bst = bounded_skew_tree(&sinks, Some(src), budget).unwrap();
        prop_assert!(
            bst.skew() <= budget + 1e-6 * (1.0 + radius),
            "skew {} > budget {budget}",
            bst.skew()
        );
        for (c, p) in bst.topology.edges() {
            let d = bst.positions[c.index()].dist(bst.positions[p.index()]);
            prop_assert!(
                d <= bst.edge_lengths[c.index()] + 1e-6 * (1.0 + radius),
                "edge {c} unroutable"
            );
        }
        // The source really is the root placement.
        prop_assert_eq!(bst.positions[0], src);
    }

    /// Zero-skew DME always yields (relative) zero skew and a delay at
    /// least the radius.
    #[test]
    fn zst_zero_skew_and_radius_bound(
        sinks in sink_set(),
        sx in 0.0..1000.0f64,
        sy in 0.0..1000.0f64,
    ) {
        let src = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| src.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let zst = zero_skew_tree(&sinks, Some(src), None, None).unwrap();
        prop_assert!(zst.skew() <= 1e-9 * (1.0 + zst.delay));
        prop_assert!(zst.delay >= radius - 1e-6 * radius);
        // Sandwich bounds: the tree reaches the farthest sink, and total
        // wire never exceeds the sum of all (shared) sink paths.
        prop_assert!(zst.cost() >= radius - 1e-6 * radius);
        let path_sum = sinks.len() as f64 * zst.delay;
        prop_assert!(zst.cost() <= path_sum + 1e-6 * (1.0 + path_sum));
    }

    /// Elmore zero skew: relative skew vanishes for random instances and
    /// loads.
    #[test]
    fn elmore_zst_zero_skew(
        sinks in proptest::collection::vec(
            (0.0..300.0f64, 0.0..300.0f64).prop_map(|(x, y)| Point::new(x, y)), 2..14),
        caps in proptest::collection::vec(0.1..10.0f64, 14),
        r_w in 0.01..1.0f64,
        c_w in 0.01..1.0f64,
    ) {
        let m = sinks.len();
        let params = ElmoreParams {
            r_w,
            c_w,
            sink_caps: caps[..m].to_vec(),
        };
        let src = Point::new(150.0, 150.0);
        let zst = elmore_zero_skew_tree(&sinks, Some(src), None, params).unwrap();
        let rel = zst.skew() / (1.0 + zst.delay);
        prop_assert!(rel < 1e-8, "relative skew {rel}");
        for (c, p) in zst.topology.edges() {
            let d = zst.positions[c.index()].dist(zst.positions[p.index()]);
            prop_assert!(d <= zst.edge_lengths[c.index()] + 1e-6);
        }
    }

    /// BST at budget 0 matches the ZST reference cost (both are exact
    /// zero-skew constructions over the same merge heuristic).
    #[test]
    fn bst_zero_budget_matches_zst(sinks in sink_set()) {
        let bst = bounded_skew_tree(&sinks, None, 0.0).unwrap();
        let zst = zero_skew_tree(&sinks, None, None, None).unwrap();
        let scale = 1.0 + zst.cost();
        prop_assert!(
            (bst.cost() - zst.cost()).abs() / scale < 1e-6,
            "bst {} vs zst {}",
            bst.cost(),
            zst.cost()
        );
    }
}
