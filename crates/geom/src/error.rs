use std::error::Error;
use std::fmt;

/// Errors produced by fallible geometric constructors.
///
/// Most geometric queries in this crate return `Option` (e.g. an empty
/// intersection is a perfectly ordinary outcome); `GeomError` is reserved for
/// *invalid inputs* that violate a constructor's contract.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// An interval was requested with `lo > hi`.
    InvertedInterval {
        /// Requested lower endpoint.
        lo: f64,
        /// Requested upper endpoint.
        hi: f64,
    },
    /// A radius or length argument was negative.
    NegativeLength(f64),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate(f64),
    /// A route was requested shorter than the Manhattan distance between its
    /// endpoints.
    RouteTooShort {
        /// Requested wirelength.
        requested: f64,
        /// Manhattan distance between the endpoints (the minimum possible).
        minimum: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvertedInterval { lo, hi } => {
                write!(f, "interval endpoints are inverted: lo={lo} > hi={hi}")
            }
            GeomError::NegativeLength(l) => write!(f, "length must be non-negative, got {l}"),
            GeomError::NonFiniteCoordinate(c) => {
                write!(f, "coordinate must be finite, got {c}")
            }
            GeomError::RouteTooShort { requested, minimum } => write!(
                f,
                "requested wirelength {requested} is below the Manhattan distance {minimum}"
            ),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let msgs = [
            GeomError::InvertedInterval { lo: 2.0, hi: 1.0 }.to_string(),
            GeomError::NegativeLength(-1.0).to_string(),
            GeomError::NonFiniteCoordinate(f64::NAN).to_string(),
            GeomError::RouteTooShort {
                requested: 1.0,
                minimum: 2.0,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
