use crate::{Interval, Point, Trr, GEOM_EPS};
use std::fmt;

/// A convex *octilinear* region: the intersection of axis-aligned and ±45°
/// half-planes, i.e. bounds on `x`, `y`, `u = x + y` and `v = x - y`.
///
/// Bounded-skew clock routing works with octilinear merging regions (Cong-Koh
/// ISCAS'95, Huang-Kahng-Tsao DAC'95 — reference \[9\] of the LUBT paper):
/// with a non-zero skew budget the feasible locations for a merge point grow
/// from the zero-skew *merging segment* to an octilinear convex polygon.
/// This type provides the algebra that baseline needs: expansion by a wire
/// radius, intersection, set distance and nearest-point queries — all in the
/// Manhattan metric.
///
/// Every [`Trr`] is an `Octilinear` with unbounded `x`/`y` slabs; every
/// axis-aligned rectangle is an `Octilinear` with unbounded `u`/`v` slabs.
///
/// The region is kept in *canonical (closed) form*: each bound is tightened
/// against the others so that, e.g., the projection onto the `x`-axis is
/// exactly the stored `x` interval. Empty regions are unrepresentable —
/// constructors return `Option`.
///
/// # Example
///
/// ```
/// use lubt_geom::{Octilinear, Point};
/// let a = Octilinear::from_point(Point::new(0.0, 0.0)).expanded(2.0);
/// let b = Octilinear::from_point(Point::new(3.0, 0.0)).expanded(2.0);
/// let both = a.intersect(&b).expect("overlap");
/// assert!(both.contains(Point::new(1.5, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Octilinear {
    x: Interval,
    y: Interval,
    u: Interval,
    v: Interval,
}

impl Octilinear {
    /// The region consisting of the single point `p`.
    pub fn from_point(p: Point) -> Self {
        Octilinear {
            x: Interval::point(p.x),
            y: Interval::point(p.y),
            u: Interval::point(p.u()),
            v: Interval::point(p.v()),
        }
    }

    /// Converts a TRR (bounds on `u`, `v` only) into canonical octilinear
    /// form.
    pub fn from_trr(t: Trr) -> Self {
        Octilinear::from_slabs(Interval::unbounded(), Interval::unbounded(), t.u(), t.v())
            .expect("a TRR is never empty")
    }

    /// Axis-aligned rectangle `[x] × [y]` as an octilinear region.
    pub fn from_rect(x: Interval, y: Interval) -> Self {
        Octilinear::from_slabs(x, y, Interval::unbounded(), Interval::unbounded())
            .expect("a rectangle is never empty")
    }

    /// General constructor from the four slabs; returns `None` when the
    /// intersection is empty.
    pub fn from_slabs(x: Interval, y: Interval, u: Interval, v: Interval) -> Option<Self> {
        Octilinear { x, y, u, v }.canonicalized()
    }

    /// Tightens every bound against the others (octagon closure). Returns
    /// `None` when the region is empty.
    ///
    /// The four coordinates `x, y, u = x + y, v = x - y` form a small system
    /// of two-variable linear relations; each pass applies every derivable
    /// one-step tightening, so the shortest-path closure is reached after a
    /// bounded number of passes (we iterate to an exact fixpoint with a hard
    /// cap as a safety net).
    fn canonicalized(mut self) -> Option<Self> {
        // Derived bounds are sums/differences of stored bounds, so rounding
        // can invert an interval by a few ulps even for non-empty regions;
        // snap such hairline inversions to their midpoint instead of
        // declaring the region empty.
        fn mk(lo: f64, hi: f64) -> Option<Interval> {
            match Interval::new(lo, hi) {
                Ok(i) => Some(i),
                Err(_) => {
                    let scale = lo.abs().max(hi.abs()).max(1.0);
                    (lo - hi <= 1e-9 * scale && lo.is_finite() && hi.is_finite())
                        .then(|| Interval::point((lo + hi) / 2.0))
                }
            }
        }
        for _ in 0..8 {
            let (x, y, u, v) = (self.x, self.y, self.u, self.v);
            let nu = mk(
                u.lo()
                    .max(x.lo() + y.lo())
                    .max(2.0 * x.lo() - v.hi())
                    .max(v.lo() + 2.0 * y.lo()),
                u.hi()
                    .min(x.hi() + y.hi())
                    .min(2.0 * x.hi() - v.lo())
                    .min(v.hi() + 2.0 * y.hi()),
            )?;
            let nv = mk(
                v.lo()
                    .max(x.lo() - y.hi())
                    .max(2.0 * x.lo() - u.hi())
                    .max(u.lo() - 2.0 * y.hi()),
                v.hi()
                    .min(x.hi() - y.lo())
                    .min(2.0 * x.hi() - u.lo())
                    .min(u.hi() - 2.0 * y.lo()),
            )?;
            let nx = mk(
                x.lo()
                    .max(nu.lo() - y.hi())
                    .max(nv.lo() + y.lo())
                    .max((nu.lo() + nv.lo()) / 2.0),
                x.hi()
                    .min(nu.hi() - y.lo())
                    .min(nv.hi() + y.hi())
                    .min((nu.hi() + nv.hi()) / 2.0),
            )?;
            let ny = mk(
                y.lo()
                    .max(nu.lo() - nx.hi())
                    .max(nx.lo() - nv.hi())
                    .max((nu.lo() - nv.hi()) / 2.0),
                y.hi()
                    .min(nu.hi() - nx.lo())
                    .min(nx.hi() - nv.lo())
                    .min((nu.hi() - nv.lo()) / 2.0),
            )?;
            let next = Octilinear {
                x: nx,
                y: ny,
                u: nu,
                v: nv,
            };
            if next == self {
                break;
            }
            self = next;
        }
        Some(self)
    }

    /// The `x` extent (exact projection, thanks to canonical form).
    #[inline]
    pub fn x(self) -> Interval {
        self.x
    }

    /// The `y` extent.
    #[inline]
    pub fn y(self) -> Interval {
        self.y
    }

    /// The `u = x + y` extent.
    #[inline]
    pub fn u(self) -> Interval {
        self.u
    }

    /// The `v = x - y` extent.
    #[inline]
    pub fn v(self) -> Interval {
        self.v
    }

    /// All points within Manhattan distance `r` of the region (Minkowski sum
    /// with the radius-`r` diamond). The octilinear family is closed under
    /// this operation: every slab bound relaxes by exactly `r`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `r < 0`.
    pub fn expanded(self, r: f64) -> Self {
        Octilinear {
            x: self.x.expand(r),
            y: self.y.expand(r),
            u: self.u.expand(r),
            v: self.v.expand(r),
        }
        .canonicalized()
        .expect("expansion never empties a region")
    }

    /// Intersection with `other`, or `None` when disjoint.
    pub fn intersect(&self, other: &Octilinear) -> Option<Octilinear> {
        Octilinear {
            x: self.x.intersect(other.x)?,
            y: self.y.intersect(other.y)?,
            u: self.u.intersect(other.u)?,
            v: self.v.intersect(other.v)?,
        }
        .canonicalized()
    }

    /// Membership with the crate tolerance [`GEOM_EPS`].
    pub fn contains(&self, p: Point) -> bool {
        self.x.contains(p.x, GEOM_EPS)
            && self.y.contains(p.y, GEOM_EPS)
            && self.u.contains(p.u(), GEOM_EPS)
            && self.v.contains(p.v(), GEOM_EPS)
    }

    /// Minimum Manhattan distance between two octilinear regions (zero when
    /// they intersect).
    ///
    /// For this family the L1 set distance has the closed form
    /// `max(gap_x + gap_y, gap_u, gap_v)`: axis gaps combine additively
    /// (moving diagonally closes both at once costs their sum) while each
    /// diagonal gap alone lower-bounds the distance because `|Δu|` and
    /// `|Δv|` never exceed the L1 distance.
    pub fn dist(&self, other: &Octilinear) -> f64 {
        let dx = self.x.gap(other.x);
        let dy = self.y.gap(other.y);
        let du = self.u.gap(other.u);
        let dv = self.v.gap(other.v);
        (dx + dy).max(du).max(dv)
    }

    /// Minimum Manhattan distance from `p` to the region.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.dist(&Octilinear::from_point(p))
    }

    /// A deterministic interior representative point.
    pub fn center(self) -> Point {
        let x = self.x.center();
        // Feasible y range at this x (non-empty by canonical form).
        let y_range = self
            .y
            .intersect(Interval::new(self.u.lo() - x, self.u.hi() - x).unwrap_or(self.y))
            .and_then(|r| r.intersect(Interval::new(x - self.v.hi(), x - self.v.lo()).unwrap_or(r)))
            .unwrap_or(self.y);
        Point::new(x, y_range.center())
    }

    /// The point of the region nearest to `p` in the Manhattan metric
    /// (`p` itself when inside).
    ///
    /// Implemented exactly: if `p` is outside, the nearest point lies on the
    /// boundary; every boundary edge is axis-aligned or ±45°, and the L1
    /// nearest point on such a segment has a closed form.
    pub fn closest_point_to(&self, p: Point) -> Point {
        if self.contains(p) {
            return p;
        }
        let verts = self.vertices();
        let mut best = verts[0];
        let mut best_d = p.dist(best);
        for i in 0..verts.len() {
            let a = verts[i];
            let b = verts[(i + 1) % verts.len()];
            let q = closest_on_segment(a, b, p);
            let d = p.dist(q);
            if d < best_d {
                best_d = d;
                best = q;
            }
        }
        best
    }

    /// The (up to eight) boundary vertices in counterclockwise order.
    /// Degenerate edges produce repeated vertices, which is harmless for the
    /// nearest-point search.
    ///
    /// # Panics
    ///
    /// Panics if the region is unbounded (merging regions in the baselines
    /// are always bounded).
    pub fn vertices(&self) -> Vec<Point> {
        let (xl, xh) = (self.x.lo(), self.x.hi());
        let (yl, yh) = (self.y.lo(), self.y.hi());
        let (ul, uh) = (self.u.lo(), self.u.hi());
        let (vl, vh) = (self.v.lo(), self.v.hi());
        assert!(
            [xl, xh, yl, yh, ul, uh, vl, vh]
                .iter()
                .all(|c| c.is_finite()),
            "vertices() requires a bounded octilinear region"
        );
        // Walk the eight potentially-tight constraints counterclockwise,
        // starting at the right edge: x=xh, u=uh, y=yh, v=vl, x=xl, u=ul,
        // y=yl, v=vh. Consecutive tight pairs meet at these corners:
        vec![
            Point::new(xh, uh - xh), // x=xh ∧ u=uh
            Point::new(uh - yh, yh), // u=uh ∧ y=yh
            Point::new(vl + yh, yh), // y=yh ∧ v=vl
            Point::new(xl, xl - vl), // v=vl ∧ x=xl
            Point::new(xl, ul - xl), // x=xl ∧ u=ul
            Point::new(ul - yl, yl), // u=ul ∧ y=yl
            Point::new(vh + yl, yl), // y=yl ∧ v=vh
            Point::new(xh, xh - vh), // v=vh ∧ x=xh
        ]
    }

    /// Smallest TRR containing the region (drops the axis slabs).
    pub fn bounding_trr(self) -> Trr {
        Trr::from_uv(self.u, self.v)
    }

    /// The axis-aligned "corridor" between two regions: the bounding box of
    /// their union. Every L1-shortest connection between the regions is
    /// monotone in `x` and `y`, hence stays inside this box (note it may
    /// leave the diagonal `u`/`v` hulls, so those are *not* constrained).
    /// Bounded-skew merging clips its fattened regions to the corridor so
    /// that deferred join points remain on genuine shortest paths.
    pub fn hull(&self, other: &Octilinear) -> Octilinear {
        Octilinear::from_rect(self.x.hull(other.x), self.y.hull(other.y))
    }
}

/// L1-nearest point to `p` on the segment `a..b` (assumed axis-aligned or
/// ±45°, which is all this crate produces). The L1 distance along such a
/// segment is piecewise linear in the parameter, so the minimum is attained
/// at an endpoint or where one coordinate of the segment passes through the
/// corresponding coordinate of `p`.
fn closest_on_segment(a: Point, b: Point, p: Point) -> Point {
    let mut cands = vec![a, b];
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    if dx.abs() > GEOM_EPS {
        let t = (p.x - a.x) / dx;
        if (0.0..=1.0).contains(&t) {
            cands.push(Point::new(p.x, a.y + t * dy));
        }
    }
    if dy.abs() > GEOM_EPS {
        let t = (p.y - a.y) / dy;
        if (0.0..=1.0).contains(&t) {
            cands.push(Point::new(a.x + t * dx, p.y));
        }
    }
    cands
        .into_iter()
        .min_by(|q, r| p.dist(*q).partial_cmp(&p.dist(*r)).expect("finite"))
        .expect("candidate list is never empty")
}

impl fmt::Display for Octilinear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Oct{{x: {}, y: {}, u: {}, v: {}}}",
            self.x, self.y, self.u, self.v
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oct(p: Point, r: f64) -> Octilinear {
        Octilinear::from_point(p).expanded(r)
    }

    #[test]
    fn point_region_roundtrip() {
        let p = Point::new(2.0, -3.0);
        let o = Octilinear::from_point(p);
        assert!(o.contains(p));
        assert_eq!(o.center(), p);
        assert_eq!(o.dist_to_point(Point::new(2.0, 0.0)), 3.0);
    }

    #[test]
    fn expanded_point_is_diamond() {
        let o = oct(Point::ORIGIN, 2.0);
        assert!(o.contains(Point::new(2.0, 0.0)));
        assert!(o.contains(Point::new(1.0, 1.0)));
        assert!(!o.contains(Point::new(1.5, 1.0)));
    }

    #[test]
    fn canonicalization_tightens() {
        // A huge x/y box cut by a narrow u slab: the x/y bounds must shrink.
        let o = Octilinear::from_slabs(
            Interval::new(0.0, 10.0).unwrap(),
            Interval::new(0.0, 10.0).unwrap(),
            Interval::new(18.0, 19.0).unwrap(),
            Interval::unbounded(),
        )
        .unwrap();
        assert!(o.x().lo() >= 8.0 - 1e-9);
        assert!(o.y().lo() >= 8.0 - 1e-9);
    }

    #[test]
    fn empty_after_canonicalization() {
        let o = Octilinear::from_slabs(
            Interval::new(0.0, 1.0).unwrap(),
            Interval::new(0.0, 1.0).unwrap(),
            Interval::new(5.0, 6.0).unwrap(), // u = x + y can be at most 2
            Interval::unbounded(),
        );
        assert!(o.is_none());
    }

    #[test]
    fn rect_and_trr_conversions() {
        let rect = Octilinear::from_rect(
            Interval::new(0.0, 4.0).unwrap(),
            Interval::new(0.0, 2.0).unwrap(),
        );
        assert!(rect.contains(Point::new(4.0, 2.0)));
        assert!(!rect.contains(Point::new(4.1, 2.0)));
        let t = Trr::from_center_radius(Point::ORIGIN, 1.0);
        let o = Octilinear::from_trr(t);
        assert!(o.contains(Point::new(1.0, 0.0)));
        assert!(!o.contains(Point::new(1.0, 0.2)));
    }

    #[test]
    fn distance_rect_rect_diagonal() {
        let a = Octilinear::from_rect(
            Interval::new(0.0, 1.0).unwrap(),
            Interval::new(0.0, 1.0).unwrap(),
        );
        let b = Octilinear::from_rect(
            Interval::new(3.0, 4.0).unwrap(),
            Interval::new(3.0, 4.0).unwrap(),
        );
        assert!((a.dist(&b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn distance_matches_trr_distance() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(7.0, 3.0);
        let (r1, r2) = (2.0, 1.5);
        let to = oct(p, r1).dist(&oct(q, r2));
        let tt = Trr::from_center_radius(p, r1).dist(&Trr::from_center_radius(q, r2));
        assert!((to - tt).abs() < 1e-9);
    }

    #[test]
    fn closest_point_on_octagon() {
        let o = oct(Point::ORIGIN, 2.0);
        let p = Point::new(4.0, 4.0);
        let q = o.closest_point_to(p);
        assert!(o.contains(q));
        assert!((p.dist(q) - o.dist_to_point(p)).abs() < 1e-9);
        // Interior point maps to itself.
        assert_eq!(
            o.closest_point_to(Point::new(0.5, 0.5)),
            Point::new(0.5, 0.5)
        );
    }

    #[test]
    fn hull_is_the_xy_corridor_only() {
        // Regression: the zero-skew merging segment of a *diagonal* pair
        // legitimately leaves the diagonal (u/v) hulls while staying inside
        // the x/y bounding box — the corridor must not constrain u/v.
        let a = Octilinear::from_point(Point::new(0.0, 0.0));
        let b = Octilinear::from_point(Point::new(6.0, 4.0));
        let hull = a.hull(&b);
        // Midpoints of monotone shortest paths: (1, 4) goes up then right.
        assert!(hull.contains(Point::new(1.0, 4.0)));
        assert!(hull.contains(Point::new(5.0, 0.0)));
        assert!(hull.contains(Point::new(3.0, 2.0)));
        // Outside the box: excluded.
        assert!(!hull.contains(Point::new(-1.0, 2.0)));
        assert!(!hull.contains(Point::new(3.0, 5.0)));
        // Both endpoints inside.
        assert!(hull.contains(Point::new(0.0, 0.0)));
        assert!(hull.contains(Point::new(6.0, 4.0)));
    }

    #[test]
    fn merging_segment_lies_in_hull() {
        // The balanced merge region of two diamonds is always inside their
        // corridor (the property the BST construction depends on).
        for (ax, ay, bx, by) in [
            (0.0, 0.0, 6.0, 4.0),
            (0.0, 0.0, 10.0, 0.0),
            (2.0, 7.0, 9.0, 1.0),
        ] {
            let a = Octilinear::from_point(Point::new(ax, ay));
            let b = Octilinear::from_point(Point::new(bx, by));
            let d = a.dist(&b);
            let region = a
                .expanded(d / 2.0)
                .intersect(&b.expanded(d / 2.0))
                .expect("touching");
            let hull = a.hull(&b);
            assert!(
                region.intersect(&hull).is_some(),
                "({ax},{ay})-({bx},{by}): merging region misses the corridor"
            );
            // The region center (a genuine merge point) is in the corridor.
            assert!(hull.contains(region.center()));
        }
    }

    #[test]
    fn vertices_are_on_boundary() {
        let o = Octilinear::from_slabs(
            Interval::new(-2.0, 2.0).unwrap(),
            Interval::new(-2.0, 2.0).unwrap(),
            Interval::new(-3.0, 3.0).unwrap(),
            Interval::new(-3.0, 3.0).unwrap(),
        )
        .unwrap();
        for p in o.vertices() {
            assert!(o.contains(p), "vertex {p} not in region");
        }
    }

    proptest! {
        /// The closed-form L1 set distance agrees with dense boundary
        /// sampling.
        #[test]
        fn prop_distance_formula_vs_sampling(
            ax in -30.0..30.0f64, ay in -30.0..30.0f64, ar in 0.5..10.0f64,
            aw in 0.0..8.0f64, ah in 0.0..8.0f64,
            bx in -30.0..30.0f64, by in -30.0..30.0f64, br in 0.5..10.0f64,
        ) {
            // Region A: a box expanded into an octagon; region B: a diamond.
            let a = Octilinear::from_rect(
                Interval::new(ax, ax + aw).unwrap(),
                Interval::new(ay, ay + ah).unwrap(),
            ).expanded(ar);
            let b = oct(Point::new(bx, by), br);
            let d = a.dist(&b);
            // Sample along B's boundary; nearest A-point computed exactly.
            let verts = b.vertices();
            let mut sampled = f64::INFINITY;
            for i in 0..verts.len() {
                let (s, e) = (verts[i], verts[(i + 1) % verts.len()]);
                for k in 0..=20 {
                    let t = k as f64 / 20.0;
                    let q = Point::new(s.x + t * (e.x - s.x), s.y + t * (e.y - s.y));
                    let nearest = a.closest_point_to(q);
                    sampled = sampled.min(q.dist(nearest));
                }
            }
            // Formula is a true minimum: never above the sampled value, and
            // sampling (20 subdivisions) gets within a generous tolerance.
            prop_assert!(d <= sampled + 1e-6);
            prop_assert!(sampled - d <= (br.max(ar)) / 4.0 + 1e-6);
        }

        /// Intersection is sound: points in both regions lie in the
        /// intersection, and the intersection is contained in both.
        #[test]
        fn prop_intersection_sound(
            ax in -20.0..20.0f64, ay in -20.0..20.0f64, ar in 0.5..15.0f64,
            bx in -20.0..20.0f64, by in -20.0..20.0f64, br in 0.5..15.0f64,
        ) {
            let a = oct(Point::new(ax, ay), ar);
            let b = oct(Point::new(bx, by), br);
            match a.intersect(&b) {
                Some(c) => {
                    let m = c.center();
                    prop_assert!(a.contains(m) && b.contains(m));
                }
                None => prop_assert!(a.dist(&b) > -1e-9),
            }
        }

        /// dist/expand duality, mirroring the TRR property.
        #[test]
        fn prop_expand_distance_duality(
            ax in -20.0..20.0f64, ay in -20.0..20.0f64, ar in 0.5..10.0f64,
            bx in -20.0..20.0f64, by in -20.0..20.0f64, br in 0.5..10.0f64,
        ) {
            let a = oct(Point::new(ax, ay), ar);
            let b = oct(Point::new(bx, by), br);
            let d = a.dist(&b);
            prop_assert!(a.expanded(d + 1e-9).intersect(&b).is_some());
            if d > 1e-6 {
                prop_assert!(a.expanded(d - 1e-6).intersect(&b).is_none());
            }
        }
    }
}
