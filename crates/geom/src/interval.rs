use crate::GeomError;
use std::fmt;

/// A closed, non-empty 1-D interval `[lo, hi]`.
///
/// `Interval` is the workhorse behind both region types: a [`crate::Trr`] is
/// a pair of intervals in rotated coordinates, an [`crate::Octilinear`]
/// region is four intervals. The invariant `lo <= hi` is enforced at
/// construction; operations that can produce an empty result (intersection)
/// return `Option`.
///
/// # Example
///
/// ```
/// use lubt_geom::Interval;
/// let a = Interval::new(0.0, 4.0)?;
/// let b = Interval::new(3.0, 9.0)?;
/// assert_eq!(a.intersect(b), Some(Interval::new(3.0, 4.0)?));
/// assert_eq!(a.gap(Interval::new(7.0, 8.0)?), 3.0);
/// # Ok::<(), lubt_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvertedInterval`] when `lo > hi` and
    /// [`GeomError::NonFiniteCoordinate`] when either endpoint is NaN.
    /// (Infinite endpoints are allowed: unbounded slabs are legitimate
    /// octilinear constraints.)
    pub fn new(lo: f64, hi: f64) -> Result<Self, GeomError> {
        if lo.is_nan() {
            return Err(GeomError::NonFiniteCoordinate(lo));
        }
        if hi.is_nan() {
            return Err(GeomError::NonFiniteCoordinate(hi));
        }
        if lo > hi {
            return Err(GeomError::InvertedInterval { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[p, p]`.
    #[inline]
    pub fn point(p: f64) -> Self {
        Interval { lo: p, hi: p }
    }

    /// The unbounded interval `(-inf, +inf)`.
    #[inline]
    pub fn unbounded() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Length `hi - lo` (zero for degenerate intervals).
    #[inline]
    pub fn len(self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when the interval is a single point.
    #[inline]
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Midpoint `(lo + hi) / 2`. For half-unbounded intervals this returns
    /// the finite endpoint; for fully unbounded intervals, `0.0`.
    #[inline]
    pub fn center(self) -> f64 {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => (self.lo + self.hi) / 2.0,
            (true, false) => self.lo,
            (false, true) => self.hi,
            (false, false) => 0.0,
        }
    }

    /// `true` when `x` lies within the interval, with absolute slack `eps`.
    #[inline]
    pub fn contains(self, x: f64, eps: f64) -> bool {
        x >= self.lo - eps && x <= self.hi + eps
    }

    /// Intersection with `other`, or `None` when they are disjoint.
    #[inline]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Expands both endpoints outward by `r` (Minkowski sum with `[-r, r]`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `r < 0`; shrinking is not a defined
    /// operation for this type (it could empty the interval).
    #[inline]
    pub fn expand(self, r: f64) -> Interval {
        debug_assert!(r >= 0.0, "expand requires a non-negative radius");
        Interval {
            lo: self.lo - r,
            hi: self.hi + r,
        }
    }

    /// Distance between `self` and `other` as sets: `0` when they overlap,
    /// otherwise the length of the gap separating them.
    #[inline]
    pub fn gap(self, other: Interval) -> f64 {
        (self.lo - other.hi).max(other.lo - self.hi).max(0.0)
    }

    /// Clamps `x` into the interval: the nearest point of the interval.
    #[inline]
    pub fn clamp(self, x: f64) -> f64 {
        x.max(self.lo).min(self.hi)
    }

    /// Smallest interval containing both `self` and `other` (convex hull).
    #[inline]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validates() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(f64::NAN, 0.0).is_err());
        assert!(Interval::new(0.0, f64::NAN).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_ok());
        assert!(Interval::new(2.0, 2.0).is_ok());
    }

    #[test]
    fn basic_queries() {
        let i = Interval::new(-1.0, 3.0).unwrap();
        assert_eq!(i.len(), 4.0);
        assert_eq!(i.center(), 1.0);
        assert!(!i.is_point());
        assert!(i.contains(3.0, 0.0));
        assert!(i.contains(3.0000001, 1e-6));
        assert!(!i.contains(3.1, 1e-6));
        assert!(Interval::point(5.0).is_point());
    }

    #[test]
    fn intersection_cases() {
        let a = Interval::new(0.0, 2.0).unwrap();
        let b = Interval::new(2.0, 5.0).unwrap();
        let c = Interval::new(3.0, 4.0).unwrap();
        assert_eq!(a.intersect(b), Some(Interval::point(2.0)));
        assert_eq!(a.intersect(c), None);
        assert_eq!(b.intersect(c), Some(c));
    }

    #[test]
    fn gap_and_expand_duality() {
        let a = Interval::new(0.0, 1.0).unwrap();
        let b = Interval::new(4.0, 5.0).unwrap();
        let g = a.gap(b);
        assert_eq!(g, 3.0);
        // Expanding by the gap makes them touch.
        assert!(a.expand(g).intersect(b).is_some());
        // Expanding by slightly less keeps them disjoint.
        assert!(a.expand(g - 1e-9).intersect(b).is_none());
    }

    #[test]
    fn clamp_and_hull() {
        let i = Interval::new(0.0, 2.0).unwrap();
        assert_eq!(i.clamp(-1.0), 0.0);
        assert_eq!(i.clamp(1.5), 1.5);
        assert_eq!(i.clamp(9.0), 2.0);
        let h = i.hull(Interval::point(7.0));
        assert_eq!((h.lo(), h.hi()), (0.0, 7.0));
    }

    #[test]
    fn unbounded_center_is_finite() {
        assert_eq!(Interval::unbounded().center(), 0.0);
        let half = Interval::new(3.0, f64::INFINITY).unwrap();
        assert_eq!(half.center(), 3.0);
    }

    proptest! {
        #[test]
        fn prop_intersection_commutes(
            a in -100.0..100.0f64, al in 0.0..50.0f64,
            b in -100.0..100.0f64, bl in 0.0..50.0f64,
        ) {
            let x = Interval::new(a, a + al).unwrap();
            let y = Interval::new(b, b + bl).unwrap();
            prop_assert_eq!(x.intersect(y), y.intersect(x));
        }

        #[test]
        fn prop_gap_zero_iff_intersect(
            a in -100.0..100.0f64, al in 0.0..50.0f64,
            b in -100.0..100.0f64, bl in 0.0..50.0f64,
        ) {
            let x = Interval::new(a, a + al).unwrap();
            let y = Interval::new(b, b + bl).unwrap();
            prop_assert_eq!(x.gap(y) == 0.0, x.intersect(y).is_some());
        }

        #[test]
        fn prop_expand_monotone(
            a in -100.0..100.0f64, al in 0.0..50.0f64, r in 0.0..10.0f64, x in -200.0..200.0f64,
        ) {
            let i = Interval::new(a, a + al).unwrap();
            if i.contains(x, 0.0) {
                prop_assert!(i.expand(r).contains(x, 0.0));
            }
        }

        #[test]
        fn prop_clamp_is_nearest(
            a in -100.0..100.0f64, al in 0.0..50.0f64, x in -200.0..200.0f64,
        ) {
            let i = Interval::new(a, a + al).unwrap();
            let c = i.clamp(x);
            prop_assert!(i.contains(c, 0.0));
            // No interval point is closer to x than the clamp.
            for t in [i.lo(), i.center(), i.hi()] {
                prop_assert!((x - c).abs() <= (x - t).abs() + 1e-12);
            }
        }
    }
}
