use std::fmt;

/// A point in the Manhattan plane.
///
/// `Point` is a passive value type: both coordinates are public and every
/// finite `f64` pair is a valid point. The primary metric is [`Point::dist`],
/// the Manhattan (L1) distance; the Euclidean distance is provided only for
/// the §4.7 counterexample showing the EBF method does *not* transfer to the
/// Euclidean metric.
///
/// # Example
///
/// ```
/// use lubt_geom::Point;
/// let p = Point::new(1.0, 2.0);
/// let q = Point::new(4.0, 0.0);
/// assert_eq!(p.dist(q), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Manhattan (L1) distance to `other`; this is the routing metric of the
    /// paper.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`. Used only to demonstrate that the
    /// Steiner constraints are *not* sufficient in the Euclidean metric
    /// (§4.7 of the paper).
    #[inline]
    pub fn dist_euclid(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Rotated coordinate `u = x + y`. In `(u, v)` space the Manhattan
    /// metric becomes Chebyshev, which makes TRR algebra interval
    /// arithmetic.
    #[inline]
    pub fn u(self) -> f64 {
        self.x + self.y
    }

    /// Rotated coordinate `v = x - y`.
    #[inline]
    pub fn v(self) -> f64 {
        self.x - self.y
    }

    /// Reconstructs a point from rotated coordinates `(u, v)`.
    #[inline]
    pub fn from_uv(u: f64, v: f64) -> Self {
        Point::new((u + v) / 2.0, (u - v) / 2.0)
    }

    /// Midpoint of the straight segment `self..other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// `true` when both coordinates are finite (not NaN, not infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// Axis-aligned bounding box `(min, max)` of a non-empty point set.
///
/// Returns `None` for an empty iterator.
///
/// # Example
///
/// ```
/// use lubt_geom::{bounding_box, Point};
/// let pts = [Point::new(1.0, 5.0), Point::new(3.0, -2.0)];
/// let (lo, hi) = bounding_box(pts).unwrap();
/// assert_eq!((lo.x, lo.y, hi.x, hi.y), (1.0, -2.0, 3.0, 5.0));
/// ```
pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<(Point, Point)> {
    let mut it = points.into_iter();
    let first = it.next()?;
    let mut lo = first;
    let mut hi = first;
    for p in it {
        lo.x = lo.x.min(p.x);
        lo.y = lo.y.min(p.y);
        hi.x = hi.x.max(p.x);
        hi.y = hi.y.max(p.y);
    }
    Some((lo, hi))
}

/// Manhattan diameter of a point set: the largest pairwise Manhattan
/// distance. The paper defines the *radius* of a source-less instance as half
/// of this diameter.
///
/// Computed in `O(n)` using the rotated-coordinate identity
/// `L1(p, q) = max(|Δu|, |Δv|)`: the diameter is the larger of the `u`-spread
/// and the `v`-spread.
///
/// Returns `0.0` for sets with fewer than two points.
///
/// # Example
///
/// ```
/// use lubt_geom::{diameter, Point};
/// let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0), Point::new(1.0, 1.0)];
/// assert_eq!(diameter(pts.iter().copied()), 7.0);
/// ```
pub fn diameter<I: IntoIterator<Item = Point>>(points: I) -> f64 {
    let mut u_lo = f64::INFINITY;
    let mut u_hi = f64::NEG_INFINITY;
    let mut v_lo = f64::INFINITY;
    let mut v_hi = f64::NEG_INFINITY;
    let mut n = 0usize;
    for p in points {
        u_lo = u_lo.min(p.u());
        u_hi = u_hi.max(p.u());
        v_lo = v_lo.min(p.v());
        v_hi = v_hi.max(p.v());
        n += 1;
    }
    if n < 2 {
        0.0
    } else {
        (u_hi - u_lo).max(v_hi - v_lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a.dist(b), 7.0);
        assert_eq!(b.dist(a), 7.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn euclidean_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist_euclid(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rotated_roundtrip() {
        let p = Point::new(1.25, -7.5);
        let q = Point::from_uv(p.u(), p.v());
        assert!((p.x - q.x).abs() < 1e-12 && (p.y - q.y).abs() < 1e-12);
    }

    #[test]
    fn manhattan_is_chebyshev_in_uv() {
        let p = Point::new(2.0, 3.0);
        let q = Point::new(-1.0, 5.0);
        let cheb = (p.u() - q.u()).abs().max((p.v() - q.v()).abs());
        assert!((p.dist(q) - cheb).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 6.0);
        let m = p.midpoint(q);
        assert_eq!(m, Point::new(2.0, 3.0));
        assert!((p.dist(m) - q.dist(m)).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_empty_and_single() {
        assert!(bounding_box(std::iter::empty::<Point>()).is_none());
        let (lo, hi) = bounding_box([Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(lo, hi);
    }

    #[test]
    fn diameter_matches_bruteforce() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 1.0),
            Point::new(-3.0, 8.0),
            Point::new(5.0, -6.0),
        ];
        let mut best = 0.0f64;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                best = best.max(pts[i].dist(pts[j]));
            }
        }
        assert!((diameter(pts.iter().copied()) - best).abs() < 1e-12);
    }

    #[test]
    fn diameter_degenerate() {
        assert_eq!(diameter(std::iter::empty::<Point>()), 0.0);
        assert_eq!(diameter([Point::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
