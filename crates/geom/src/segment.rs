use crate::{GeomError, Point, GEOM_EPS};

/// Total Manhattan length of a rectilinear polyline.
///
/// # Example
///
/// ```
/// use lubt_geom::{polyline_length, Point};
/// let path = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(2.0, 3.0)];
/// assert_eq!(polyline_length(&path), 5.0);
/// ```
pub fn polyline_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].dist(w[1])).sum()
}

/// Constructs a rectilinear polyline from `from` to `to` whose total
/// Manhattan length is exactly `length`.
///
/// The EBF determines *edge lengths*, and an optimal solution may assign an
/// edge more wire than the distance between its endpoints (`e_i` is
/// *elongated*, in the paper's terminology). Physical routing then realizes
/// the surplus by *snaking* the wire. This function materializes such a
/// route: an L-shaped backbone plus, when `length > dist(from, to)`, a
/// perpendicular detour of depth `(length - dist) / 2`.
///
/// # Errors
///
/// Returns [`GeomError::RouteTooShort`] when `length < dist(from, to) - eps`
/// and [`GeomError::NegativeLength`] for negative `length`.
///
/// # Example
///
/// ```
/// use lubt_geom::{polyline_length, route_with_length, Point};
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 1.0);
/// let path = route_with_length(a, b, 10.0)?;
/// assert!((polyline_length(&path) - 10.0).abs() < 1e-9);
/// assert_eq!(*path.first().unwrap(), a);
/// assert_eq!(*path.last().unwrap(), b);
/// # Ok::<(), lubt_geom::GeomError>(())
/// ```
pub fn route_with_length(from: Point, to: Point, length: f64) -> Result<Vec<Point>, GeomError> {
    if length < 0.0 {
        return Err(GeomError::NegativeLength(length));
    }
    let d = from.dist(to);
    if length < d - GEOM_EPS {
        return Err(GeomError::RouteTooShort {
            requested: length,
            minimum: d,
        });
    }
    let surplus = (length - d).max(0.0);

    // Degenerate edge with no surplus: a single point (or the two coincident
    // endpoints).
    if d <= GEOM_EPS && surplus <= GEOM_EPS {
        return Ok(vec![from, to]);
    }

    let mut path = vec![from];
    if surplus > GEOM_EPS {
        // Detour first: walk `surplus / 2` away from the target along one
        // axis and come back, so the added wire is exactly `surplus`.
        let detour = surplus / 2.0;
        // Detour along the axis with *less* forward travel, to keep the
        // route visually compact; direction away from `to`.
        let (dx, dy) = (to.x - from.x, to.y - from.y);
        if dx.abs() >= dy.abs() {
            let dir = if dy >= 0.0 { -1.0 } else { 1.0 };
            path.push(Point::new(from.x, from.y + dir * detour));
            path.push(Point::new(from.x, from.y));
        } else {
            let dir = if dx >= 0.0 { -1.0 } else { 1.0 };
            path.push(Point::new(from.x + dir * detour, from.y));
            path.push(Point::new(from.x, from.y));
        }
    }
    // L-shaped backbone: horizontal then vertical.
    if (to.x - from.x).abs() > GEOM_EPS && (to.y - from.y).abs() > GEOM_EPS {
        path.push(Point::new(to.x, from.y));
    }
    path.push(to);
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tight_route_is_l_shape() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 3.0);
        let path = route_with_length(a, b, 7.0).unwrap();
        assert_eq!(path.len(), 3);
        assert!((polyline_length(&path) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn straight_route_has_no_bend() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let path = route_with_length(a, b, 4.0).unwrap();
        assert_eq!(path, vec![a, b]);
    }

    #[test]
    fn elongated_route_realizes_exact_length() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(1.0, 5.0);
        let path = route_with_length(a, b, 9.0).unwrap();
        assert!((polyline_length(&path) - 9.0).abs() < 1e-12);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
    }

    #[test]
    fn degenerate_edge_with_surplus_snakes() {
        let a = Point::new(2.0, 2.0);
        let path = route_with_length(a, a, 6.0).unwrap();
        assert!((polyline_length(&path) - 6.0).abs() < 1e-12);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), a);
    }

    #[test]
    fn too_short_is_rejected() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 0.0);
        assert!(matches!(
            route_with_length(a, b, 3.0),
            Err(GeomError::RouteTooShort { .. })
        ));
        assert!(matches!(
            route_with_length(a, b, -1.0),
            Err(GeomError::NegativeLength(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_route_length_exact(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64,
            extra in 0.0..100.0f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let len = a.dist(b) + extra;
            let path = route_with_length(a, b, len).unwrap();
            prop_assert!((polyline_length(&path) - len).abs() < 1e-9);
            prop_assert_eq!(*path.first().unwrap(), a);
            prop_assert_eq!(*path.last().unwrap(), b);
            // Rectilinear: every leg is axis-aligned.
            for w in path.windows(2) {
                let horiz = (w[0].y - w[1].y).abs() < 1e-12;
                let vert = (w[0].x - w[1].x).abs() < 1e-12;
                prop_assert!(horiz || vert);
            }
        }
    }
}
