use crate::{Interval, Point, GEOM_EPS};
use std::fmt;

/// A *Tilted Rectangular Region* (TRR): a rectangle whose sides are at ±45°
/// to the axes of the Manhattan plane.
///
/// TRRs are the feasible-region currency of the DME-style embedder (§5 of
/// the paper): the locus of points within Manhattan distance `r` of a point
/// is a "diamond" (a square TRR), the locus within `r` of a TRR is again a
/// TRR, and intersections of TRRs are TRRs. Crucially, TRRs enjoy the
/// **Helly property** in the Manhattan plane (Lemma 10.1): if a family of
/// TRRs intersects pairwise, it has a common point. This is what makes the
/// pairwise Steiner constraints of the EBF *sufficient* (Theorem 4.1) — and
/// it is false for disks in the Euclidean plane, which is why the EBF method
/// does not transfer to the Euclidean metric (§4.7).
///
/// # Representation
///
/// Internally a TRR is an axis-aligned rectangle in the rotated coordinates
/// `u = x + y`, `v = x - y`, where the Manhattan metric becomes the Chebyshev
/// metric. Expansion, intersection, distance and nearest-point queries all
/// reduce to [`Interval`] arithmetic.
///
/// Degenerate TRRs are first-class: a zero-width TRR is a ±45° line segment
/// (a zero-skew *merging segment*), and a TRR that is a single point is used
/// for sink locations.
///
/// # Example
///
/// ```
/// use lubt_geom::{Point, Trr};
/// let sink = Trr::from_point(Point::new(10.0, 0.0));
/// // Every location reachable with 5 units of wire from the sink:
/// let reach = sink.expanded(5.0);
/// assert!(reach.contains(Point::new(12.0, 3.0)));
/// assert!(!reach.contains(Point::new(12.0, 4.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trr {
    u: Interval,
    v: Interval,
}

impl Trr {
    /// TRR consisting of the single point `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Trr {
            u: Interval::point(p.u()),
            v: Interval::point(p.v()),
        }
    }

    /// Square TRR of all points within Manhattan distance `radius` of
    /// `center` (a "diamond" in `x, y` space — the Manhattan analogue of a
    /// circle).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `radius < 0`.
    #[inline]
    pub fn from_center_radius(center: Point, radius: f64) -> Self {
        Trr::from_point(center).expanded(radius)
    }

    /// Builds a TRR directly from rotated-coordinate intervals.
    ///
    /// This is the low-level constructor; most callers want
    /// [`Trr::from_point`] / [`Trr::from_center_radius`].
    #[inline]
    pub fn from_uv(u: Interval, v: Interval) -> Self {
        Trr { u, v }
    }

    /// The `u = x + y` extent.
    #[inline]
    pub fn u(self) -> Interval {
        self.u
    }

    /// The `v = x - y` extent.
    #[inline]
    pub fn v(self) -> Interval {
        self.v
    }

    /// `TRR(self, r)`: all points within Manhattan distance `r` of this TRR
    /// (Minkowski sum with the radius-`r` diamond).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `r < 0`.
    #[inline]
    pub fn expanded(self, r: f64) -> Trr {
        Trr {
            u: self.u.expand(r),
            v: self.v.expand(r),
        }
    }

    /// Intersection with `other`, or `None` when the regions are disjoint.
    #[inline]
    pub fn intersect(&self, other: &Trr) -> Option<Trr> {
        Some(Trr {
            u: self.u.intersect(other.u)?,
            v: self.v.intersect(other.v)?,
        })
    }

    /// Minimum Manhattan distance between the two regions (zero when they
    /// intersect).
    ///
    /// In rotated coordinates this is the Chebyshev distance between
    /// rectangles: the larger of the per-axis gaps.
    #[inline]
    pub fn dist(&self, other: &Trr) -> f64 {
        self.u.gap(other.u).max(self.v.gap(other.v))
    }

    /// Minimum Manhattan distance from `p` to the region (zero when inside).
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.dist(&Trr::from_point(p))
    }

    /// Membership test with the crate-wide tolerance [`GEOM_EPS`].
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.contains_with_eps(p, GEOM_EPS)
    }

    /// Membership test with an explicit absolute tolerance.
    #[inline]
    pub fn contains_with_eps(&self, p: Point, eps: f64) -> bool {
        self.u.contains(p.u(), eps) && self.v.contains(p.v(), eps)
    }

    /// A deterministic representative interior point (the center).
    #[inline]
    pub fn center(self) -> Point {
        Point::from_uv(self.u.center(), self.v.center())
    }

    /// The point of the region nearest to `p` in the Manhattan metric
    /// (`p` itself when `p` is inside).
    #[inline]
    pub fn closest_point_to(&self, p: Point) -> Point {
        Point::from_uv(self.u.clamp(p.u()), self.v.clamp(p.v()))
    }

    /// Width: the length of the *shorter* pair of sides. Zero-width TRRs are
    /// line segments (the merging segments of zero-skew DME).
    ///
    /// Note that side lengths in `x, y` space are the interval lengths
    /// divided by √2; we report rotated-space lengths consistently since
    /// only comparisons against zero matter to the algorithms.
    #[inline]
    pub fn width(self) -> f64 {
        self.u.len().min(self.v.len())
    }

    /// `true` when the region degenerates to a ±45° segment or a point.
    #[inline]
    pub fn is_segment(self) -> bool {
        self.u.is_point() || self.v.is_point()
    }

    /// `true` when the region is a single point.
    #[inline]
    pub fn is_point(self) -> bool {
        self.u.is_point() && self.v.is_point()
    }

    /// `true` when every side has the same length (the Manhattan analogue of
    /// a circle; it has a center and a radius).
    #[inline]
    pub fn is_square(self) -> bool {
        (self.u.len() - self.v.len()).abs() <= GEOM_EPS
    }

    /// Radius of a square TRR: Manhattan distance from the center to the
    /// boundary. For non-square TRRs this is the *inradius*.
    #[inline]
    pub fn radius(self) -> f64 {
        self.width() / 2.0
    }

    /// The four corners in `(x, y)` space, in counterclockwise order
    /// starting from the corner with maximal `u` (the "east" vertex of the
    /// diamond). Degenerate TRRs repeat corners.
    pub fn corners(self) -> [Point; 4] {
        [
            Point::from_uv(self.u.hi(), self.v.center()),
            Point::from_uv(self.u.center(), self.v.lo()),
            Point::from_uv(self.u.lo(), self.v.center()),
            Point::from_uv(self.u.center(), self.v.hi()),
        ]
    }

    /// Intersects a non-empty family of TRRs, returning `None` as soon as
    /// the running intersection becomes empty.
    ///
    /// By the Helly property (Lemma 10.1), the result is non-empty whenever
    /// all *pairs* intersect — see `common_intersection` tests.
    pub fn intersect_all<I: IntoIterator<Item = Trr>>(regions: I) -> Option<Trr> {
        let mut it = regions.into_iter();
        let mut acc = it.next()?;
        for r in it {
            acc = acc.intersect(&r)?;
        }
        Some(acc)
    }
}

impl fmt::Display for Trr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TRR{{u: {}, v: {}}}", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond(x: f64, y: f64, r: f64) -> Trr {
        Trr::from_center_radius(Point::new(x, y), r)
    }

    #[test]
    fn point_trr_roundtrip() {
        let p = Point::new(3.0, -2.0);
        let t = Trr::from_point(p);
        assert!(t.is_point());
        assert_eq!(t.center(), p);
        assert!(t.contains(p));
    }

    #[test]
    fn diamond_contains_exactly_ball() {
        let c = Point::new(1.0, 1.0);
        let t = Trr::from_center_radius(c, 2.0);
        assert!(t.contains(Point::new(3.0, 1.0)));
        assert!(t.contains(Point::new(2.0, 2.0)));
        assert!(!t.contains(Point::new(3.0, 1.1)));
        assert!(t.is_square());
        assert!((t.radius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_matches_distance() {
        // TRR(A, r) contains p  <=>  dist(A, {p}) <= r
        let a = diamond(0.0, 0.0, 1.0);
        let p = Point::new(4.0, 0.0);
        let d = a.dist_to_point(p);
        assert!((d - 3.0).abs() < 1e-12);
        assert!(a.expanded(d).contains(p));
        assert!(!a.expanded(d - 1e-3).contains_with_eps(p, 1e-9));
    }

    #[test]
    fn intersection_of_two_diamonds() {
        // Figure 6 flavour: two sinks with wire budgets meeting halfway.
        let fa = diamond(0.0, 0.0, 3.0);
        let fb = diamond(6.0, 0.0, 3.0);
        let meet = fa.intersect(&fb).expect("should touch");
        // They meet exactly at (3, 0).
        assert!(meet.contains(Point::new(3.0, 0.0)));
        assert!(meet.is_segment() || meet.width() < 1e-12);
    }

    #[test]
    fn disjoint_diamonds() {
        let a = diamond(0.0, 0.0, 1.0);
        let b = diamond(10.0, 0.0, 2.0);
        assert!(a.intersect(&b).is_none());
        assert!((a.dist(&b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tsay_style_merging_segment_is_trr() {
        // A zero-width TRR is still a TRR (paper, §5).
        let seg = Trr::from_uv(Interval::point(2.0), Interval::new(-1.0, 1.0).unwrap());
        assert!(seg.is_segment());
        assert!(!seg.is_point());
        let grown = seg.expanded(1.0);
        assert!(!grown.is_segment());
        assert_eq!(grown.width(), 2.0);
    }

    #[test]
    fn closest_point_is_inside_and_nearest() {
        let t = diamond(0.0, 0.0, 2.0);
        let p = Point::new(5.0, 1.0);
        let q = t.closest_point_to(p);
        assert!(t.contains(q));
        assert!((p.dist(q) - t.dist_to_point(p)).abs() < 1e-9);
        // Interior points map to themselves.
        let inside = Point::new(0.5, 0.5);
        assert_eq!(t.closest_point_to(inside), inside);
    }

    #[test]
    fn corners_lie_on_boundary() {
        let t = diamond(1.0, 2.0, 3.0);
        for c in t.corners() {
            assert!(t.contains(c));
            assert!((t.center().dist(c) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn intersect_all_short_circuits() {
        let family = vec![
            diamond(0.0, 0.0, 2.0),
            diamond(2.0, 0.0, 2.0),
            diamond(1.0, 1.0, 2.0),
        ];
        let common = Trr::intersect_all(family).unwrap();
        assert!(common.contains(Point::new(1.0, 0.5)));
        assert!(Trr::intersect_all(std::iter::empty()).is_none());
    }

    #[test]
    fn helly_failure_needs_disjoint_pair() {
        // Three diamonds that pairwise intersect MUST share a common point
        // (Lemma 10.1) - contrast with three circles in Euclidean space.
        let a = diamond(0.0, 0.0, 2.0);
        let b = diamond(3.0, 0.0, 2.0);
        let c = diamond(1.5, 2.0, 2.0);
        assert!(a.intersect(&b).is_some());
        assert!(b.intersect(&c).is_some());
        assert!(a.intersect(&c).is_some());
        assert!(Trr::intersect_all([a, b, c]).is_some());
    }

    proptest! {
        /// Randomized Helly-property check (Lemma 10.1): pairwise
        /// intersection of diamonds implies common intersection.
        #[test]
        fn prop_helly_property(
            centers in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..8),
            radii in proptest::collection::vec(1.0..40.0f64, 8),
        ) {
            let trrs: Vec<Trr> = centers
                .iter()
                .zip(radii.iter())
                .map(|(&(x, y), &r)| diamond(x, y, r))
                .collect();
            let pairwise = (0..trrs.len()).all(|i| {
                (i + 1..trrs.len()).all(|j| trrs[i].intersect(&trrs[j]).is_some())
            });
            if pairwise {
                prop_assert!(Trr::intersect_all(trrs.iter().copied()).is_some());
            }
        }

        /// dist(A, B) is exactly the smallest r with TRR(A, r) ∩ B != ∅.
        #[test]
        fn prop_distance_expansion_duality(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64, ar in 0.0..20.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64, br in 0.0..20.0f64,
        ) {
            let a = diamond(ax, ay, ar);
            let b = diamond(bx, by, br);
            let d = a.dist(&b);
            prop_assert!(a.expanded(d + 1e-9).intersect(&b).is_some());
            if d > 1e-6 {
                prop_assert!(a.expanded(d - 1e-6).intersect(&b).is_none());
            }
        }

        /// The closest point really achieves the set distance.
        #[test]
        fn prop_closest_point_achieves_distance(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64, ar in 0.0..20.0f64,
            px in -80.0..80.0f64, py in -80.0..80.0f64,
        ) {
            let a = diamond(ax, ay, ar);
            let p = Point::new(px, py);
            let q = a.closest_point_to(p);
            prop_assert!(a.contains(q));
            prop_assert!((p.dist(q) - a.dist_to_point(p)).abs() < 1e-9);
        }

        /// Distance between diamonds matches the center formula
        /// max(0, dist(centers) - r1 - r2).
        #[test]
        fn prop_diamond_distance_formula(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64, ar in 0.0..20.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64, br in 0.0..20.0f64,
        ) {
            let a = diamond(ax, ay, ar);
            let b = diamond(bx, by, br);
            let expect = (Point::new(ax, ay).dist(Point::new(bx, by)) - ar - br).max(0.0);
            prop_assert!((a.dist(&b) - expect).abs() < 1e-9);
        }
    }
}
