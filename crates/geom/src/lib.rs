//! Manhattan-plane geometry substrate for LUBT routing-tree construction.
//!
//! This crate provides the geometric machinery used by the Edge-Based
//! Formulation (EBF) of Oh, Pyo and Pedram (DAC 1996) and by the baseline
//! clock-routing constructions:
//!
//! * [`Point`] — a point in the Manhattan (rectilinear) plane, with the
//!   Manhattan distance as the primary metric.
//! * [`Interval`] — closed 1-D intervals, the building block of region types.
//! * [`Trr`] — *Tilted Rectangular Regions*: rectangles rotated 45° from the
//!   axes. Under the rotation `u = x + y`, `v = x - y` the Manhattan metric
//!   becomes the Chebyshev metric, so every TRR is an axis-aligned rectangle
//!   in `(u, v)` space and all TRR algebra (expansion by a radius,
//!   intersection, distance, nearest point) reduces to interval arithmetic.
//!   TRRs satisfy the Helly property in the Manhattan plane (Lemma 10.1 of
//!   the paper), which is the foundation of Theorem 4.1 (sufficiency of the
//!   Steiner constraints).
//! * [`Octilinear`] — convex octagonal regions (bounds on `x`, `y`, `x + y`
//!   and `x - y`), used by the bounded-skew baseline whose feasible merging
//!   regions are octilinear polygons.
//! * [`route_with_length`] — rectilinear polyline construction realizing a
//!   prescribed (possibly elongated) wirelength between two points, used to
//!   materialize *wire snaking* when the LP elongates an edge.
//!
//! # Example
//!
//! ```
//! use lubt_geom::{Point, Trr};
//!
//! let a = Point::new(0.0, 0.0);
//! let b = Point::new(4.0, 2.0);
//! assert_eq!(a.dist(b), 6.0);
//!
//! // All points within Manhattan distance 3 of `a`, and within 4 of `b`:
//! let ta = Trr::from_center_radius(a, 3.0);
//! let tb = Trr::from_center_radius(b, 4.0);
//! let meet = ta.intersect(&tb).expect("regions overlap");
//! let p = meet.center();
//! assert!(a.dist(p) <= 3.0 + 1e-9 && b.dist(p) <= 4.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod interval;
mod octilinear;
mod point;
mod segment;
mod trr;

pub use error::GeomError;
pub use interval::Interval;
pub use octilinear::Octilinear;
pub use point::{bounding_box, diameter, Point};
pub use segment::{polyline_length, route_with_length};
pub use trr::Trr;

/// Absolute tolerance used by containment/feasibility predicates throughout
/// the geometry layer.
///
/// Coordinates in the benchmark instances are O(1e4..1e5); `f64` keeps ~15-16
/// significant digits, so 1e-6 absolute slack is safely above rounding noise
/// while far below any meaningful wirelength.
pub const GEOM_EPS: f64 = 1e-6;
