//! Property tests of the parallel separation oracle and the parallel solve
//! path: for any instance and any thread count, results must be
//! bit-for-bit identical to the sequential reference.

use lubt_core::{
    violated_pairs, violated_pairs_with_threads, DelayBounds, EbfSolver, LubtBuilder, SteinerMode,
};
use lubt_geom::Point;
use proptest::prelude::*;

fn sink_set(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0..200.0f64, 0.0..200.0f64).prop_map(|(x, y)| Point::new(x, y)),
        2..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel oracle returns the exact serial cut sequence — same
    /// pairs, same order, same violation bits — for every thread count,
    /// including counts far above the pair-row count.
    #[test]
    fn parallel_oracle_equals_serial_reference(
        sinks in sink_set(64),
        scale in 0.0..2.0f64,
    ) {
        let m = sinks.len();
        let problem = LubtBuilder::new(sinks)
            .bounds(DelayBounds::unbounded(m))
            .build()
            .expect("valid instance");
        // Deliberately short lengths so a scale-dependent subset of the
        // Steiner constraints is violated.
        let lengths = vec![scale; problem.topology().num_nodes()];
        let serial = violated_pairs(&problem, &lengths, 1e-9);
        for threads in [2usize, 3, 7, 16, 0] {
            let par = violated_pairs_with_threads(&problem, &lengths, 1e-9, threads);
            prop_assert_eq!(par.len(), serial.len(), "threads={}", threads);
            for (k, (s, p)) in serial.iter().zip(par.iter()).enumerate() {
                prop_assert!(
                    s.0.a == p.0.a && s.0.b == p.0.b && s.1.to_bits() == p.1.to_bits(),
                    "threads={}: cut {} diverged: serial ({}, {}, {}) vs parallel ({}, {}, {})",
                    threads, k, s.0.a, s.0.b, s.1, p.0.a, p.0.b, p.1
                );
            }
        }
    }

    /// Full solves agree between 1 and 4 oracle threads across random
    /// mixes of eager and lazy configurations: identical edge-length bits
    /// and identical solve reports.
    #[test]
    fn full_solve_is_thread_invariant_across_steiner_modes(
        sinks in sink_set(16),
        lower_frac in 0.0..1.0f64,
        eager in proptest::bool::ANY,
        tight_budget in proptest::bool::ANY,
    ) {
        let m = sinks.len();
        let radius = lubt_delay::skew::radius_free(&sinks);
        prop_assume!(radius > 1.0);
        let mode = if eager {
            SteinerMode::Eager
        } else if tight_budget {
            // Tiny budget exercises the max_rounds safety net under
            // parallel separation as well.
            SteinerMode::Lazy { max_rounds: 2, batch: 2 }
        } else {
            SteinerMode::default_lazy()
        };
        let problem = LubtBuilder::new(sinks)
            .bounds(DelayBounds::uniform(m, lower_frac * radius, 1.6 * radius))
            .build()
            .expect("valid instance");
        let solve = |threads: usize| {
            EbfSolver::new()
                .with_steiner_mode(mode)
                .with_threads(threads)
                .solve(&problem)
                .expect("window above the radius is feasible")
        };
        let (base_lengths, base_report) = solve(1);
        let (par_lengths, par_report) = solve(4);
        for (k, (a, b)) in base_lengths.iter().zip(&par_lengths).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "mode {:?}: edge e_{} diverged: {} vs {}",
                mode, k, a, b
            );
        }
        prop_assert_eq!(base_report, par_report, "mode {:?}", mode);
    }
}
