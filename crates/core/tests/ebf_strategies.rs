//! Cross-validation of EBF solving strategies on random instances: lazy
//! separation (incremental dual-simplex session) vs. eager materialization
//! of all C(m,2) rows must reach the same optimum — the §4.6 reduction is
//! exact, not approximate.

use lubt_core::{DelayBounds, EbfSolver, LubtProblem, SteinerMode};
use lubt_delay::linear::tree_cost;
use lubt_geom::Point;
use lubt_topology::{nearest_neighbor_topology, SourceMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_equals_eager_on_random_instances(
        sinks in proptest::collection::vec(
            (0.0..200.0f64, 0.0..200.0f64).prop_map(|(x, y)| Point::new(x, y)),
            2..10,
        ),
        lower_frac in 0.0..1.0f64,
        width_frac in 0.1..1.0f64,
        sx in 0.0..200.0f64,
        sy in 0.0..200.0f64,
    ) {
        let m = sinks.len();
        let source = Point::new(sx, sy);
        let radius = sinks.iter().map(|s| source.dist(*s)).fold(0.0f64, f64::max);
        prop_assume!(radius > 1.0);
        let topo = nearest_neighbor_topology(&sinks, SourceMode::Given);
        let l = lower_frac * radius;
        let u = (lower_frac + width_frac).max(1.0) * radius + 1e-9;
        let problem = LubtProblem::new(
            sinks.clone(),
            Some(source),
            topo,
            DelayBounds::uniform(m, l.min(u), u),
        )
        .expect("valid problem");

        let (lazy, lazy_rep) = EbfSolver::new().solve(&problem).expect("feasible");
        let (eager, eager_rep) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Eager)
            .solve(&problem)
            .expect("feasible");
        let scale = 1.0 + tree_cost(&eager);
        prop_assert!(
            (tree_cost(&lazy) - tree_cost(&eager)).abs() / scale < 1e-6,
            "lazy {} vs eager {}",
            tree_cost(&lazy),
            tree_cost(&eager)
        );
        // The reduction really reduces: lazy never materializes more rows
        // than eager.
        prop_assert!(lazy_rep.steiner_rows <= eager_rep.steiner_rows);
        prop_assert_eq!(eager_rep.steiner_rows, m * (m - 1) / 2);
    }
}
