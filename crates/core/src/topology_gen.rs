//! Bound-aware topology generation — the paper's §9 future-work item.
//!
//! The topology generator the paper adopted from \[9\] is guided only by
//! the *skew* budget; §9 calls for "better topology generation which is
//! guided by both the lower and the upper bounds". This module implements
//! that: a nearest-neighbor merge whose pairing metric accounts for the
//! **arrival-window compatibility** of the clusters being merged.
//!
//! Every cluster carries the interval `W` of *root arrival times* that
//! would put all of its sinks inside their `[l_i, u_i]` windows
//! (`W = ∩_i [l_i - d_i, u_i - d_i]`, `d_i` the in-cluster delay to sink
//! `i`). Merging clusters whose windows are far apart forces detour wire;
//! the pairing metric therefore charges, on top of the Manhattan distance,
//! the unavoidable window gap after the best split of the joining wire.
//! For uniform bounds the metric degenerates to plain nearest-neighbor
//! merging, so nothing is lost on the classic workloads.

use crate::{DelayBounds, LubtError};
use lubt_geom::{Interval, Point};
use lubt_topology::{MergeTreeBuilder, SourceMode, Topology};

#[derive(Clone)]
struct Cluster {
    handle: lubt_topology::ClusterId,
    rep: Point,
    /// Feasible root arrival window.
    window: Interval,
}

/// Best split of a joining wire of length `d` between windows `wa`, `wb`:
/// returns `(ea, gap)` where `ea` is the wire on `a`'s side and `gap` the
/// residual window incompatibility (0 when the shifted windows overlap —
/// the detour wire a merge would eventually force).
fn best_split(wa: Interval, wb: Interval, d: f64) -> (f64, f64) {
    // Shifting by ea / (d - ea) moves the window centers; align them.
    let ea = ((wa.center() - wb.center() + d) / 2.0).clamp(0.0, d);
    let a_shifted = Interval::new(wa.lo() - ea, wa.hi() - ea).expect("shift keeps order");
    let eb = d - ea;
    let b_shifted = Interval::new(wb.lo() - eb, wb.hi() - eb).expect("shift keeps order");
    (ea, a_shifted.gap(b_shifted))
}

/// Generates a full binary topology guided by per-sink delay windows.
///
/// # Errors
///
/// Returns [`LubtError::Input`] when `bounds.len() != sinks.len()` or the
/// sink set is empty.
///
/// # Example
///
/// ```
/// use lubt_core::{bound_aware_topology, DelayBounds};
/// use lubt_geom::Point;
/// let sinks = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
/// let topo = bound_aware_topology(&sinks, None, &DelayBounds::uniform(2, 0.0, 10.0))?;
/// assert!(topo.all_sinks_are_leaves());
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn bound_aware_topology(
    sinks: &[Point],
    source: Option<Point>,
    bounds: &DelayBounds,
) -> Result<Topology, LubtError> {
    if sinks.is_empty() {
        return Err(LubtError::Input("no sinks".to_string()));
    }
    if bounds.len() != sinks.len() {
        return Err(LubtError::Input(format!(
            "{} bounds for {} sinks",
            bounds.len(),
            sinks.len()
        )));
    }
    let m = sinks.len();
    let mode = if source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    let mut builder = MergeTreeBuilder::new(m);
    if m == 1 {
        let top = builder.sink(0);
        return Ok(builder.finish(top, mode)?);
    }

    // Gap penalty weight: a unit of window gap ultimately costs about a
    // unit of detour wire on each side of the eventual balance point.
    const GAP_WEIGHT: f64 = 2.0;

    let mut clusters: Vec<Option<Cluster>> = sinks
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Some(Cluster {
                handle: builder.sink(i),
                rep: p,
                window: Interval::new(bounds.lower(i), bounds.upper(i))
                    .expect("DelayBounds enforces l <= u"),
            })
        })
        .collect();

    let pair_cost = |a: &Cluster, b: &Cluster| -> f64 {
        let d = a.rep.dist(b.rep);
        let (_, gap) = best_split(a.window, b.window, d);
        d + GAP_WEIGHT * gap
    };
    let nearest_of = |clusters: &[Option<Cluster>], i: usize| -> Option<(usize, f64)> {
        let ci = clusters[i].as_ref()?;
        let mut best: Option<(usize, f64)> = None;
        for (j, cj) in clusters.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(cj) = cj {
                let c = pair_cost(ci, cj);
                if best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((j, c));
                }
            }
        }
        best
    };
    let mut nn: Vec<Option<(usize, f64)>> = (0..clusters.len())
        .map(|i| nearest_of(&clusters, i))
        .collect();

    let mut live = m;
    while live > 1 {
        let (i, _) = nn
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|(_, c)| (i, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite cost"))
            .expect("at least two live clusters");
        let (j, _) = nn[i].expect("cached entry");

        let a = clusters[i].take().expect("live");
        let b = clusters[j].take().expect("live");
        let d = a.rep.dist(b.rep);
        let (ea_raw, gap) = best_split(a.window, b.window, d);
        // Resolve a residual gap with detour wire on the too-early side
        // (the side whose shifted window sits higher still has budget).
        let (ea, eb) = {
            let mut ea = ea_raw;
            let mut eb = d - ea_raw;
            if gap > 0.0 {
                let a_lo = a.window.lo() - ea;
                let b_lo = b.window.lo() - eb;
                if a_lo > b_lo {
                    ea += gap;
                } else {
                    eb += gap;
                }
            }
            (ea, eb)
        };
        let wa = Interval::new(a.window.lo() - ea, a.window.hi() - ea).expect("shift");
        let wb = Interval::new(b.window.lo() - eb, b.window.hi() - eb).expect("shift");
        let window = wa
            .intersect(wb)
            .unwrap_or_else(|| Interval::point((wa.center() + wb.center()) / 2.0));
        let t = if d > 0.0 { (ea.min(d)) / d } else { 0.5 };
        let rep = Point::new(
            a.rep.x + t * (b.rep.x - a.rep.x),
            a.rep.y + t * (b.rep.y - a.rep.y),
        );
        let handle = builder.merge(a.handle, b.handle);
        let merged = Cluster {
            handle,
            rep,
            window,
        };
        clusters[i] = Some(merged);
        nn[j] = None;
        nn[i] = nearest_of(&clusters, i);
        for k in 0..clusters.len() {
            if k == i || clusters[k].is_none() {
                continue;
            }
            match nn[k] {
                Some((p, _)) if p == i || p == j => nn[k] = nearest_of(&clusters, k),
                _ => {
                    let ck = clusters[k].as_ref().expect("live");
                    let c = pair_cost(ck, clusters[i].as_ref().expect("live"));
                    if nn[k].is_none_or(|(_, bc)| c < bc) {
                        nn[k] = Some((i, c));
                    }
                }
            }
        }
        live -= 1;
    }

    let top = clusters
        .iter()
        .flatten()
        .next()
        .expect("one cluster remains")
        .handle;
    Ok(builder.finish(top, mode)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EbfSolver, LubtProblem};
    use lubt_delay::linear::tree_cost;
    use lubt_topology::nearest_neighbor_topology;

    #[test]
    fn produces_valid_binary_topologies() {
        let sinks: Vec<Point> = (0..13)
            .map(|i| Point::new(((i * 37) % 50) as f64, ((i * 53) % 41) as f64))
            .collect();
        let bounds = DelayBounds::uniform(13, 50.0, 120.0);
        let t = bound_aware_topology(&sinks, Some(Point::new(25.0, 20.0)), &bounds).unwrap();
        assert_eq!(t.num_sinks(), 13);
        assert!(t.all_sinks_are_leaves());
        assert!(t.is_binary(SourceMode::Given));
    }

    #[test]
    fn uniform_bounds_match_plain_nearest_neighbor_quality() {
        // With identical windows everywhere the gap penalty vanishes; the
        // LUBT costs of both topologies should be close.
        let sinks: Vec<Point> = (0..10)
            .map(|i| Point::new(((i * 29) % 40) as f64, ((i * 17) % 37) as f64))
            .collect();
        let src = Point::new(20.0, 18.0);
        let radius = sinks.iter().map(|s| src.dist(*s)).fold(0.0f64, f64::max);
        let bounds = DelayBounds::uniform(10, 0.9 * radius, 1.3 * radius);

        let solve_on = |topo: Topology| -> f64 {
            let p = LubtProblem::new(sinks.clone(), Some(src), topo, bounds.clone()).unwrap();
            let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
            tree_cost(&lengths)
        };
        let nn = solve_on(nearest_neighbor_topology(&sinks, SourceMode::Given));
        let aware = solve_on(bound_aware_topology(&sinks, Some(src), &bounds).unwrap());
        assert!(aware <= nn * 1.15 + 1e-6, "aware {aware} vs nn {nn}");
    }

    #[test]
    fn heterogeneous_windows_benefit_from_awareness() {
        // Two spatially interleaved groups with disjoint windows: plain
        // nearest-neighbor pairs adjacent sinks across groups, forcing
        // detour wire; the bound-aware generator groups compatible sinks.
        let mut sinks = Vec::new();
        let mut pairs = Vec::new();
        let src = Point::new(0.0, -50.0);
        for i in 0..8 {
            sinks.push(Point::new(f64::from(i) * 10.0, 0.0));
            if i % 2 == 0 {
                pairs.push((100.0, 110.0)); // "fast" group
            } else {
                pairs.push((160.0, 170.0)); // "slow" group
            }
        }
        let bounds = DelayBounds::from_pairs(pairs).unwrap();
        let solve_on = |topo: Topology| -> f64 {
            let p = LubtProblem::new(sinks.clone(), Some(src), topo, bounds.clone()).unwrap();
            let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
            tree_cost(&lengths)
        };
        let nn = solve_on(nearest_neighbor_topology(&sinks, SourceMode::Given));
        let aware = solve_on(bound_aware_topology(&sinks, Some(src), &bounds).unwrap());
        assert!(
            aware < nn - 1e-6,
            "bound-aware {aware} should beat plain NN {nn} on incompatible windows"
        );
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            bound_aware_topology(&[], None, &DelayBounds::uniform(1, 0.0, 1.0)),
            Err(LubtError::Input(_))
        ));
        assert!(matches!(
            bound_aware_topology(
                &[Point::ORIGIN, Point::new(1.0, 0.0)],
                None,
                &DelayBounds::uniform(3, 0.0, 1.0)
            ),
            Err(LubtError::Input(_))
        ));
        // Single sink works.
        let t = bound_aware_topology(
            &[Point::ORIGIN],
            Some(Point::new(1.0, 1.0)),
            &DelayBounds::uniform(1, 2.0, 3.0),
        )
        .unwrap();
        assert_eq!(t.num_nodes(), 2);
    }
}
