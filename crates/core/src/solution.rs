use crate::ebf::EbfReport;
use crate::verify::verify_solution;
use crate::{LubtProblem, VerifyError};
use lubt_geom::{polyline_length, route_with_length, Point};
use lubt_topology::NodeId;

/// A solved LUBT: optimal edge lengths, an embedding realizing them, and
/// solve statistics.
///
/// All delay/cost queries recompute from the stored lengths — the solution
/// carries no cached values that could drift from the data.
///
/// # Example
///
/// ```
/// use lubt_core::{DelayBounds, LubtBuilder};
/// use lubt_geom::Point;
/// let sol = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
///     .source(Point::new(4.0, 0.0))
///     .bounds(DelayBounds::uniform(2, 4.0, 6.0))
///     .solve()?;
/// assert!(sol.skew() <= 2.0 + 1e-9);
/// let (short, long) = sol.delay_range();
/// assert!(short >= 4.0 - 1e-6 && long <= 6.0 + 1e-6);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LubtSolution {
    problem: LubtProblem,
    lengths: Vec<f64>,
    positions: Vec<Point>,
    report: EbfReport,
}

impl LubtSolution {
    pub(crate) fn new(
        problem: LubtProblem,
        lengths: Vec<f64>,
        positions: Vec<Point>,
        report: EbfReport,
    ) -> Self {
        LubtSolution {
            problem,
            lengths,
            positions,
            report,
        }
    }

    /// The problem this solution answers.
    pub fn problem(&self) -> &LubtProblem {
        &self.problem
    }

    /// Optimal edge lengths, indexed by node (entry 0 unused).
    pub fn edge_lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Placement of every node (source, sinks, Steiner points).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Solve statistics (LP iterations, separation rounds, row counts).
    pub fn report(&self) -> &EbfReport {
        &self.report
    }

    /// Tree cost: the (unweighted) sum of edge lengths — the quantity
    /// Tables 1–3 report.
    pub fn cost(&self) -> f64 {
        lubt_delay::linear::tree_cost(&self.lengths)
    }

    /// Weighted objective value (differs from [`LubtSolution::cost`] only
    /// under §7 edge weights).
    pub fn weighted_cost(&self) -> f64 {
        self.lengths
            .iter()
            .zip(self.problem.weights())
            .skip(1)
            .map(|(l, w)| l * w)
            .sum()
    }

    /// Linear-model delay at every node.
    pub fn node_delays(&self) -> Vec<f64> {
        lubt_delay::linear::node_delays(self.problem.topology(), &self.lengths)
    }

    /// Delays of the sinks, in sink order.
    pub fn sink_delays(&self) -> Vec<f64> {
        lubt_delay::linear::sink_delays(self.problem.topology(), &self.lengths)
    }

    /// `(shortest, longest)` sink delay — Table 1's columns.
    pub fn delay_range(&self) -> (f64, f64) {
        lubt_delay::skew::delay_range(self.problem.topology(), &self.node_delays())
    }

    /// Tree skew: longest minus shortest sink delay.
    pub fn skew(&self) -> f64 {
        let (lo, hi) = self.delay_range();
        hi - lo
    }

    /// Physical wire routes, one rectilinear polyline per edge (edge `i` is
    /// `routes()[i - 1]`). Elongated edges are materialized by snaking, so
    /// every polyline's length equals the LP's edge length exactly.
    pub fn routes(&self) -> Vec<Vec<Point>> {
        let topo = self.problem.topology();
        topo.edges()
            .map(|(child, parent)| {
                let from = self.positions[parent.index()];
                let to = self.positions[child.index()];
                route_with_length(from, to, self.lengths[child.index()])
                    .expect("verified edges are at least as long as their span")
            })
            .collect()
    }

    /// Total routed wirelength (sums the snaked polylines; equals
    /// [`LubtSolution::cost`] up to floating-point noise).
    pub fn routed_wirelength(&self) -> f64 {
        self.routes().iter().map(|r| polyline_length(r)).sum()
    }

    /// Independently re-checks the solution against the problem definition:
    /// pinned locations, physical edge realizability, zero-edge fixing and
    /// delay windows.
    ///
    /// # Errors
    ///
    /// The first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify_solution(&self.problem, &self.lengths, &self.positions)
    }

    /// Audits the embedded tree in **exact** arithmetic: every
    /// source-to-sink pathlength is re-derived as a dyadic-rational sum of
    /// edge lengths and checked against the sink's `[l_i, u_i]` window,
    /// and every edge against the Manhattan span of its endpoints. Unlike
    /// [`LubtSolution::verify`] (which sums in `f64`), no rounding of the
    /// audit's own making can mask a violation. Returns deny-level
    /// `audit-tree` diagnostics; empty means proven in-window.
    pub fn audit_tree(&self) -> Vec<lubt_lint::Diagnostic> {
        let topo = self.problem.topology();
        let parents: Vec<usize> = (0..topo.num_nodes())
            .map(|v| topo.parent(NodeId(v)).map_or(v, |p| p.index()))
            .collect();
        let pos: Vec<(f64, f64)> = self.positions.iter().map(|p| (p.x, p.y)).collect();
        let bounds = self.problem.bounds();
        let sinks: Vec<(usize, f64, f64)> = (0..topo.num_sinks())
            .map(|i| (i + 1, bounds.lower(i), bounds.upper(i)))
            .collect();
        lubt_audit::audit_tree(&parents, &self.lengths, &pos, &sinks, topo.root().index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};

    fn sol() -> LubtSolution {
        LubtBuilder::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ])
        .source(Point::new(5.0, 5.0))
        .bounds(DelayBounds::uniform(4, 12.0, 14.0))
        .solve()
        .unwrap()
    }

    #[test]
    fn accessors_are_consistent() {
        let s = sol();
        assert_eq!(s.edge_lengths().len(), s.problem().topology().num_nodes());
        assert_eq!(s.positions().len(), s.problem().topology().num_nodes());
        assert_eq!(s.sink_delays().len(), 4);
        let (lo, hi) = s.delay_range();
        assert!((s.skew() - (hi - lo)).abs() < 1e-12);
        // Unweighted problem: weighted cost == cost.
        assert!((s.cost() - s.weighted_cost()).abs() < 1e-9);
        assert!(s.verify().is_ok());
    }

    #[test]
    fn routes_realize_exact_lengths() {
        let s = sol();
        let routes = s.routes();
        assert_eq!(routes.len(), s.problem().topology().num_edges());
        assert!((s.routed_wirelength() - s.cost()).abs() < 1e-6);
        // Each route connects parent placement to child placement.
        for ((child, parent), route) in s.problem().topology().edges().zip(&routes) {
            assert_eq!(
                route.first().copied().unwrap(),
                s.positions()[parent.index()]
            );
            assert_eq!(route.last().copied().unwrap(), s.positions()[child.index()]);
        }
    }

    #[test]
    fn exact_tree_audit_accepts_good_and_rejects_corrupted_embeddings() {
        let s = sol();
        assert!(s.audit_tree().is_empty(), "{:?}", s.audit_tree());
        // Stretch one sink edge far past every upper bound: the exact
        // pathlength re-derivation must flag that sink as late.
        let mut bad = s.clone();
        bad.lengths[1] += 100.0;
        let findings = bad.audit_tree();
        assert!(
            findings
                .iter()
                .any(|d| d.pass == "audit-tree" && d.is_deny() && d.message.contains("late")),
            "{findings:?}"
        );
    }

    #[test]
    fn bounds_are_active_when_binding() {
        // With l = u the delays are pinned exactly.
        let s = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .source(Point::new(4.0, 0.0))
            .bounds(DelayBounds::zero_skew(2, 5.0))
            .solve()
            .unwrap();
        for d in s.sink_delays() {
            assert!((d - 5.0).abs() < 1e-6);
        }
        assert!(s.skew() < 1e-6);
        assert!(s.verify().is_ok());
    }
}
