//! Batched solving: many independent LUBT instances pushed through the
//! work-stealing pool of `lubt-par`.
//!
//! Each instance is one job; the pool load-balances across workers while
//! the result vector keeps input order. Per-instance solves use a
//! single-threaded separation oracle (the parallelism budget is spent
//! across instances, not inside one), so the answer for every instance is
//! bit-for-bit the same as a standalone [`EbfSolver::solve`] /
//! [`crate::LubtProblem::solve`] call — thread count only changes
//! wall-clock time.

use crate::ebf::{EbfReport, EbfSolver};
use crate::embed::{embed_tree_traced, PlacementPolicy};
use crate::{LubtError, LubtProblem, LubtSolution};
use lubt_obs::{AggregateTrace, Recorder, SolveTrace, TraceRecorder};
use std::sync::Arc;

/// Solves a slice of independent [`LubtProblem`]s in parallel.
///
/// # Example
///
/// ```
/// use lubt_core::{BatchSolver, DelayBounds, LubtBuilder};
/// use lubt_geom::Point;
/// let problems: Vec<_> = (0..4)
///     .map(|k| {
///         let d = 8.0 + k as f64;
///         LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(d, 0.0)])
///             .bounds(DelayBounds::uniform(2, d / 2.0, d))
///             .build()
///     })
///     .collect::<Result<_, _>>()?;
/// let results = BatchSolver::new().with_threads(2).solve_all(&problems);
/// assert_eq!(results.len(), 4);
/// for r in &results {
///     assert!(r.as_ref().unwrap().verify().is_ok());
/// }
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchSolver {
    solver: EbfSolver,
    placement: PlacementPolicy,
    threads: usize,
    event_cap: usize,
}

impl Default for BatchSolver {
    fn default() -> Self {
        BatchSolver {
            solver: EbfSolver::new(),
            placement: PlacementPolicy::ClosestToParent,
            threads: 0,
            event_cap: lubt_obs::DEFAULT_EVENT_CAP,
        }
    }
}

impl BatchSolver {
    /// A batch solver with the default EBF configuration, closest-to-parent
    /// placement, and one worker per available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (`0` = all available cores, `1` = solve the
    /// batch sequentially on the calling thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the per-instance EBF solver configuration.
    #[must_use]
    pub fn with_solver(mut self, solver: EbfSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the top-down placement policy used by
    /// [`BatchSolver::solve_all`].
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Caps the number of `warning[...]`/`info[...]` trace events retained
    /// by the batch-level recorder of [`BatchSolver::solve_all_traced`].
    /// Overflow is counted, not silently dropped: the trace reports it as
    /// `warning[trace-events-dropped]`.
    #[must_use]
    pub fn with_event_cap(mut self, event_cap: usize) -> Self {
        self.event_cap = event_cap;
        self
    }

    /// The configured worker count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves and embeds every instance; `results[i]` answers
    /// `problems[i]`.
    pub fn solve_all(&self, problems: &[LubtProblem]) -> Vec<Result<LubtSolution, LubtError>> {
        self.solve_all_recorded(problems, lubt_obs::noop())
    }

    /// [`BatchSolver::solve_all`] with batch-level metrics accumulated into
    /// a fresh recorder, returned as a [`SolveTrace`] alongside the
    /// results: every instance's `ebf.*`/`simplex.*`/`embed.*` counters
    /// summed into one trace, the `par.*` scheduling counters of the batch
    /// loop itself, plus `batch.instances`, `batch.solved`, `batch.failed`.
    ///
    /// The results are bit-for-bit identical to [`BatchSolver::solve_all`]
    /// for every thread count; only the trace (timings, scheduling
    /// counters) varies between runs.
    #[allow(clippy::type_complexity)]
    pub fn solve_all_traced(
        &self,
        problems: &[LubtProblem],
    ) -> (Vec<Result<LubtSolution, LubtError>>, SolveTrace) {
        let rec = Arc::new(TraceRecorder::with_event_cap(self.event_cap));
        let results = self.solve_all_recorded(problems, Arc::clone(&rec) as Arc<dyn Recorder>);
        rec.incr("batch.instances", problems.len() as u64);
        let solved = results.iter().filter(|r| r.is_ok()).count() as u64;
        rec.incr("batch.solved", solved);
        rec.incr("batch.failed", problems.len() as u64 - solved);
        (results, rec.snapshot())
    }

    /// [`BatchSolver::solve_all`] with one *private* [`TraceRecorder`] per
    /// instance, returning the per-instance traces alongside an
    /// [`AggregateTrace`] folding all of them plus the batch loop's own
    /// scheduling counters.
    ///
    /// This is the aggregation hook behind `lubt bench`: unlike
    /// [`BatchSolver::solve_all_traced`], which sums every instance into
    /// one shared recorder, each solve here records in isolation, so the
    /// fold can also build per-solve histograms (pivots per instance,
    /// rounds per instance, …). Because instances are solved
    /// single-threaded inside the pool, `traces[i]` — and therefore the
    /// deterministic half of the aggregate — is bit-for-bit independent
    /// of the thread count; only timings and the aggregate's
    /// determinism-exempt section vary.
    #[allow(clippy::type_complexity)]
    pub fn solve_all_aggregated(
        &self,
        problems: &[LubtProblem],
    ) -> (
        Vec<Result<LubtSolution, LubtError>>,
        Vec<SolveTrace>,
        AggregateTrace,
    ) {
        // The outer pool records into its own recorder so scheduling noise
        // never lands inside a per-instance trace.
        let pool_rec = TraceRecorder::new();
        let outcomes = lubt_par::parallel_map_traced(
            self.threads,
            problems.len(),
            1,
            &pool_rec,
            |i| -> (Result<LubtSolution, LubtError>, SolveTrace) {
                let rec = Arc::new(TraceRecorder::new());
                let solver = self
                    .solver
                    .clone()
                    .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
                let problem = &problems[i];
                let result = solver.solve(problem).and_then(|(lengths, report)| {
                    let positions = embed_tree_traced(
                        problem.topology(),
                        problem.sinks(),
                        problem.source(),
                        &lengths,
                        self.placement,
                        &*rec,
                    )?;
                    Ok(LubtSolution::new(
                        problem.clone(),
                        lengths,
                        positions,
                        report,
                    ))
                });
                (result, rec.snapshot())
            },
        );
        let mut results = Vec::with_capacity(outcomes.len());
        let mut traces = Vec::with_capacity(outcomes.len());
        let mut aggregate = AggregateTrace::new();
        for (result, trace) in outcomes {
            aggregate.fold(&trace);
            results.push(result);
            traces.push(trace);
        }
        // Fold the batch loop's own scheduling counters last; the fold is
        // order-independent, so this cannot perturb the deterministic half.
        let solved = results.iter().filter(|r| r.is_ok()).count() as u64;
        pool_rec.incr("batch.instances", problems.len() as u64);
        pool_rec.incr("batch.solved", solved);
        pool_rec.incr("batch.failed", problems.len() as u64 - solved);
        let mut pool_agg = AggregateTrace::new();
        pool_agg.fold(&pool_rec.snapshot());
        pool_agg.solves = 0; // the pool snapshot is bookkeeping, not a solve
        aggregate.merge(&pool_agg);
        (results, traces, aggregate)
    }

    fn solve_all_recorded(
        &self,
        problems: &[LubtProblem],
        rec: Arc<dyn Recorder>,
    ) -> Vec<Result<LubtSolution, LubtError>> {
        // Per-instance solves share the batch recorder: the trace
        // aggregates over the whole batch. Counter increments commute, so
        // aggregation order cannot leak into the (Eq-compared) results.
        let solver = if rec.enabled() {
            self.solver.clone().with_recorder(Arc::clone(&rec))
        } else {
            self.solver.clone()
        };
        lubt_par::parallel_map_traced(self.threads, problems.len(), 1, &*rec, |i| {
            let problem = &problems[i];
            let (lengths, report) = solver.solve(problem)?;
            let positions = embed_tree_traced(
                problem.topology(),
                problem.sinks(),
                problem.source(),
                &lengths,
                self.placement,
                &*rec,
            )?;
            Ok(LubtSolution::new(
                problem.clone(),
                lengths,
                positions,
                report,
            ))
        })
    }

    /// LP layer only: optimal edge lengths and solve statistics per
    /// instance, no geometric embedding. What `lubt-bench` table
    /// reproduction consumes.
    #[allow(clippy::type_complexity)]
    pub fn solve_ebf_all(
        &self,
        problems: &[LubtProblem],
    ) -> Vec<Result<(Vec<f64>, EbfReport), LubtError>> {
        lubt_par::parallel_map(self.threads, problems.len(), 1, |i| {
            self.solver.solve(&problems[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_geom::Point;

    fn mixed_batch() -> Vec<LubtProblem> {
        // Instance k = 2 sinks 2(k+4) apart; every other one gets an
        // impossible upper bound so the batch mixes Ok and Err.
        (0..8)
            .map(|k| {
                let d = 2.0 * (k + 4) as f64;
                let upper = if k % 2 == 0 { d } else { d / 8.0 };
                LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(d, 0.0)])
                    .source(Point::new(d / 2.0, 0.0))
                    .bounds(DelayBounds::upper_only(2, upper))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn results_keep_input_order_and_errors() {
        let problems = mixed_batch();
        let results = BatchSolver::new().with_threads(4).solve_all(&problems);
        assert_eq!(results.len(), problems.len());
        for (k, r) in results.iter().enumerate() {
            if k % 2 == 0 {
                let sol = r.as_ref().unwrap();
                assert!(sol.verify().is_ok());
                assert!((sol.cost() - 2.0 * (k + 4) as f64).abs() < 1e-6);
            } else {
                assert!(r.is_err(), "instance {k} should be infeasible");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_any_result() {
        let problems = mixed_batch();
        let base = BatchSolver::new().with_threads(1).solve_all(&problems);
        for threads in [2, 8, 0] {
            let other = BatchSolver::new()
                .with_threads(threads)
                .solve_all(&problems);
            for (b, o) in base.iter().zip(other.iter()) {
                match (b, o) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x.edge_lengths(), y.edge_lengths());
                        assert_eq!(x.positions(), y.positions());
                        assert_eq!(x.report(), y.report());
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("threads={threads}: Ok/Err mismatch"),
                }
            }
        }
    }

    #[test]
    fn ebf_only_path_matches_the_standalone_solver() {
        let problems = mixed_batch();
        let batch = BatchSolver::new().with_threads(2).solve_ebf_all(&problems);
        for (p, r) in problems.iter().zip(batch.iter()) {
            match (EbfSolver::new().solve(p), r) {
                (Ok((lengths, report)), Ok((bl, br))) => {
                    assert_eq!(&lengths, bl);
                    assert_eq!(&report, br);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("batch and standalone disagree on feasibility"),
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(BatchSolver::new().solve_all(&[]).is_empty());
    }

    #[test]
    fn traced_batch_matches_untraced_results_and_counts() {
        let problems = mixed_batch();
        let plain = BatchSolver::new().with_threads(2).solve_all(&problems);
        let (traced, trace) = BatchSolver::new()
            .with_threads(2)
            .solve_all_traced(&problems);
        for (p, t) in plain.iter().zip(traced.iter()) {
            match (p, t) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.edge_lengths(), y.edge_lengths());
                    assert_eq!(x.positions(), y.positions());
                    assert_eq!(x.report(), y.report());
                }
                (Err(_), Err(_)) => {}
                _ => panic!("tracing changed feasibility"),
            }
        }
        assert_eq!(trace.counter("batch.instances"), 8);
        assert_eq!(trace.counter("batch.solved"), 4);
        assert_eq!(trace.counter("batch.failed"), 4);
        // The batch loop itself is one traced parallel loop over the 8
        // instances; the per-instance separation oracles add their own
        // `par.*` jobs on top.
        assert!(trace.counter("par.loops") >= 1);
        assert!(trace.counter("par.jobs") >= 8);
        // The per-instance solves fed the same trace: LP and embedder
        // counters aggregate across the whole batch.
        assert!(trace.counter("simplex.solves") >= 4);
        assert!(trace.counter("embed.fr_constructions") >= 4);
    }

    #[test]
    fn traced_span_shape_is_identical_across_thread_counts() {
        let problems = mixed_batch();
        let (_, base) = BatchSolver::new()
            .with_threads(1)
            .solve_all_traced(&problems);
        let shape = base.spans.shape_text();
        assert!(shape.contains("solve/lp"), "shape: {shape}");
        assert!(shape.contains("embed"), "shape: {shape}");
        for threads in [2, 8] {
            let (_, other) = BatchSolver::new()
                .with_threads(threads)
                .solve_all_traced(&problems);
            assert_eq!(
                shape,
                other.spans.shape_text(),
                "span shape must not depend on thread count (threads={threads})"
            );
        }
    }

    #[test]
    fn aggregated_batch_matches_plain_results_and_folds_solver_counters() {
        let problems = mixed_batch();
        let plain = BatchSolver::new().with_threads(2).solve_all(&problems);
        let (results, traces, agg) = BatchSolver::new()
            .with_threads(2)
            .solve_all_aggregated(&problems);
        assert_eq!(results.len(), problems.len());
        assert_eq!(traces.len(), problems.len());
        for (p, t) in plain.iter().zip(results.iter()) {
            match (p, t) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.edge_lengths(), y.edge_lengths());
                    assert_eq!(x.positions(), y.positions());
                    assert_eq!(x.report(), y.report());
                }
                (Err(_), Err(_)) => {}
                _ => panic!("aggregation changed feasibility"),
            }
        }
        // One fold per instance plus the batch bookkeeping counters.
        assert_eq!(agg.solves, problems.len() as u64);
        assert_eq!(agg.counter("batch.instances"), 8);
        assert_eq!(agg.counter("batch.solved"), 4);
        assert_eq!(agg.counter("batch.failed"), 4);
        // The per-solve histogram has one sample per instance that reached
        // the LP (infeasible ones may be rejected by the pre-solve lint).
        assert!(agg.histogram("simplex.solves").unwrap().count() >= 4);
        // Scheduling keys stay in the exempt section of the aggregate.
        assert_eq!(agg.counter("par.jobs"), 0);
        assert!(agg.sched_counters.contains_key("par.jobs"));
    }

    #[test]
    fn aggregated_deterministic_half_is_thread_count_invariant() {
        let problems = mixed_batch();
        let (_, traces1, agg1) = BatchSolver::new()
            .with_threads(1)
            .solve_all_aggregated(&problems);
        let (_, traces8, agg8) = BatchSolver::new()
            .with_threads(8)
            .solve_all_aggregated(&problems);
        for (a, b) in traces1.iter().zip(traces8.iter()) {
            assert_eq!(a.counters, b.counters, "per-instance counters diverged");
            assert_eq!(a.maxima, b.maxima);
            assert_eq!(a.events, b.events);
        }
        assert_eq!(agg1.counters, agg8.counters);
        assert_eq!(agg1.maxima, agg8.maxima);
        assert_eq!(agg1.histograms, agg8.histograms);
        assert_eq!(agg1.events, agg8.events);
        assert_eq!(agg1.events_dropped, agg8.events_dropped);
    }

    #[test]
    fn zero_threads_is_clamped_to_all_cores() {
        // `0` is the documented "all cores" sentinel on every library
        // entry point; it must never panic or deadlock, even for tiny
        // batches.
        let problems = mixed_batch();
        let results = BatchSolver::new().with_threads(0).solve_all(&problems[..2]);
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(BatchSolver::new().with_threads(0).threads(), 0);
    }
}
