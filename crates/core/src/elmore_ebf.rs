//! The §7 Elmore-delay extension of the EBF, solved by sequential linear
//! programming (SLP).
//!
//! Under the Elmore model the delay constraints are quadratic in the edge
//! lengths; with active lower bounds the feasible set is non-convex, so the
//! paper prescribes a general nonlinear solver. This module implements a
//! trust-region SLP: each iteration linearizes the delay constraints at the
//! current point (exact gradients from [`lubt_delay::elmore`]), solves the
//! resulting LP (Steiner rows included), and accepts or rejects the step by
//! a violation-then-cost merit rule.

use crate::steiner::{seed_pairs, violated_pairs, SinkPair};
use crate::{LubtError, LubtProblem};
use lubt_delay::elmore::{delay_gradient, node_delays, ElmoreParams};
use lubt_lp::{Cmp, LinExpr, LpSolve, Model, SimplexSolver, Status};
use lubt_topology::NodeId;

/// Diagnostics from an Elmore-EBF solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreReport {
    /// Accepted + rejected SLP iterations performed.
    pub iterations: usize,
    /// Final total bound violation (sum over sinks, in delay units).
    pub violation: f64,
    /// Final tree cost (sum of edge lengths).
    pub cost: f64,
}

/// Sequential-LP solver for the Elmore-delay LUBT (§7).
///
/// The problem's [`crate::DelayBounds`] are interpreted in *Elmore* units.
/// Because the feasible set is non-convex for `l > 0`, the solver is a
/// heuristic: it reports the final residual violation instead of promising
/// optimality (matching the paper, which also resorts to a general NLP
/// method here). For `l = 0` the feasible set is convex and convergence is
/// reliable.
///
/// # Example
///
/// ```
/// use lubt_core::{DelayBounds, ElmoreEbf, LubtBuilder};
/// use lubt_delay::ElmoreParams;
/// use lubt_geom::Point;
/// let problem = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
///     .source(Point::new(4.0, 0.0))
///     .bounds(DelayBounds::upper_only(2, 60.0)) // Elmore units
///     .build()?;
/// let params = ElmoreParams::uniform(1.0, 1.0, 0.5, 2);
/// let (lengths, report) = ElmoreEbf::new(params).solve(&problem)?;
/// assert!(report.violation < 1e-4);
/// assert!(lengths.iter().sum::<f64>() >= 8.0 - 1e-6);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ElmoreEbf {
    params: ElmoreParams,
    max_iterations: usize,
    violation_tol: f64,
}

impl ElmoreEbf {
    /// Creates a solver with the given electrical parameters.
    pub fn new(params: ElmoreParams) -> Self {
        ElmoreEbf {
            params,
            max_iterations: 60,
            violation_tol: 1e-6,
        }
    }

    /// Sets the SLP iteration budget (default 60).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Total bound violation of `lengths` under the Elmore model.
    pub fn violation(&self, problem: &LubtProblem, lengths: &[f64]) -> f64 {
        let d = node_delays(problem.topology(), lengths, &self.params);
        let mut v = 0.0;
        for (i, s) in problem.topology().sinks().enumerate() {
            let dj = d[s.index()];
            v += (problem.bounds().lower(i) - dj).max(0.0);
            v += (dj - problem.bounds().upper(i)).max(0.0);
        }
        v
    }

    /// Runs the SLP.
    ///
    /// # Errors
    ///
    /// * [`LubtError::Infeasible`] when even the geometric (Steiner-only)
    ///   subproblem is infeasible, or no step with acceptable violation is
    ///   found and the residual exceeds the tolerance by a large factor.
    /// * [`LubtError::Lp`] on backend failure.
    pub fn solve(&self, problem: &LubtProblem) -> Result<(Vec<f64>, ElmoreReport), LubtError> {
        let topo = problem.topology();
        let n = topo.num_nodes();
        let m = topo.num_sinks();

        // Start from the minimum-wirelength (Steiner-only) tree: solve the
        // linear EBF with unbounded delays.
        let relaxed = LubtProblem::new(
            problem.sinks().to_vec(),
            problem.source(),
            topo.clone(),
            crate::DelayBounds::unbounded(m),
        )?
        .with_weights(problem.weights().to_vec())?
        .with_zero_edges(problem.zero_edges().to_vec())?;
        let (mut current, _) = crate::EbfSolver::new().solve(&relaxed)?;

        let radius = problem.radius().max(1.0);
        let mut trust = radius; // generous initial trust region
        let mut pool: Vec<SinkPair> = seed_pairs(problem);
        // Merit violation combines the Elmore bound residuals with the
        // Steiner residuals — otherwise a step could trade geometric
        // feasibility for cost and the repair step would always be
        // rejected as "more expensive".
        let total_violation = |lengths: &[f64]| -> f64 {
            self.violation(problem, lengths)
                + violated_pairs(problem, lengths, 0.0)
                    .iter()
                    .map(|(_, v)| v)
                    .sum::<f64>()
        };
        let mut best_v = total_violation(&current);
        let mut best_cost: f64 = current.iter().skip(1).sum();
        let mut iterations = 0usize;

        while iterations < self.max_iterations {
            iterations += 1;

            // Refresh the Steiner cut pool at the current point.
            for (pair, _) in violated_pairs(problem, &current, 1e-7 * radius) {
                if !pool.iter().any(|p| p.a == pair.a && p.b == pair.b) {
                    pool.push(pair);
                }
            }

            let delays = node_delays(topo, &current, &self.params);

            // ---- Build the linearized LP. ----
            let mut model = Model::new();
            let vars: Vec<_> = (1..n)
                .map(|j| model.add_var((current[j] - trust).max(0.0), problem.weights()[j]))
                .collect();
            let var_of = |node: NodeId| vars[node.index() - 1];
            for j in 1..n {
                model.add_constraint(
                    LinExpr::from_terms([(vars[j - 1], 1.0)]),
                    Cmp::Le,
                    current[j] + trust,
                );
            }
            for &z in problem.zero_edges() {
                model.add_constraint(LinExpr::from_terms([(var_of(z), 1.0)]), Cmp::Eq, 0.0);
            }
            for pair in &pool {
                let path = topo.path_between(pair.a, pair.b);
                let expr = LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
                model.add_constraint(expr, Cmp::Ge, pair.dist);
            }
            // Source reachability (linear, exact).
            if let Some(src) = problem.source() {
                for s in topo.sinks() {
                    let path = topo.path_to_ancestor(s, topo.root());
                    let expr = LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
                    model.add_constraint(expr, Cmp::Ge, src.dist(problem.sink_location(s)));
                }
            }
            // Linearized Elmore windows.
            for (i, s) in topo.sinks().enumerate() {
                let g = delay_gradient(topo, &current, &self.params, s);
                let g_dot_e0: f64 = (1..n).map(|j| g[j] * current[j]).sum();
                let d0 = delays[s.index()];
                let expr = || {
                    LinExpr::from_terms(
                        (1..n).filter(|&j| g[j] != 0.0).map(|j| (vars[j - 1], g[j])),
                    )
                };
                let l = problem.bounds().lower(i);
                let u = problem.bounds().upper(i);
                if l > 0.0 {
                    model.add_constraint(expr(), Cmp::Ge, l - d0 + g_dot_e0);
                }
                if u.is_finite() {
                    model.add_constraint(expr(), Cmp::Le, u - d0 + g_dot_e0);
                }
            }

            let sol = SimplexSolver::new().solve(&model)?;
            match sol.status() {
                Status::Optimal => {}
                Status::Infeasible => {
                    // The linearization can over-constrain; shrink and retry.
                    trust *= 0.5;
                    if trust < 1e-7 * radius {
                        break;
                    }
                    continue;
                }
                Status::Unbounded => {
                    return Err(LubtError::Lp(lubt_lp::LpError::NumericalBreakdown(
                        "trust-region subproblem cannot be unbounded".to_string(),
                    )))
                }
            }

            let mut candidate = vec![0.0; n];
            for j in 1..n {
                candidate[j] = sol.value(vars[j - 1]).max(0.0);
            }
            let v1 = total_violation(&candidate);
            let cost1: f64 = candidate.iter().skip(1).sum();
            let step: f64 = (1..n)
                .map(|j| (candidate[j] - current[j]).abs())
                .fold(0.0, f64::max);

            // Merit: violation first, then cost.
            let tol = self.violation_tol * radius;
            let accept = v1 < best_v - tol / 10.0
                || (v1 <= best_v + tol / 10.0 && cost1 < best_cost - tol / 10.0)
                || (iterations == 1 && v1 <= best_v + tol);
            if accept {
                current = candidate;
                best_v = v1;
                best_cost = cost1;
                trust = (trust * 1.5).min(radius * 4.0);
            } else {
                trust *= 0.5;
            }
            if best_v < tol && step < 1e-6 * radius {
                break;
            }
            if trust < 1e-7 * radius {
                break;
            }
        }

        let report = ElmoreReport {
            iterations,
            violation: best_v,
            cost: best_cost,
        };
        if best_v > self.violation_tol * radius * 100.0 {
            return Err(LubtError::Infeasible);
        }
        Ok((current, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_geom::Point;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ]
    }

    fn elmore_bound_probe(sinks: &[Point], src: Point) -> f64 {
        // Elmore delay of the relaxed (min-wirelength) tree, used to pick
        // sensible test bounds.
        let p = LubtBuilder::new(sinks.to_vec())
            .source(src)
            .bounds(DelayBounds::unbounded(sinks.len()))
            .build()
            .unwrap();
        let params = ElmoreParams::uniform(0.1, 0.2, 1.0, sinks.len());
        let (lengths, _) = crate::EbfSolver::new().solve(&p).unwrap();
        let d = node_delays(p.topology(), &lengths, &params);
        p.topology()
            .sinks()
            .map(|s| d[s.index()])
            .fold(0.0, f64::max)
    }

    #[test]
    fn convex_case_upper_bounds_only() {
        let sinks = square();
        let src = Point::new(5.0, 5.0);
        let dmax = elmore_bound_probe(&sinks, src);
        let p = LubtBuilder::new(sinks.clone())
            .source(src)
            .bounds(DelayBounds::upper_only(4, dmax * 1.2))
            .build()
            .unwrap();
        let params = ElmoreParams::uniform(0.1, 0.2, 1.0, 4);
        let solver = ElmoreEbf::new(params.clone());
        let (lengths, report) = solver.solve(&p).unwrap();
        assert!(report.violation < 1e-4, "violation {}", report.violation);
        let d = node_delays(p.topology(), &lengths, &params);
        for s in p.topology().sinks() {
            assert!(d[s.index()] <= dmax * 1.2 + 1e-4);
        }
    }

    #[test]
    fn lower_bounds_force_elongation() {
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let src = Point::new(4.0, 0.0);
        let dmax = elmore_bound_probe(&sinks, src);
        // Demand every sink be at least 1.5x slower than the fast tree, with
        // generous headroom above.
        let p = LubtBuilder::new(sinks)
            .source(src)
            .bounds(DelayBounds::uniform(2, dmax * 1.5, dmax * 4.0))
            .build()
            .unwrap();
        let params = ElmoreParams::uniform(0.1, 0.2, 1.0, 2);
        let solver = ElmoreEbf::new(params.clone());
        let (lengths, report) = solver.solve(&p).unwrap();
        assert!(report.violation < 1e-3, "violation {}", report.violation);
        let d = node_delays(p.topology(), &lengths, &params);
        for s in p.topology().sinks() {
            assert!(
                d[s.index()] >= dmax * 1.5 - 1e-3,
                "sink {s}: {} < {}",
                d[s.index()],
                dmax * 1.5
            );
        }
        // Elongation happened: the tree is longer than the minimum 8.
        let cost: f64 = lengths.iter().skip(1).sum();
        assert!(cost > 8.0 + 1e-6);
    }

    #[test]
    fn steiner_feasibility_is_preserved() {
        let sinks = square();
        let src = Point::new(5.0, 5.0);
        let dmax = elmore_bound_probe(&sinks, src);
        let p = LubtBuilder::new(sinks)
            .source(src)
            .bounds(DelayBounds::upper_only(4, dmax * 1.3))
            .build()
            .unwrap();
        let params = ElmoreParams::uniform(0.1, 0.2, 1.0, 4);
        let (lengths, _) = ElmoreEbf::new(params).solve(&p).unwrap();
        // No Steiner violations: the embedding must succeed.
        assert!(crate::embed_tree(
            p.topology(),
            p.sinks(),
            p.source(),
            &lengths,
            crate::PlacementPolicy::ClosestToParent
        )
        .is_ok());
    }
}
