//! Independent post-hoc verification of LUBT solutions.
//!
//! The checks mirror the problem definition rather than the solver
//! internals: a verified solution is a valid tree embedding whose delays
//! (recomputed from scratch) respect the bounds and whose cost matches the
//! claimed edge lengths.

use crate::LubtProblem;
#[allow(unused_imports)] // referenced by doc links and tests
use crate::LubtSolution;
use lubt_geom::Point;
use std::error::Error;
use std::fmt;

/// A specific violated property, reported by [`LubtSolution::verify`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An edge's claimed length is below the Manhattan distance between
    /// its endpoints' placements (physically unroutable).
    EdgeShorterThanDistance {
        /// Edge identifier (child node index).
        edge: usize,
        /// Claimed length.
        length: f64,
        /// Realized endpoint distance.
        distance: f64,
    },
    /// A sink's delay violates its window.
    DelayOutOfBounds {
        /// Sink node index.
        sink: usize,
        /// Recomputed delay.
        delay: f64,
        /// Window lower end.
        lower: f64,
        /// Window upper end.
        upper: f64,
    },
    /// A sink was not placed at its prescribed location.
    SinkMoved {
        /// Sink node index.
        sink: usize,
        /// Where it should be.
        expected: Point,
        /// Where the embedding put it.
        actual: Point,
    },
    /// The source was not placed at its prescribed location.
    SourceMoved {
        /// Where it should be.
        expected: Point,
        /// Where the embedding put it.
        actual: Point,
    },
    /// An edge fixed to zero has non-zero length.
    ZeroEdgeNonZero {
        /// Edge identifier.
        edge: usize,
        /// Its length.
        length: f64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EdgeShorterThanDistance {
                edge,
                length,
                distance,
            } => write!(
                f,
                "edge e{edge} has length {length} but its endpoints are {distance} apart"
            ),
            VerifyError::DelayOutOfBounds {
                sink,
                delay,
                lower,
                upper,
            } => write!(
                f,
                "sink s{sink} has delay {delay}, outside [{lower}, {upper}]"
            ),
            VerifyError::SinkMoved {
                sink,
                expected,
                actual,
            } => {
                write!(f, "sink s{sink} placed at {actual}, expected {expected}")
            }
            VerifyError::SourceMoved { expected, actual } => {
                write!(f, "source placed at {actual}, expected {expected}")
            }
            VerifyError::ZeroEdgeNonZero { edge, length } => {
                write!(f, "zero-fixed edge e{edge} has length {length}")
            }
        }
    }
}

impl Error for VerifyError {}

impl VerifyError {
    /// Renders the verification failure through the same structured
    /// [`Diagnostic`](lubt_lint::Diagnostic) type the lint passes use, so
    /// CLI and JSON consumers see one schema for "instance rejected up
    /// front" and "solution failed post-hoc checks". The pass slug is
    /// `"verify"` and the level is always deny.
    pub fn to_diagnostic(&self) -> lubt_lint::Diagnostic {
        use lubt_lint::{Diagnostic, Level, Target};
        let (targets, help) = match self {
            VerifyError::EdgeShorterThanDistance { edge, .. } => (
                vec![Target::Edge(*edge)],
                "the embedding cannot route this edge within its claimed length",
            ),
            VerifyError::DelayOutOfBounds { sink, .. } => (
                vec![Target::Sink(*sink)],
                "recomputed delay violates the sink's window",
            ),
            VerifyError::SinkMoved { sink, .. } => (
                vec![Target::Sink(*sink)],
                "sink locations are inputs and must not move",
            ),
            VerifyError::SourceMoved { .. } => (
                vec![Target::Node(0)],
                "the given source location must not move",
            ),
            VerifyError::ZeroEdgeNonZero { edge, .. } => (
                vec![Target::Edge(*edge)],
                "edges fixed by degree-4 splitting must stay at length zero",
            ),
        };
        Diagnostic {
            pass: "verify",
            level: Level::Deny,
            message: self.to_string(),
            targets,
            help: Some(help.to_string()),
        }
    }
}

/// Runs every check; returns the first violation found.
pub(crate) fn verify_solution(
    problem: &LubtProblem,
    lengths: &[f64],
    positions: &[Point],
) -> Result<(), VerifyError> {
    let topo = problem.topology();
    let scale = 1.0 + problem.radius();
    let tol = 1e-6 * scale;

    // Pinned locations.
    if let Some(s0) = problem.source() {
        if s0.dist(positions[0]) > tol {
            return Err(VerifyError::SourceMoved {
                expected: s0,
                actual: positions[0],
            });
        }
    }
    for s in topo.sinks() {
        let expected = problem.sink_location(s);
        if expected.dist(positions[s.index()]) > tol {
            return Err(VerifyError::SinkMoved {
                sink: s.index(),
                expected,
                actual: positions[s.index()],
            });
        }
    }

    // Physical realizability: every edge at least as long as its endpoints'
    // separation.
    for (child, parent) in topo.edges() {
        let d = positions[child.index()].dist(positions[parent.index()]);
        if lengths[child.index()] < d - tol {
            return Err(VerifyError::EdgeShorterThanDistance {
                edge: child.index(),
                length: lengths[child.index()],
                distance: d,
            });
        }
    }

    // Zero-fixed edges.
    for z in problem.zero_edges() {
        if lengths[z.index()].abs() > tol {
            return Err(VerifyError::ZeroEdgeNonZero {
                edge: z.index(),
                length: lengths[z.index()],
            });
        }
    }

    // Delay windows, recomputed from the raw lengths.
    let delays = lubt_delay::linear::node_delays(topo, lengths);
    for (i, s) in topo.sinks().enumerate() {
        let d = delays[s.index()];
        let (l, u) = (problem.bounds().lower(i), problem.bounds().upper(i));
        if d < l - tol || d > u + tol {
            return Err(VerifyError::DelayOutOfBounds {
                sink: s.index(),
                delay: d,
                lower: l,
                upper: u,
            });
        }
    }
    Ok(())
}

/// Convenience for tests: verify arbitrary (lengths, positions) against a
/// problem without constructing a [`LubtSolution`].
pub fn verify_raw(
    problem: &LubtProblem,
    lengths: &[f64],
    positions: &[Point],
) -> Result<(), VerifyError> {
    verify_solution(problem, lengths, positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};

    fn solved() -> LubtSolution {
        LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .source(Point::new(4.0, 0.0))
            .bounds(DelayBounds::uniform(2, 4.0, 6.0))
            .solve()
            .unwrap()
    }

    #[test]
    fn valid_solution_verifies() {
        assert!(solved().verify().is_ok());
    }

    #[test]
    fn tampered_lengths_fail() {
        let sol = solved();
        let problem = sol.problem();
        let mut bad = sol.edge_lengths().to_vec();
        // Shrink one real edge below its endpoints' distance.
        let victim = (1..bad.len()).find(|&i| bad[i] > 1.0).unwrap();
        bad[victim] = 0.01;
        let err = verify_raw(problem, &bad, sol.positions()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::EdgeShorterThanDistance { .. } | VerifyError::DelayOutOfBounds { .. }
        ));
    }

    #[test]
    fn tampered_positions_fail() {
        let sol = solved();
        let mut bad = sol.positions().to_vec();
        bad[1] = Point::new(100.0, 100.0); // move a sink
        let err = verify_raw(sol.problem(), sol.edge_lengths(), &bad).unwrap_err();
        assert!(matches!(err, VerifyError::SinkMoved { sink: 1, .. }));

        let mut bad = sol.positions().to_vec();
        bad[0] = Point::new(-5.0, -5.0); // move the source
        let err = verify_raw(sol.problem(), sol.edge_lengths(), &bad).unwrap_err();
        assert!(matches!(err, VerifyError::SourceMoved { .. }));
    }

    #[test]
    fn bound_violation_detected() {
        let sol = solved();
        let mut bad = sol.edge_lengths().to_vec();
        // Inflate every edge: delays blow through the upper bounds, but
        // keep geometry realizable (longer is always routable).
        for l in bad.iter_mut().skip(1) {
            *l += 100.0;
        }
        let err = verify_raw(sol.problem(), &bad, sol.positions()).unwrap_err();
        assert!(matches!(err, VerifyError::DelayOutOfBounds { .. }));
    }

    #[test]
    fn error_messages_render() {
        let e = VerifyError::DelayOutOfBounds {
            sink: 3,
            delay: 9.0,
            lower: 1.0,
            upper: 2.0,
        };
        assert!(e.to_string().contains("s3"));
    }

    #[test]
    fn verify_errors_render_as_diagnostics() {
        use lubt_lint::{Level, Target};
        let d = VerifyError::DelayOutOfBounds {
            sink: 3,
            delay: 9.0,
            lower: 1.0,
            upper: 2.0,
        }
        .to_diagnostic();
        assert_eq!(d.pass, "verify");
        assert_eq!(d.level, Level::Deny);
        assert_eq!(d.targets, vec![Target::Sink(3)]);
        assert!(d.message.contains("s3"));

        let d = VerifyError::SourceMoved {
            expected: Point::new(0.0, 0.0),
            actual: Point::new(1.0, 0.0),
        }
        .to_diagnostic();
        assert_eq!(d.targets, vec![Target::Node(0)]);
        assert!(d.is_deny());

        let d = VerifyError::ZeroEdgeNonZero {
            edge: 7,
            length: 2.0,
        }
        .to_diagnostic();
        assert_eq!(d.targets, vec![Target::Edge(7)]);
    }
}
