//! SVG rendering of solved routing trees — the quickest way to eyeball an
//! embedding, wire snaking included.

use crate::LubtSolution;
use lubt_geom::{bounding_box, Point};
use std::fmt::Write as _;

/// Rendering options for [`render_svg_with`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Margin around the drawing, as a fraction of the diagram size.
    pub margin: f64,
    /// Wire color.
    pub wire_color: String,
    /// Sink marker color.
    pub sink_color: String,
    /// Source marker color.
    pub source_color: String,
    /// Steiner-point marker color.
    pub steiner_color: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            margin: 0.05,
            wire_color: "#1f77b4".to_string(),
            sink_color: "#2ca02c".to_string(),
            source_color: "#d62728".to_string(),
            steiner_color: "#7f7f7f".to_string(),
        }
    }
}

/// Renders a solution with default options.
///
/// # Example
///
/// ```
/// use lubt_core::{render_svg, DelayBounds, LubtBuilder};
/// use lubt_geom::Point;
/// let sol = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
///     .source(Point::new(4.0, 0.0))
///     .bounds(DelayBounds::uniform(2, 4.0, 6.0))
///     .solve()?;
/// let svg = render_svg(&sol);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn render_svg(solution: &LubtSolution) -> String {
    render_svg_with(solution, &SvgOptions::default())
}

/// Renders a solution to a standalone SVG document.
///
/// Wires are drawn as the *snaked* polylines (so elongated edges are
/// visibly longer), sinks as circles, the source as a square, Steiner
/// points as small dots. Each element carries a `<title>` tooltip with its
/// identity and, for wires, the exact LP length.
pub fn render_svg_with(solution: &LubtSolution, opts: &SvgOptions) -> String {
    render_tree_svg(
        solution.problem().topology(),
        solution.positions(),
        solution.edge_lengths(),
        opts,
    )
}

/// Renders any embedded tree (topology, placements, edge lengths) — also
/// usable for the baseline constructions, which are not [`LubtSolution`]s.
///
/// Edges whose length exceeds the endpoint span are drawn with their
/// snaked realization.
///
/// # Panics
///
/// Panics when `positions`/`lengths` do not match the topology's node
/// count, or an edge is shorter than its endpoints' distance (unroutable).
pub fn render_tree_svg(
    topo: &lubt_topology::Topology,
    positions: &[Point],
    lengths: &[f64],
    opts: &SvgOptions,
) -> String {
    assert_eq!(positions.len(), topo.num_nodes());
    assert_eq!(lengths.len(), topo.num_nodes());
    let scale_len = 1.0
        + positions
            .iter()
            .map(|p| p.x.abs().max(p.y.abs()))
            .fold(0.0, f64::max);
    let routes: Vec<Vec<Point>> = topo
        .edges()
        .map(|(child, parent)| {
            let from = positions[parent.index()];
            let to = positions[child.index()];
            // Tolerate solver-level rounding on tight edges.
            let len = lengths[child.index()].max(from.dist(to) - 1e-9 * scale_len);
            lubt_geom::route_with_length(from, to, len.max(from.dist(to)))
                .expect("edges are at least as long as their span")
        })
        .collect();
    let delays = lubt_delay::linear::node_delays(topo, lengths);

    // World bounding box over everything drawn.
    let all_points = positions
        .iter()
        .copied()
        .chain(routes.iter().flatten().copied());
    let (lo, hi) = bounding_box(all_points).expect("a solution has nodes");
    let span_x = (hi.x - lo.x).max(1e-9);
    let span_y = (hi.y - lo.y).max(1e-9);
    let margin = opts.margin * span_x.max(span_y);
    let world_w = span_x + 2.0 * margin;
    let world_h = span_y + 2.0 * margin;
    let scale = opts.width / world_w;
    let height = world_h * scale;

    // SVG y grows downward; flip so the plot is Cartesian.
    let tx = |p: Point| (p.x - lo.x + margin) * scale;
    let ty = |p: Point| height - (p.y - lo.y + margin) * scale;

    let marker = (opts.width / 160.0).clamp(2.0, 8.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.1} {:.1}\">",
        opts.width, height, opts.width, height
    );
    let _ = writeln!(
        out,
        "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>"
    );

    // Wires.
    for ((child, _), route) in topo.edges().zip(&routes) {
        let pts: Vec<String> = route
            .iter()
            .map(|&p| format!("{:.2},{:.2}", tx(p), ty(p)))
            .collect();
        let _ = writeln!(
            out,
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{:.2}\">\
             <title>e{} len {:.3}</title></polyline>",
            pts.join(" "),
            opts.wire_color,
            marker / 3.0,
            child.index(),
            lengths[child.index()],
        );
    }

    // Steiner points under the sinks/source so pins stay visible.
    for v in topo.preorder() {
        if topo.is_steiner(v) {
            let p = positions[v.index()];
            let _ = writeln!(
                out,
                "  <circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{:.2}\" fill=\"{}\">\
                 <title>steiner s{}</title></circle>",
                tx(p),
                ty(p),
                marker / 2.0,
                opts.steiner_color,
                v.index(),
            );
        }
    }
    for s in topo.sinks() {
        let p = positions[s.index()];
        let _ = writeln!(
            out,
            "  <circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"{:.2}\" fill=\"{}\">\
             <title>sink s{} delay {:.3}</title></circle>",
            tx(p),
            ty(p),
            marker,
            opts.sink_color,
            s.index(),
            delays[s.index()],
        );
    }
    let src = positions[0];
    let _ = writeln!(
        out,
        "  <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{}\">\
         <title>source s0</title></rect>",
        tx(src) - marker,
        ty(src) - marker,
        2.0 * marker,
        2.0 * marker,
        opts.source_color,
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};

    fn sample() -> LubtSolution {
        LubtBuilder::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 9.0),
        ])
        .source(Point::new(5.0, 3.0))
        .bounds(DelayBounds::uniform(3, 9.0, 12.0))
        .solve()
        .unwrap()
    }

    #[test]
    fn structure_is_complete() {
        let sol = sample();
        let svg = render_svg(&sol);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline per edge.
        let polylines = svg.matches("<polyline").count();
        assert_eq!(polylines, sol.problem().topology().num_edges());
        // One circle per sink + one per steiner point.
        let circles = svg.matches("<circle").count();
        assert_eq!(
            circles,
            sol.problem().topology().num_sinks() + sol.problem().topology().num_steiner()
        );
        // Exactly one source rectangle (plus the background rect).
        assert_eq!(svg.matches("<rect").count(), 2);
        // Tooltips carry identities.
        assert!(svg.contains("sink s1"));
        assert!(svg.contains("source s0"));
    }

    #[test]
    fn balanced_tags() {
        let svg = render_svg(&sample());
        assert_eq!(
            svg.matches("<title>").count(),
            svg.matches("</title>").count()
        );
        assert_eq!(
            svg.matches("<polyline").count(),
            svg.matches("</polyline>").count()
        );
    }

    #[test]
    fn options_are_respected() {
        let sol = sample();
        let opts = SvgOptions {
            width: 400.0,
            wire_color: "#123456".to_string(),
            ..SvgOptions::default()
        };
        let svg = render_svg_with(&sol, &opts);
        assert!(svg.contains("width=\"400\""));
        assert!(svg.contains("#123456"));
    }

    #[test]
    fn degenerate_geometry_renders() {
        // All sinks on one vertical line: zero x-span must not divide by 0.
        let sol = LubtBuilder::new(vec![Point::new(5.0, 0.0), Point::new(5.0, 10.0)])
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(2, 5.0, 8.0))
            .solve()
            .unwrap();
        let svg = render_svg(&sol);
        assert!(svg.contains("</svg>"));
        assert!(!svg.contains("NaN"));
    }
}
