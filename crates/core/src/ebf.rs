//! EBF assembly and solving (§4): objective, delay rows, Steiner rows, and
//! the lazy-separation loop that implements the §4.6 constraint reduction.

use crate::steiner::{all_pair_constraints, seed_pairs, SinkPair};
use crate::{LubtError, LubtProblem};
use lubt_lp::{
    Cmp, InteriorPointSolver, LinExpr, LpSolve, Model, RevisedSolver, SimplexSolver, Status, Var,
};
use lubt_obs::{PhaseTimer, Recorder, SolveTrace, SpanGuard, TraceRecorder};
use lubt_topology::NodeId;
use std::sync::Arc;

/// LP backend selection — the paper used LOQO (interior point) and noted
/// the simplex-vs-interior-point trade-off; both are available here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// Two-phase primal simplex (exact infeasibility certificates;
    /// default).
    Simplex,
    /// Mehrotra predictor-corrector interior point.
    InteriorPoint,
    /// Sparse revised simplex: same pivot rules and certificates as
    /// [`SolverBackend::Simplex`] but the Steiner rows stay sparse and only
    /// the basis factorization is kept — the fast path on large instances.
    Revised,
    /// LP-free exact oracle ([`lubt_dp`]): interval dynamic programming
    /// over per-node feasible delay windows, then a fraction-free rational
    /// dual simplex on the reduced system. Shares no code with `lubt-lp`
    /// — assembly, arithmetic and pivot rules are all independent — so a
    /// disagreement with any float backend is always a real bug. Exact but
    /// eager (`C(m, 2)` pair rows, BigInt pivots): the cross-check and
    /// small-instance backend, not the large-instance fast path.
    Dp,
}

/// Steiner-constraint strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteinerMode {
    /// Materialize all `C(m, 2)` rows up front. Exact but quadratic; only
    /// sensible for small instances (kept for the `ablation_lazy` bench).
    Eager,
    /// Start from a nearest-neighbor seed and add violated rows found by
    /// the separation oracle, re-solving until none remain (§4.6).
    Lazy {
        /// Maximum separation rounds before giving up (safety net; the
        /// loop converges because each round adds at least one violated
        /// cut).
        max_rounds: usize,
        /// Maximum number of violated rows added per round.
        batch: usize,
    },
}

impl SteinerMode {
    /// The default lazy configuration (64 rounds, 256 cuts per round).
    pub fn default_lazy() -> Self {
        SteinerMode::Lazy {
            max_rounds: 64,
            batch: 256,
        }
    }
}

/// Statistics from an EBF solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EbfReport {
    /// Total LP pivots / interior-point steps across all re-solves.
    pub lp_iterations: usize,
    /// Number of separation rounds (1 when eager).
    pub separation_rounds: usize,
    /// Steiner rows present in the final LP.
    pub steiner_rows: usize,
    /// Total available sink-pair rows `C(m, 2)`, for reduction ratios.
    pub total_pairs: usize,
    /// `true` when lazy separation hit `max_rounds` without converging and
    /// fell back to materializing every pair constraint. The answer is
    /// still optimal (the full row set is exact), but the configured lazy
    /// budget was too small — previously this happened silently.
    pub truncated: bool,
}

impl EbfReport {
    /// A warn-level note in the `lubt-lint` diagnostic schema when the
    /// lazy budget was exhausted ([`EbfReport::truncated`]); `None` for a
    /// converged solve. The CLI prints this after `lubt solve` / `lubt
    /// batch` so a silent fallback becomes a visible finding.
    pub fn truncation_diagnostic(&self) -> Option<lubt_lint::Diagnostic> {
        if !self.truncated {
            return None;
        }
        Some(lubt_lint::Diagnostic {
            pass: "lazy-truncation",
            level: lubt_lint::Level::Warn,
            message: format!(
                "lazy Steiner separation did not converge within {} round(s); \
                 all {} pair constraints were materialized as a fallback",
                self.separation_rounds.saturating_sub(1),
                self.total_pairs
            ),
            targets: Vec::new(),
            help: Some(
                "raise SteinerMode::Lazy { max_rounds, batch } or use SteinerMode::Eager"
                    .to_string(),
            ),
        })
    }
}

/// The Edge-Based Formulation solver: builds the LP of §4.3 and solves it,
/// optionally with lazy Steiner-constraint separation.
///
/// Returns the optimal **edge lengths** (indexed by node, entry 0 unused);
/// embedding is a separate step ([`crate::embed_tree`]).
///
/// # Example
///
/// ```
/// use lubt_core::{DelayBounds, EbfSolver, LubtBuilder};
/// use lubt_geom::Point;
/// let problem = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)])
///     .bounds(DelayBounds::uniform(2, 3.0, 5.0))
///     .build()?;
/// let (lengths, report) = EbfSolver::new().solve(&problem)?;
/// assert!(report.separation_rounds >= 1);
/// assert!(lengths.iter().sum::<f64>() >= 6.0 - 1e-6);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EbfSolver {
    backend: SolverBackend,
    steiner_mode: SteinerMode,
    violation_tol: f64,
    prelint: bool,
    audit: bool,
    threads: usize,
    max_lp_iterations: Option<usize>,
    recorder: Arc<dyn Recorder>,
}

impl Default for EbfSolver {
    fn default() -> Self {
        EbfSolver {
            backend: SolverBackend::Simplex,
            steiner_mode: SteinerMode::default_lazy(),
            violation_tol: 1e-6,
            prelint: true,
            audit: false,
            threads: 1,
            max_lp_iterations: None,
            recorder: lubt_obs::noop(),
        }
    }
}

/// Assembles the base EBF model: one variable per edge (cost = weight),
/// zero-edge equality rows, and the per-sink delay window rows of §4.2.
/// No Steiner rows. Returns the model plus the edge-variable table
/// (variable `j - 1` is the edge of node `j`).
fn base_model(problem: &LubtProblem) -> (Model, Vec<Var>) {
    let topo = problem.topology();
    let n_nodes = topo.num_nodes();
    let m = topo.num_sinks();

    let mut model = Model::new();
    let edge_vars: Vec<Var> = (1..n_nodes)
        .map(|j| model.add_var(0.0, problem.weights()[j]))
        .collect();
    let var_of = |node: NodeId| edge_vars[node.index() - 1];

    // Zero-fixed edges (degree-4 splitting).
    for &z in problem.zero_edges() {
        model.add_constraint(LinExpr::from_terms([(var_of(z), 1.0)]), Cmp::Eq, 0.0);
    }

    // Delay constraints (§4.2): l_i <= sum(path) <= u_i, plus the
    // source-sink Steiner constraint when the source location is given
    // (the root then acts as a fixed point: sum(path) >= dist(s0, s_i)).
    for i in 1..=m {
        let sink = NodeId(i);
        let path = topo.path_to_ancestor(sink, topo.root());
        let expr = || LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
        let l = problem.bounds().lower(i - 1);
        let u = problem.bounds().upper(i - 1);
        let mut effective_lower = l;
        if let Some(src) = problem.source() {
            effective_lower = effective_lower.max(src.dist(problem.sink_location(sink)));
        }
        if effective_lower > 0.0 {
            model.add_constraint(expr(), Cmp::Ge, effective_lower);
        }
        if u.is_finite() {
            model.add_constraint(expr(), Cmp::Le, u);
        }
    }

    (model, edge_vars)
}

/// The LP a lazy EBF solve starts from: the base model plus the
/// nearest-neighbor seed Steiner rows.
///
/// This is what [`crate::LubtProblem::lint`] hands to the
/// `model-conditioning` pass, so the linter sees the same rows the solver
/// would — without running a single pivot.
pub fn ebf_model(problem: &LubtProblem) -> Model {
    let (mut model, edge_vars) = base_model(problem);
    let topo = problem.topology();
    let var_of = |node: NodeId| edge_vars[node.index() - 1];
    for pair in seed_pairs(problem) {
        let path = topo.path_between(pair.a, pair.b);
        let expr = LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
        model.add_constraint(expr, Cmp::Ge, pair.dist);
    }
    model
}

impl EbfSolver {
    /// Creates a solver with the default configuration (simplex, lazy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the LP backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the Steiner strategy.
    #[must_use]
    pub fn with_steiner_mode(mut self, mode: SteinerMode) -> Self {
        self.steiner_mode = mode;
        self
    }

    /// Sets the absolute violation tolerance of the separation oracle.
    #[must_use]
    pub fn with_violation_tolerance(mut self, tol: f64) -> Self {
        self.violation_tol = tol;
        self
    }

    /// Sets the worker count for **all** intra-solve parallelism (`0` =
    /// all available cores, default `1` = the exact sequential path):
    /// the separation oracle's pair triangle *and*, on the revised
    /// backend, the assisted pricing / dual-candidate scans inside each
    /// LP (re-)solve.
    ///
    /// Thanks to the canonical cut-merge order of
    /// [`crate::steiner::violated_pairs_with_threads`] and the
    /// deterministic lowest-index-wins reduction of the assisted scans
    /// (DESIGN.md §17), the solve is bit-for-bit identical for every
    /// value — this knob only changes wall-clock.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured oracle worker count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Caps the pivot count of every LP (re-)solve. `None` (the default)
    /// keeps each backend's own default limit. When a solve exhausts the
    /// cap, [`EbfSolver::solve`] fails with
    /// [`LubtError::Lp`]([`lubt_lp::LpError::IterationLimit`]) —
    /// [`LubtError::diagnostic`] renders that as a lint-style finding.
    #[must_use]
    pub fn with_max_lp_iterations(mut self, limit: usize) -> Self {
        self.max_lp_iterations = Some(limit);
        self
    }

    /// Sends solve-path instrumentation (`ebf.*` separation counters,
    /// `simplex.*` pivot counters, `par.*` oracle scheduling counters,
    /// `time.*` phase timers) to `recorder`. The default is a no-op sink;
    /// [`EbfSolver::solve_traced`] wires a [`TraceRecorder`] for you.
    ///
    /// Recording never changes the solve: the recorder observes the pivot
    /// and cut sequence, it does not influence it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The simplex backend configured with this solver's recorder and
    /// iteration cap.
    fn simplex(&self) -> SimplexSolver {
        let mut s = SimplexSolver::new().with_recorder(Arc::clone(&self.recorder));
        if let Some(limit) = self.max_lp_iterations {
            s = s.with_max_iterations(limit);
        }
        s
    }

    /// The revised-simplex backend configured with this solver's recorder
    /// and iteration cap.
    fn revised(&self) -> RevisedSolver {
        let mut s = RevisedSolver::new()
            .with_recorder(Arc::clone(&self.recorder))
            .with_threads(self.threads);
        if let Some(limit) = self.max_lp_iterations {
            s = s.with_max_iterations(limit);
        }
        s
    }

    /// The interior-point backend configured with this solver's iteration
    /// cap (the IPM reports no per-pivot counters).
    fn interior(&self) -> InteriorPointSolver {
        let mut s = InteriorPointSolver::new();
        if let Some(limit) = self.max_lp_iterations {
            s = s.with_max_iterations(limit);
        }
        s
    }

    /// Like [`EbfSolver::solve`], but every phase of the solve is recorded
    /// into a fresh [`TraceRecorder`] and the resulting [`SolveTrace`] is
    /// returned **alongside** the result — including on failure, so an
    /// iteration-limit or infeasibility exit still yields the counters
    /// accumulated up to that point.
    ///
    /// The trace is deliberately *not* part of [`EbfReport`]: reports are
    /// compared bit-for-bit in the thread-count determinism tests, while a
    /// trace carries wall-clock timings and scheduling counters that
    /// legitimately differ between runs (see `DESIGN.md` §10).
    pub fn solve_traced(
        &self,
        problem: &LubtProblem,
    ) -> (Result<(Vec<f64>, EbfReport), LubtError>, SolveTrace) {
        let rec = Arc::new(TraceRecorder::new());
        let traced = self
            .clone()
            .with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        let result = traced.solve(problem);
        (result, rec.snapshot())
    }

    /// Enables or disables the pre-solve lint hook (on by default). When
    /// enabled, instance-level lint passes run before the LP is built and a
    /// deny-level finding short-circuits into [`LubtError::Rejected`]
    /// carrying the diagnostics; disabled, a hopeless instance falls
    /// through to the LP's bare [`LubtError::Infeasible`] certificate.
    #[must_use]
    pub fn with_prelint(mut self, enabled: bool) -> Self {
        self.prelint = enabled;
        self
    }

    /// Enables the post-solve exact certificate audit (off by default).
    ///
    /// When enabled, every LP outcome is checked against the backend's own
    /// proof object — an optimality certificate (basis + duals, verified
    /// for primal feasibility, dual feasibility and complementary
    /// slackness) or a Farkas infeasibility ray — in exact dyadic-rational
    /// arithmetic via [`lubt_audit`]. The audit observes the solve, it
    /// never changes it: audited and unaudited runs produce bit-identical
    /// lengths and reports. A certificate that fails to verify aborts the
    /// solve with [`LubtError::Audit`] carrying deny-level `audit-*`
    /// diagnostics.
    ///
    /// The interior-point backend carries no simplex basis, so only the
    /// primal side (row residuals, variable bounds, objective) is checked
    /// there. Verification outcomes land on the recorder under `audit.*`
    /// counters and the `time.audit` phase timer.
    #[must_use]
    pub fn with_audit(mut self, enabled: bool) -> Self {
        self.audit = enabled;
        self
    }

    /// Whether the post-solve exact certificate audit is enabled.
    pub fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// Solves the EBF for `problem`.
    ///
    /// # Errors
    ///
    /// * [`LubtError::Rejected`] — the pre-solve lint hook proved the
    ///   instance infeasible (e.g. `u_i` below the source-to-sink
    ///   distance) before any LP was built; the diagnostics name the
    ///   offending sinks. See [`EbfSolver::with_prelint`].
    /// * [`LubtError::Infeasible`] — the LP has no feasible point, which by
    ///   Theorem 4.2 certifies that no LUBT exists for this topology and
    ///   bounds (the paper's "we immediately know the existence of a
    ///   solution" remark).
    /// * [`LubtError::Lp`] — backend failure (iteration limit, numerics).
    /// * [`LubtError::Audit`] — the post-solve certificate audit rejected
    ///   the outcome (only with [`EbfSolver::with_audit`]).
    pub fn solve(&self, problem: &LubtProblem) -> Result<(Vec<f64>, EbfReport), LubtError> {
        self.solve_retaining(problem)
            .map(|(lengths, report, _)| (lengths, report))
    }

    /// [`EbfSolver::solve`], additionally handing back the converged
    /// incremental session as a [`WarmEbfSession`] when the solve went
    /// through one (lazy Steiner mode on the [`SolverBackend::Simplex`] or
    /// [`SolverBackend::Revised`] backend; `None` otherwise).
    ///
    /// A warm session is what the serve layer keeps across requests: its
    /// [`WarmEbfSession::resolve_lengths`] replays the converged basis
    /// with zero pivots and returns bit-identical edge lengths, skipping
    /// model assembly and every separation round.
    ///
    /// # Errors
    ///
    /// Exactly [`EbfSolver::solve`]'s errors.
    pub fn solve_retaining(
        &self,
        problem: &LubtProblem,
    ) -> Result<(Vec<f64>, EbfReport, Option<WarmEbfSession>), LubtError> {
        // Root profiling span for the whole solve. The span-tree *shape*
        // (paths, hit counts, child order) is deterministic material —
        // every child below is entered on this thread in a
        // schedule-independent order (DESIGN.md §16).
        let rec: &dyn Recorder = &*self.recorder;
        let _solve_span = SpanGuard::enter(rec, "solve");
        if self.prelint {
            let _lint_span = SpanGuard::enter(rec, "lint");
            let diags = problem.prelint_diagnostics();
            if lubt_lint::has_deny(&diags) {
                return Err(LubtError::Rejected(diags));
            }
        }

        if self.backend == SolverBackend::Dp {
            return self.solve_dp(problem).map(|(l, r)| (l, r, None));
        }

        let topo = problem.topology();
        let n_nodes = topo.num_nodes();
        let m = topo.num_sinks();

        let (mut model, edge_vars) = base_model(problem);
        let var_of = |node: NodeId| edge_vars[node.index() - 1];

        let add_steiner_row = |model: &mut Model, pair: &SinkPair| {
            let path = topo.path_between(pair.a, pair.b);
            let expr = LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
            model.add_constraint(expr, Cmp::Ge, pair.dist);
        };

        let total_pairs = m * (m - 1) / 2;
        let mut lp_iterations = 0usize;
        let mut steiner_rows = 0usize;
        // Zero-padded so the name-sorted child order of the span tree is
        // also the numeric round order.
        let round_name = |round: usize| {
            if rec.enabled() {
                format!("round.{round:04}")
            } else {
                String::new()
            }
        };

        // Post-solve audit hook: check the backend's proof object in exact
        // arithmetic before trusting the outcome. Pure observation — the
        // solution bits are untouched; a failed audit aborts with
        // `LubtError::Audit`.
        let audit_check = |model: &Model,
                           sol: &lubt_lp::Solution,
                           cert: Option<&lubt_lp::Certificate>|
         -> Result<(), LubtError> {
            let _t = PhaseTimer::new(rec, "time.audit");
            let _span = SpanGuard::enter(rec, "audit");
            let (findings, verified_key) = match self.backend {
                // The IPM carries no simplex basis, so only the primal side
                // is checkable; dual/CS verification needs a certificate.
                SolverBackend::InteriorPoint => {
                    if sol.status() == Status::Optimal {
                        (
                            lubt_audit::audit_primal(model, sol.values(), sol.objective()),
                            Some("audit.primal_verified"),
                        )
                    } else {
                        (Vec::new(), None)
                    }
                }
                _ => {
                    let key = match sol.status() {
                        Status::Optimal => Some("audit.optimality_verified"),
                        Status::Infeasible => Some("audit.farkas_verified"),
                        Status::Unbounded => None,
                    };
                    (lubt_audit::audit_solution(model, sol, cert), key)
                }
            };
            if findings.is_empty() {
                if rec.enabled() {
                    if let Some(key) = verified_key {
                        rec.incr(key, 1);
                    }
                }
                Ok(())
            } else {
                if rec.enabled() {
                    rec.incr("audit.failures", findings.len() as u64);
                }
                Err(LubtError::Audit(findings))
            }
        };

        let solve_once = |model: &Model| -> Result<lubt_lp::Solution, LubtError> {
            let (sol, cert) = {
                let _t = PhaseTimer::new(rec, "time.lp");
                let _span = SpanGuard::enter(rec, "lp");
                match self.backend {
                    SolverBackend::Simplex => {
                        if self.audit {
                            self.simplex().solve_certified(model)?
                        } else {
                            (self.simplex().solve(model)?, None)
                        }
                    }
                    SolverBackend::InteriorPoint => (self.interior().solve(model)?, None),
                    SolverBackend::Revised => {
                        if self.audit {
                            self.revised().solve_certified(model)?
                        } else {
                            (self.revised().solve(model)?, None)
                        }
                    }
                    SolverBackend::Dp => unreachable!("dp dispatches before the separation loop"),
                }
            };
            if self.audit {
                audit_check(model, &sol, cert.as_ref())?;
            }
            match sol.status() {
                Status::Optimal => Ok(sol),
                Status::Infeasible => Err(LubtError::Infeasible),
                Status::Unbounded => Err(LubtError::Lp(lubt_lp::LpError::NumericalBreakdown(
                    "EBF objective cannot be unbounded (non-negative costs)".to_string(),
                ))),
            }
        };

        // One separation round's worth of oracle bookkeeping: round count,
        // residual violation mass (sum of all current violations — how far
        // from Steiner-feasible the incumbent lengths are), and a bounded
        // per-round event line.
        let note_round = |rounds: usize, violated: &[(SinkPair, f64)]| {
            if !rec.enabled() {
                return;
            }
            rec.incr("ebf.rounds", 1);
            rec.record_max("ebf.peak_violations", violated.len() as u64);
            let mass: f64 = violated.iter().map(|(_, v)| v).sum();
            rec.gauge("ebf.residual_violation_mass", mass);
            rec.event(
                "ebf.round",
                &format!(
                    "round {rounds}: {} violated pair(s), residual mass {mass:.6}",
                    violated.len()
                ),
            );
        };

        let extract = |sol: &lubt_lp::Solution| -> Vec<f64> {
            let mut lengths = vec![0.0; n_nodes];
            for (j, v) in edge_vars.iter().enumerate() {
                lengths[j + 1] = sol.value(*v).max(0.0);
            }
            lengths
        };

        match self.steiner_mode {
            SteinerMode::Eager => {
                for pair in all_pair_constraints(problem) {
                    add_steiner_row(&mut model, &pair);
                    steiner_rows += 1;
                }
                if rec.enabled() {
                    rec.incr("ebf.rounds", 1);
                    rec.incr("ebf.eager_rows", steiner_rows as u64);
                }
                let sol = solve_once(&model)?;
                lp_iterations += sol.iterations();
                Ok((
                    extract(&sol),
                    EbfReport {
                        lp_iterations,
                        separation_rounds: 1,
                        steiner_rows,
                        total_pairs,
                        truncated: false,
                    },
                    None,
                ))
            }
            SteinerMode::Lazy { max_rounds, batch } => {
                for pair in seed_pairs(problem) {
                    add_steiner_row(&mut model, &pair);
                    steiner_rows += 1;
                }
                if rec.enabled() {
                    rec.incr("ebf.seed_rows", steiner_rows as u64);
                }
                // On the simplex backends (dense and revised), the growing
                // model lives in an incremental session: each separation
                // round only appends rows, which the dual simplex repairs
                // from the previous optimum instead of re-solving cold.
                if matches!(
                    self.backend,
                    SolverBackend::Simplex | SolverBackend::Revised
                ) {
                    let steiner_expr = |pair: &SinkPair| {
                        let path = topo.path_between(pair.a, pair.b);
                        LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)))
                    };
                    let mut session = {
                        // The cold solve of the seed model: its kernel
                        // phases nest under `solve/lp`, while warm-started
                        // per-round resolves land under each round's span.
                        let _span = SpanGuard::enter(rec, "lp");
                        match self.backend {
                            SolverBackend::Simplex => GrowingSession::Dense(Box::new(
                                lubt_lp::SimplexSession::start_with(model, self.simplex())?,
                            )),
                            _ => GrowingSession::Revised(Box::new(
                                lubt_lp::RevisedSession::start_with(model, self.revised())?,
                            )),
                        }
                    };
                    let mut rounds = 0usize;
                    let mut truncated = false;
                    let mut sep_cache = crate::steiner::SeparationCache::new();
                    loop {
                        // One span per separation round, covering the warm
                        // resolve and the violated-pair scan.
                        let round_label = round_name(rounds + 1);
                        let _round_span = SpanGuard::enter(rec, &round_label);
                        // `resolve` hands back a borrow of the session, so
                        // copy out everything the round needs (plus a clone
                        // of the solution when auditing — the certificate
                        // lives on the session itself).
                        let (status, iterations, lengths, audited) = {
                            let _t = PhaseTimer::new(rec, "time.lp");
                            let _span = SpanGuard::enter(rec, "lp");
                            let sol = session.resolve()?;
                            (
                                sol.status(),
                                sol.iterations(),
                                extract(sol),
                                if self.audit { Some(sol.clone()) } else { None },
                            )
                        };
                        match status {
                            Status::Optimal => {}
                            Status::Infeasible => {
                                // Theorem 4.2 turns LP infeasibility into a
                                // "no LUBT exists" certificate — under
                                // audit, insist on an exactly verifying
                                // Farkas ray before trusting that claim.
                                if let Some(sol) = &audited {
                                    let cert = session.certificate();
                                    audit_check(session.model(), sol, cert.as_ref())?;
                                }
                                return Err(LubtError::Infeasible);
                            }
                            Status::Unbounded => {
                                return Err(LubtError::Lp(lubt_lp::LpError::NumericalBreakdown(
                                    "EBF objective cannot be unbounded".to_string(),
                                )))
                            }
                        }
                        lp_iterations = iterations;
                        rounds += 1;
                        let violated = {
                            let _t = PhaseTimer::new(rec, "time.separation");
                            let _span = SpanGuard::enter(rec, "separate");
                            crate::steiner::violated_pairs_cached(
                                problem,
                                &lengths,
                                self.violation_tol,
                                self.threads,
                                &mut sep_cache,
                                rec,
                            )
                        };
                        note_round(rounds, &violated);
                        if violated.is_empty() {
                            // Converged: the warm-started session's final
                            // basis is the one the certificate describes —
                            // audit it before returning the lengths.
                            if let Some(sol) = &audited {
                                let cert = session.certificate();
                                audit_check(session.model(), sol, cert.as_ref())?;
                            }
                            let report = EbfReport {
                                lp_iterations,
                                separation_rounds: rounds,
                                steiner_rows,
                                total_pairs,
                                truncated,
                            };
                            let warm = WarmEbfSession {
                                session,
                                edge_vars: edge_vars.clone(),
                                n_nodes,
                                report: report.clone(),
                            };
                            return Ok((lengths, report, Some(warm)));
                        }
                        let cuts: Vec<SinkPair> = if rounds >= max_rounds {
                            // Safety net: materialize everything.
                            truncated = true;
                            if rec.enabled() {
                                rec.incr("ebf.truncations", 1);
                                rec.event(
                                    "ebf.truncation",
                                    &format!(
                                        "lazy budget exhausted after {rounds} round(s); \
                                         materializing all {total_pairs} pair constraints"
                                    ),
                                );
                            }
                            all_pair_constraints(problem)
                        } else {
                            violated.into_iter().take(batch).map(|(p, _)| p).collect()
                        };
                        for pair in cuts {
                            session.add_constraint(steiner_expr(&pair), Cmp::Ge, pair.dist)?;
                            steiner_rows += 1;
                            if rec.enabled() {
                                rec.incr("ebf.cuts_added", 1);
                            }
                        }
                    }
                }
                let mut rounds = 0usize;
                let mut sep_cache = crate::steiner::SeparationCache::new();
                loop {
                    let round_label = round_name(rounds + 1);
                    let _round_span = SpanGuard::enter(rec, &round_label);
                    let sol = solve_once(&model)?;
                    lp_iterations += sol.iterations();
                    rounds += 1;
                    let lengths = extract(&sol);
                    let violated = {
                        let _t = PhaseTimer::new(rec, "time.separation");
                        let _span = SpanGuard::enter(rec, "separate");
                        crate::steiner::violated_pairs_cached(
                            problem,
                            &lengths,
                            self.violation_tol,
                            self.threads,
                            &mut sep_cache,
                            rec,
                        )
                    };
                    note_round(rounds, &violated);
                    if violated.is_empty() {
                        return Ok((
                            lengths,
                            EbfReport {
                                lp_iterations,
                                separation_rounds: rounds,
                                steiner_rows,
                                total_pairs,
                                truncated: false,
                            },
                            None,
                        ));
                    }
                    if rounds >= max_rounds {
                        // Safety net: materialize everything and solve once.
                        if rec.enabled() {
                            rec.incr("ebf.truncations", 1);
                            rec.event(
                                "ebf.truncation",
                                &format!(
                                    "lazy budget exhausted after {rounds} round(s); \
                                     materializing all {total_pairs} pair constraints"
                                ),
                            );
                        }
                        for pair in all_pair_constraints(problem) {
                            add_steiner_row(&mut model, &pair);
                            steiner_rows += 1;
                        }
                        let sol = solve_once(&model)?;
                        lp_iterations += sol.iterations();
                        return Ok((
                            extract(&sol),
                            EbfReport {
                                lp_iterations,
                                separation_rounds: rounds + 1,
                                steiner_rows,
                                total_pairs,
                                truncated: true,
                            },
                            None,
                        ));
                    }
                    for (pair, _) in violated.into_iter().take(batch) {
                        add_steiner_row(&mut model, &pair);
                        steiner_rows += 1;
                        if rec.enabled() {
                            rec.incr("ebf.cuts_added", 1);
                        }
                    }
                }
            }
        }
    }

    /// The [`SolverBackend::Dp`] path: convert the problem to the plain-data
    /// [`lubt_dp::DpInstance`] (same effective lower bounds and pair set as
    /// the eager §4.3 LP) and solve it exactly — no separation loop, no
    /// floats until the final rounding of the rational optimum.
    fn solve_dp(&self, problem: &LubtProblem) -> Result<(Vec<f64>, EbfReport), LubtError> {
        let topo = problem.topology();
        let n_nodes = topo.num_nodes();
        let m = topo.num_sinks();
        let total_pairs = m * (m - 1) / 2;
        let rec: &dyn Recorder = &*self.recorder;

        // Per-sink effective windows, exactly as `base_model` builds its
        // Equation 2 rows: a given source acts as a fixed point, lifting
        // the lower bound to the source-sink distance.
        let sinks: Vec<lubt_dp::DpSink> = (1..=m)
            .map(|i| {
                let sink = NodeId(i);
                let mut effective_lower = problem.bounds().lower(i - 1);
                if let Some(src) = problem.source() {
                    effective_lower = effective_lower.max(src.dist(problem.sink_location(sink)));
                }
                lubt_dp::DpSink {
                    node: i,
                    lower: effective_lower,
                    upper: problem.bounds().upper(i - 1),
                }
            })
            .collect();
        let pairs: Vec<lubt_dp::DpPair> = all_pair_constraints(problem)
            .into_iter()
            .map(|p| lubt_dp::DpPair {
                a: p.a.index(),
                b: p.b.index(),
                dist: p.dist,
            })
            .collect();
        let parents: Vec<usize> = (0..n_nodes)
            .map(|v| topo.parent(NodeId(v)).map_or(0, |p| p.index()))
            .collect();
        let inst = lubt_dp::DpInstance {
            parents,
            root: topo.root().index(),
            weights: problem.weights().to_vec(),
            zero_edges: problem.zero_edges().iter().map(|z| z.index()).collect(),
            sinks,
            pairs,
        };

        let max_pivots = self.max_lp_iterations.map_or(u64::MAX, |l| l as u64);
        let outcome = {
            let _t = PhaseTimer::new(rec, "time.dp");
            let _span = SpanGuard::enter(rec, "dp");
            if rec.enabled() {
                // Phase spans are synthesized from the DP's own stage
                // clock; hit counts come from the deterministic report
                // counters, so the tree shape stays thread-invariant.
                lubt_dp::solve_profiled(&inst, max_pivots).map(|(sol, phases)| {
                    rec.span_record("sweeps", sol.report.sweeps, phases.sweeps_ns);
                    rec.span_record("fold", 1, phases.fold_ns);
                    rec.span_record("dual_simplex", sol.report.pivots, phases.dual_simplex_ns);
                    sol
                })
            } else {
                lubt_dp::solve(&inst, max_pivots)
            }
        };
        let sol = match outcome {
            Ok(sol) => sol,
            Err(lubt_dp::DpError::PivotLimit { limit }) => {
                if rec.enabled() {
                    rec.incr("dp.pivot_limit_hits", 1);
                }
                return Err(LubtError::Lp(lubt_lp::LpError::IterationLimit {
                    limit: limit as usize,
                }));
            }
            // A validated LubtProblem cannot produce a malformed instance;
            // if it does, the converter above is the bug.
            Err(e @ lubt_dp::DpError::Malformed(_)) => return Err(LubtError::Input(e.to_string())),
        };
        if rec.enabled() {
            rec.incr("dp.solves", 1);
            rec.incr("dp.pivots", sol.report.pivots);
            rec.incr("dp.sweeps", sol.report.sweeps);
            rec.incr("dp.rows", sol.report.rows);
            rec.incr("dp.rows_pruned", sol.report.rows_pruned);
            rec.incr("dp.fixed_vars", sol.report.fixed_vars);
        }
        match sol.status {
            lubt_dp::DpStatus::Infeasible => {
                // The DP's infeasibility is already an exact certificate
                // (empty delay interval or an all-fixed violated row);
                // there is no float Farkas ray for the audit to re-check.
                if rec.enabled() && sol.report.interval_infeasible {
                    rec.incr("dp.interval_infeasible", 1);
                }
                Err(LubtError::Infeasible)
            }
            lubt_dp::DpStatus::Optimal => {
                if self.audit {
                    // Cross-check the rounded lengths against the eager
                    // §4.3 LP — independently assembled window rows plus
                    // all C(m, 2) pair rows — like the certificate-free
                    // interior-point audit.
                    let _t = PhaseTimer::new(rec, "time.audit");
                    let _span = SpanGuard::enter(rec, "audit");
                    let (mut model, edge_vars) = base_model(problem);
                    let var_of = |node: NodeId| edge_vars[node.index() - 1];
                    for pair in all_pair_constraints(problem) {
                        let path = topo.path_between(pair.a, pair.b);
                        let expr = LinExpr::from_terms(path.iter().map(|&e| (var_of(e), 1.0)));
                        model.add_constraint(expr, Cmp::Ge, pair.dist);
                    }
                    let findings =
                        lubt_audit::audit_primal(&model, &sol.lengths[1..], sol.objective);
                    if !findings.is_empty() {
                        if rec.enabled() {
                            rec.incr("audit.failures", findings.len() as u64);
                        }
                        return Err(LubtError::Audit(findings));
                    }
                    if rec.enabled() {
                        rec.incr("audit.primal_verified", 1);
                    }
                }
                Ok((
                    sol.lengths,
                    EbfReport {
                        lp_iterations: sol.report.pivots as usize,
                        separation_rounds: 1,
                        steiner_rows: total_pairs,
                        total_pairs,
                        truncated: false,
                    },
                ))
            }
        }
    }
}

/// The two incremental LP sessions behind one surface, so the lazy
/// separation loop is written once.
enum GrowingSession {
    Dense(Box<lubt_lp::SimplexSession>),
    Revised(Box<lubt_lp::RevisedSession>),
}

impl GrowingSession {
    fn resolve(&mut self) -> Result<&lubt_lp::Solution, lubt_lp::LpError> {
        match self {
            GrowingSession::Dense(s) => s.resolve(),
            GrowingSession::Revised(s) => s.resolve(),
        }
    }

    fn add_constraint(
        &mut self,
        expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<(), lubt_lp::LpError> {
        match self {
            GrowingSession::Dense(s) => s.add_constraint(expr, cmp, rhs),
            GrowingSession::Revised(s) => s.add_constraint(expr, cmp, rhs),
        }
    }

    /// The session's grown model (base rows plus every appended cut) —
    /// what the audit verifies certificates against.
    fn model(&self) -> &Model {
        match self {
            GrowingSession::Dense(s) => s.model(),
            GrowingSession::Revised(s) => s.model(),
        }
    }

    /// The certificate of the most recent (re-)solve, if one is available.
    fn certificate(&self) -> Option<lubt_lp::Certificate> {
        match self {
            GrowingSession::Dense(s) => s.certificate(),
            GrowingSession::Revised(s) => s.certificate(),
        }
    }
}

/// A converged incremental LP session retained after
/// [`EbfSolver::solve_retaining`], for warm re-solves of the *same*
/// problem.
///
/// Incremental sessions only ever grow (rows are appended, never
/// removed), so a retained session is only valid for the exact problem it
/// converged on — which is precisely the serve cache scenario: identical
/// canonical instance, identical bounds. Re-resolving with no pending
/// rows returns the cached optimal basis unchanged, making
/// [`WarmEbfSession::resolve_lengths`] a zero-pivot replay whose lengths
/// are bit-identical to the original solve's.
pub struct WarmEbfSession {
    session: GrowingSession,
    edge_vars: Vec<Var>,
    n_nodes: usize,
    report: EbfReport,
}

impl std::fmt::Debug for WarmEbfSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmEbfSession")
            .field("n_nodes", &self.n_nodes)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl WarmEbfSession {
    /// The report of the original converged solve. A warm replay performs
    /// no pivots and no separation rounds, so this is also the honest
    /// description of how the retained basis was produced.
    pub fn report(&self) -> &EbfReport {
        &self.report
    }

    /// Replays the converged basis and extracts the edge lengths —
    /// bit-identical to what the original solve returned.
    ///
    /// # Errors
    ///
    /// [`LubtError::Lp`] if the underlying session reports a failure
    /// (cannot happen on a session retained in the converged-optimal
    /// state, but the type does not prove that), [`LubtError::Infeasible`]
    /// if it somehow holds an infeasible outcome.
    pub fn resolve_lengths(&mut self) -> Result<Vec<f64>, LubtError> {
        let sol = self.session.resolve()?;
        match sol.status() {
            Status::Optimal => {}
            Status::Infeasible => return Err(LubtError::Infeasible),
            Status::Unbounded => {
                return Err(LubtError::Lp(lubt_lp::LpError::NumericalBreakdown(
                    "EBF objective cannot be unbounded".to_string(),
                )))
            }
        }
        let mut lengths = vec![0.0; self.n_nodes];
        for (j, v) in self.edge_vars.iter().enumerate() {
            lengths[j + 1] = sol.value(*v).max(0.0);
        }
        Ok(lengths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_delay::linear::{node_delays, tree_cost};
    use lubt_geom::Point;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ]
    }

    #[test]
    fn unbounded_reduces_to_steiner_tree() {
        // 2 sinks 8 apart: minimal tree = 8 (plus nothing else).
        let p = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .bounds(DelayBounds::unbounded(2))
            .build()
            .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
        assert!((tree_cost(&lengths) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn delay_bounds_are_respected() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
        let d = node_delays(p.topology(), &lengths);
        for s in p.topology().sinks() {
            assert!(d[s.index()] >= 12.0 - 1e-6, "sink {s}: {}", d[s.index()]);
            assert!(d[s.index()] <= 15.0 + 1e-6, "sink {s}: {}", d[s.index()]);
        }
    }

    #[test]
    fn infeasible_upper_bound_is_rejected_before_the_lp() {
        // Radius is 10; u = 5 < dist(source, sinks) has no solution (Eq 3).
        // The pre-solve lint hook catches this without building the LP.
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::upper_only(4, 5.0))
            .build()
            .unwrap();
        match EbfSolver::new().solve(&p) {
            Err(LubtError::Rejected(diags)) => {
                assert!(diags.iter().any(|d| d.pass == "sink-reachability"));
                assert!(lubt_lint::has_deny(&diags));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_upper_bound_is_certified_by_the_lp_without_prelint() {
        // Same instance with the hook disabled: the LP itself certifies
        // infeasibility (Theorem 4.2).
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::upper_only(4, 5.0))
            .build()
            .unwrap();
        assert!(matches!(
            EbfSolver::new().with_prelint(false).solve(&p),
            Err(LubtError::Infeasible)
        ));
    }

    #[test]
    fn ebf_model_matches_the_lazy_seed_row_count() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let model = ebf_model(&p);
        assert_eq!(model.num_vars(), p.topology().num_nodes() - 1);
        // Per sink: one Ge row (effective lower > 0) and one Le row, plus
        // the seed Steiner rows the lazy solve starts from.
        let m = p.topology().num_sinks();
        let seeds = crate::steiner::seed_pairs(&p).len();
        assert_eq!(model.num_constraints(), 2 * m + seeds);
        assert!(model.validate().is_ok());
    }

    #[test]
    fn lazy_and_eager_agree() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 12.0))
            .build()
            .unwrap();
        let (l1, r1) = EbfSolver::new().solve(&p).unwrap();
        let (l2, r2) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Eager)
            .solve(&p)
            .unwrap();
        assert!((tree_cost(&l1) - tree_cost(&l2)).abs() < 1e-6);
        assert!(r1.steiner_rows <= r2.steiner_rows);
        assert_eq!(r2.total_pairs, 6);
    }

    #[test]
    fn backends_agree() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (l1, _) = EbfSolver::new().solve(&p).unwrap();
        let (l2, _) = EbfSolver::new()
            .with_backend(SolverBackend::InteriorPoint)
            .solve(&p)
            .unwrap();
        let scale = 1.0 + tree_cost(&l1).abs();
        assert!((tree_cost(&l1) - tree_cost(&l2)).abs() / scale < 1e-5);
    }

    #[test]
    fn revised_backend_matches_dense_simplex() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (dense, dr) = EbfSolver::new().solve(&p).unwrap();
        let (revised, rr) = EbfSolver::new()
            .with_backend(SolverBackend::Revised)
            .solve(&p)
            .unwrap();
        assert!((tree_cost(&dense) - tree_cost(&revised)).abs() < 1e-6);
        assert_eq!(dr.separation_rounds, rr.separation_rounds);
        assert_eq!(dr.steiner_rows, rr.steiner_rows);
        // Eager mode exercises the cold two-phase path instead of the
        // incremental session.
        let (eager, _) = EbfSolver::new()
            .with_backend(SolverBackend::Revised)
            .with_steiner_mode(SteinerMode::Eager)
            .solve(&p)
            .unwrap();
        assert!((tree_cost(&dense) - tree_cost(&eager)).abs() < 1e-6);
    }

    #[test]
    fn revised_backend_is_thread_deterministic() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let solver = || EbfSolver::new().with_backend(SolverBackend::Revised);
        let (base_lengths, base_report) = solver().solve(&p).unwrap();
        for threads in [2, 8] {
            let (lengths, report) = solver().with_threads(threads).solve(&p).unwrap();
            assert_eq!(lengths, base_lengths, "threads={threads}");
            assert_eq!(report, base_report, "threads={threads}");
        }
    }

    #[test]
    fn revised_backend_traces_lp_counters() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new()
            .with_backend(SolverBackend::Revised)
            .solve_traced(&p);
        let (_, report) = result.unwrap();
        assert_eq!(trace.counter("lp.solves"), 1);
        assert_eq!(
            trace.counter("lp.resolves"),
            report.separation_rounds as u64 - 1
        );
        assert!(trace.counter("lp.priced_columns") > 0, "{trace:?}");
        // The revised backend must not touch the dense backend's keys.
        assert_eq!(trace.counter("simplex.solves"), 0);
        assert_eq!(trace.counter("simplex.pivots"), 0);
    }

    #[test]
    fn audited_solves_match_unaudited_bit_for_bit() {
        // The audit is pure observation: lengths and reports are identical
        // with and without it, and the verification counters land.
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        for (backend, key) in [
            (SolverBackend::Simplex, "audit.optimality_verified"),
            (SolverBackend::Revised, "audit.optimality_verified"),
            (SolverBackend::InteriorPoint, "audit.primal_verified"),
            (SolverBackend::Dp, "audit.primal_verified"),
        ] {
            let (base_lengths, base_report) =
                EbfSolver::new().with_backend(backend).solve(&p).unwrap();
            let (result, trace) = EbfSolver::new()
                .with_backend(backend)
                .with_audit(true)
                .solve_traced(&p);
            let (lengths, report) = result.unwrap();
            assert_eq!(lengths, base_lengths, "{backend:?}");
            assert_eq!(report, base_report, "{backend:?}");
            assert!(trace.counter(key) >= 1, "{backend:?}: {trace:?}");
            assert_eq!(trace.counter("audit.failures"), 0, "{backend:?}");
            assert!(trace.timings_ns.contains_key("time.audit"), "{backend:?}");
        }
    }

    #[test]
    fn audited_eager_solve_verifies_its_certificate() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        for backend in [SolverBackend::Simplex, SolverBackend::Revised] {
            let (result, trace) = EbfSolver::new()
                .with_backend(backend)
                .with_steiner_mode(SteinerMode::Eager)
                .with_audit(true)
                .solve_traced(&p);
            assert!(result.is_ok(), "{backend:?}");
            assert_eq!(trace.counter("audit.optimality_verified"), 1, "{backend:?}");
            assert_eq!(trace.counter("audit.failures"), 0, "{backend:?}");
        }
    }

    #[test]
    fn audited_infeasibility_verifies_a_farkas_ray() {
        // With prelint off, the LP itself certifies infeasibility; under
        // audit the Farkas ray must verify exactly before the Infeasible
        // error is surfaced (on both simplex backends, warm and cold).
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::upper_only(4, 5.0))
            .build()
            .unwrap();
        for backend in [SolverBackend::Simplex, SolverBackend::Revised] {
            for mode in [SteinerMode::default_lazy(), SteinerMode::Eager] {
                let (result, trace) = EbfSolver::new()
                    .with_backend(backend)
                    .with_steiner_mode(mode)
                    .with_prelint(false)
                    .with_audit(true)
                    .solve_traced(&p);
                assert!(
                    matches!(result, Err(LubtError::Infeasible)),
                    "{backend:?}/{mode:?}"
                );
                assert_eq!(
                    trace.counter("audit.farkas_verified"),
                    1,
                    "{backend:?}/{mode:?}"
                );
                assert_eq!(trace.counter("audit.failures"), 0, "{backend:?}/{mode:?}");
            }
        }
    }

    #[test]
    fn audit_accessor_reports_the_flag() {
        assert!(!EbfSolver::new().audit_enabled());
        assert!(EbfSolver::new().with_audit(true).audit_enabled());
    }

    #[test]
    fn weighted_edges_shift_the_optimum() {
        // Heavily weighting one edge should never *increase* its length.
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (base, _) = EbfSolver::new().solve(&p).unwrap();
        let n = p.topology().num_nodes();
        let mut w = vec![1.0; n];
        // Find the longest edge and penalize it.
        let longest = (1..n)
            .max_by(|&a, &b| base[a].partial_cmp(&base[b]).unwrap())
            .unwrap();
        w[longest] = 50.0;
        let p2 = p.clone().with_weights(w).unwrap();
        let (heavy, _) = EbfSolver::new().solve(&p2).unwrap();
        assert!(heavy[longest] <= base[longest] + 1e-6);
    }

    #[test]
    fn zero_edges_stay_zero() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let n = p.topology().num_nodes();
        let p = p.with_zero_edges(vec![NodeId(n - 1)]).unwrap();
        let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
        assert!(lengths[n - 1].abs() < 1e-9);
    }

    #[test]
    fn tiny_lazy_budget_sets_truncated_and_warns() {
        // One round with a one-cut batch cannot converge on a square with
        // bounds; the safety net materializes every pair and must say so.
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (lengths, report) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Lazy {
                max_rounds: 1,
                batch: 1,
            })
            .solve(&p)
            .unwrap();
        assert!(report.truncated, "safety net fired, report must say so");
        assert!(report.steiner_rows > report.total_pairs);
        let diag = report.truncation_diagnostic().expect("warn note expected");
        assert_eq!(diag.pass, "lazy-truncation");
        assert_eq!(diag.level, lubt_lint::Level::Warn);
        // The fallback is exact: same optimum as an eager solve.
        let (eager, _) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Eager)
            .solve(&p)
            .unwrap();
        assert!((tree_cost(&lengths) - tree_cost(&eager)).abs() < 1e-6);
    }

    #[test]
    fn converged_solve_is_not_truncated() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (_, report) = EbfSolver::new().solve(&p).unwrap();
        assert!(!report.truncated);
        assert!(report.truncation_diagnostic().is_none());
        let (_, eager) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Eager)
            .solve(&p)
            .unwrap();
        assert!(!eager.truncated);
    }

    #[test]
    fn oracle_threads_do_not_change_the_solution_bits() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (base_lengths, base_report) = EbfSolver::new().solve(&p).unwrap();
        for threads in [2, 4, 8, 0] {
            let (lengths, report) = EbfSolver::new().with_threads(threads).solve(&p).unwrap();
            assert_eq!(lengths, base_lengths, "threads={threads}");
            assert_eq!(report, base_report, "threads={threads}");
        }
    }

    #[test]
    fn solve_traced_reports_rounds_cuts_pivots_and_timings() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new().solve_traced(&p);
        let (lengths, report) = result.unwrap();
        // Tracing must not change the solve.
        let (plain_lengths, plain_report) = EbfSolver::new().solve(&p).unwrap();
        assert_eq!(lengths, plain_lengths);
        assert_eq!(report, plain_report);
        // Separation accounting lines up with the report.
        assert_eq!(trace.counter("ebf.rounds"), report.separation_rounds as u64);
        assert_eq!(
            trace.counter("ebf.seed_rows") + trace.counter("ebf.cuts_added"),
            report.steiner_rows as u64
        );
        // LP accounting: the session cold-starts once (a full solve), then
        // re-solves incrementally once per cut-adding round.
        assert!(trace.counter("simplex.solves") >= 1);
        assert_eq!(
            trace.counter("simplex.resolves"),
            report.separation_rounds as u64 - 1
        );
        assert!(trace.counter("simplex.pivots") >= 1);
        assert!(trace.gauge("simplex.limit_fraction").is_some());
        // Wall-clock phases were timed (values are run-dependent, presence
        // is not).
        assert!(trace.timings_ns.contains_key("time.lp"));
        assert!(trace.timings_ns.contains_key("time.separation"));
        // Per-round events landed in the bounded log.
        assert!(trace.events.iter().any(|e| e.key == "ebf.round"));
    }

    #[test]
    fn traced_truncation_is_counted() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new()
            .with_steiner_mode(SteinerMode::Lazy {
                max_rounds: 1,
                batch: 1,
            })
            .solve_traced(&p);
        assert!(result.unwrap().1.truncated);
        assert_eq!(trace.counter("ebf.truncations"), 1);
        assert!(trace.events.iter().any(|e| e.key == "ebf.truncation"));
    }

    #[test]
    fn lp_iteration_limit_propagates_with_diagnostic_and_trace() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new().with_max_lp_iterations(1).solve_traced(&p);
        let err = result.expect_err("one pivot cannot solve this instance");
        assert!(
            matches!(
                err,
                LubtError::Lp(lubt_lp::LpError::IterationLimit { limit: 1 })
            ),
            "{err:?}"
        );
        // Satellite contract: the exhaustion surfaces as a lint-style
        // diagnostic, like truncation does.
        let diag = err.diagnostic().expect("iteration limit maps to a finding");
        assert_eq!(diag.pass, "iteration-limit");
        assert_eq!(diag.level, lubt_lint::Level::Deny);
        assert!(diag.message.contains('1'));
        // ... and the trace still carries the counters up to the failure.
        assert!(trace.counter("simplex.iteration_limit_hits") >= 1);
        // A generous limit solves fine and stays far from the cap.
        let (result, trace) = EbfSolver::new()
            .with_max_lp_iterations(100_000)
            .solve_traced(&p);
        assert!(result.is_ok());
        let frac = trace.gauge("simplex.limit_fraction").unwrap();
        assert!(frac > 0.0 && frac < 0.01, "limit proximity {frac}");
    }

    #[test]
    fn interior_point_respects_the_iteration_cap() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let err = EbfSolver::new()
            .with_backend(SolverBackend::InteriorPoint)
            .with_max_lp_iterations(1)
            .solve(&p)
            .expect_err("one IPM step cannot converge");
        assert!(matches!(
            err,
            LubtError::Lp(lubt_lp::LpError::IterationLimit { limit: 1 })
        ));
    }

    #[test]
    fn zero_threads_solves_like_one_thread() {
        // `with_threads(0)` = all cores; the library clamps instead of
        // rejecting (only the CLI flag rejects a literal 0).
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let solver = EbfSolver::new().with_threads(0);
        assert_eq!(solver.threads(), 0);
        let (lengths, report) = solver.solve(&p).unwrap();
        let (base_lengths, base_report) = EbfSolver::new().solve(&p).unwrap();
        assert_eq!(lengths, base_lengths);
        assert_eq!(report, base_report);
    }

    #[test]
    fn dp_backend_matches_the_float_backends() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let (simplex, _) = EbfSolver::new().solve(&p).unwrap();
        let (dp, report) = EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .solve(&p)
            .unwrap();
        // The exact oracle and the float simplex must land on the same
        // optimum to float accuracy.
        assert!((tree_cost(&simplex) - tree_cost(&dp)).abs() < 1e-9);
        assert_eq!(report.separation_rounds, 1);
        assert_eq!(report.total_pairs, 6);
        assert_eq!(report.steiner_rows, 6);
        assert!(!report.truncated);
        let d = node_delays(p.topology(), &dp);
        for s in p.topology().sinks() {
            assert!(d[s.index()] >= 10.0 - 1e-9, "sink {s}: {}", d[s.index()]);
            assert!(d[s.index()] <= 14.0 + 1e-9, "sink {s}: {}", d[s.index()]);
        }
    }

    #[test]
    fn dp_backend_certifies_infeasibility_without_prelint() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::upper_only(4, 5.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .with_prelint(false)
            .solve_traced(&p);
        assert!(matches!(result, Err(LubtError::Infeasible)), "{result:?}");
        assert_eq!(trace.counter("dp.solves"), 1);
    }

    #[test]
    fn dp_backend_traces_its_counters() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let (result, trace) = EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .solve_traced(&p);
        assert!(result.is_ok());
        assert_eq!(trace.counter("dp.solves"), 1);
        assert!(trace.counter("dp.sweeps") >= 1, "{trace:?}");
        assert!(trace.counter("dp.rows") >= 1, "{trace:?}");
        assert!(trace.counter("dp.pivots") >= 1, "{trace:?}");
        assert!(trace.timings_ns.contains_key("time.dp"));
        // The DP path never touches the LP backends or their counters.
        assert_eq!(trace.counter("simplex.pivots"), 0);
        assert_eq!(trace.counter("lp.solves"), 0);
        assert_eq!(trace.counter("ebf.rounds"), 0);
    }

    #[test]
    fn dp_backend_is_deterministic_across_threads_and_repeats() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let solver = || EbfSolver::new().with_backend(SolverBackend::Dp);
        let (base_lengths, base_report) = solver().solve(&p).unwrap();
        for threads in [1, 2, 8, 0] {
            let (lengths, report) = solver().with_threads(threads).solve(&p).unwrap();
            assert_eq!(lengths, base_lengths, "threads={threads}");
            assert_eq!(report, base_report, "threads={threads}");
        }
    }

    #[test]
    fn dp_backend_respects_the_iteration_cap() {
        let p = LubtBuilder::new(square())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0))
            .build()
            .unwrap();
        let err = EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .with_max_lp_iterations(1)
            .solve(&p)
            .expect_err("one exact pivot cannot solve this instance");
        assert!(
            matches!(
                err,
                LubtError::Lp(lubt_lp::LpError::IterationLimit { limit: 1 })
            ),
            "{err:?}"
        );
        assert_eq!(err.diagnostic().unwrap().pass, "iteration-limit");
    }

    #[test]
    fn dp_backend_keeps_zero_edges_exactly_zero() {
        let p = LubtBuilder::new(square())
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .build()
            .unwrap();
        let n = p.topology().num_nodes();
        let p = p.with_zero_edges(vec![NodeId(n - 1)]).unwrap();
        let (lengths, _) = EbfSolver::new()
            .with_backend(SolverBackend::Dp)
            .solve(&p)
            .unwrap();
        // The DP folds zero edges out before the core runs: exactly 0.
        assert_eq!(lengths[n - 1], 0.0);
    }

    #[test]
    fn source_sink_distance_is_enforced_even_with_zero_lower() {
        // l = 0 but the source is far: path must still cover the distance.
        let p = LubtBuilder::new(vec![Point::new(10.0, 0.0), Point::new(12.0, 0.0)])
            .source(Point::new(0.0, 0.0))
            .bounds(DelayBounds::upper_only(2, 50.0))
            .build()
            .unwrap();
        let (lengths, _) = EbfSolver::new().solve(&p).unwrap();
        let d = node_delays(p.topology(), &lengths);
        assert!(d[1] >= 10.0 - 1e-6);
        assert!(d[2] >= 12.0 - 1e-6);
    }
}
