//! Post-solve analysis in the paper's §2 vocabulary: every edge of an
//! embedded tree is **tight** (`e_i = dist(s_i, parent)`), **elongated**
//! (`e_i > dist`, realized by snaking) or **degenerate** (`e_i = 0`, the
//! endpoints coincide).
//!
//! Elongation is where the LUBT pays wire for the *lower* bounds; these
//! diagnostics make that cost visible per edge and in aggregate.

use crate::LubtSolution;
use lubt_geom::GEOM_EPS;
use lubt_topology::NodeId;

/// §2 classification of one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `e_i = dist(s_i, s_parent)` — the wire is a shortest route.
    Tight,
    /// `e_i > dist(s_i, s_parent)` — the wire snakes to add delay.
    Elongated,
    /// `e_i = 0` — the endpoints coincide.
    Degenerate,
}

/// Analysis of one edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeStat {
    /// Edge identifier (child node).
    pub edge: NodeId,
    /// Assigned LP length.
    pub length: f64,
    /// Manhattan distance between the embedded endpoints.
    pub span: f64,
    /// `length - span` (0 for tight edges).
    pub surplus: f64,
    /// The §2 classification.
    pub kind: EdgeKind,
}

/// Aggregate tree diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeAnalysis {
    /// Per-edge statistics, in edge order.
    pub edges: Vec<EdgeStat>,
    /// Number of tight edges.
    pub tight: usize,
    /// Number of elongated edges.
    pub elongated: usize,
    /// Number of degenerate edges.
    pub degenerate: usize,
    /// Total snaked surplus wire (`sum of length - span`).
    pub total_surplus: f64,
    /// Total tree cost (sum of assigned lengths).
    pub total_cost: f64,
}

impl TreeAnalysis {
    /// Fraction of the wirelength spent on elongation, in `[0, 1]`.
    pub fn surplus_fraction(&self) -> f64 {
        if self.total_cost > 0.0 {
            self.total_surplus / self.total_cost
        } else {
            0.0
        }
    }
}

/// Classifies every edge of a solved tree.
///
/// # Example
///
/// ```
/// use lubt_core::{analyze, DelayBounds, EdgeKind, LubtBuilder};
/// use lubt_geom::Point;
/// // Lower bound far above the distances: edges must elongate.
/// let sol = LubtBuilder::new(vec![Point::new(1.0, 0.0), Point::new(-1.0, 0.0)])
///     .source(Point::new(0.0, 0.0))
///     .bounds(DelayBounds::uniform(2, 10.0, 12.0))
///     .solve()?;
/// let a = analyze(&sol);
/// assert!(a.elongated >= 1);
/// assert!(a.total_surplus > 0.0);
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn analyze(solution: &LubtSolution) -> TreeAnalysis {
    let topo = solution.problem().topology();
    let positions = solution.positions();
    let lengths = solution.edge_lengths();
    let scale = 1.0 + solution.problem().radius();
    let eps = GEOM_EPS * scale;

    let mut edges = Vec::with_capacity(topo.num_edges());
    let (mut tight, mut elongated, mut degenerate) = (0usize, 0usize, 0usize);
    let mut total_surplus = 0.0;
    for (child, parent) in topo.edges() {
        let length = lengths[child.index()];
        let span = positions[child.index()].dist(positions[parent.index()]);
        let surplus = (length - span).max(0.0);
        let kind = if length <= eps {
            degenerate += 1;
            EdgeKind::Degenerate
        } else if surplus <= eps {
            tight += 1;
            EdgeKind::Tight
        } else {
            elongated += 1;
            EdgeKind::Elongated
        };
        total_surplus += surplus;
        edges.push(EdgeStat {
            edge: child,
            length,
            span,
            surplus,
            kind,
        });
    }
    TreeAnalysis {
        edges,
        tight,
        elongated,
        degenerate,
        total_surplus,
        total_cost: solution.cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_geom::Point;

    fn line_instance() -> (Vec<Point>, Point) {
        (
            vec![Point::new(4.0, 0.0), Point::new(-4.0, 0.0)],
            Point::new(0.0, 0.0),
        )
    }

    #[test]
    fn unbounded_tree_is_all_tight() {
        let (sinks, src) = line_instance();
        let sol = LubtBuilder::new(sinks)
            .source(src)
            .bounds(DelayBounds::unbounded(2))
            .solve()
            .unwrap();
        let a = analyze(&sol);
        assert_eq!(a.elongated, 0);
        assert!(a.total_surplus < 1e-9);
        assert_eq!(a.surplus_fraction(), 0.0);
        assert_eq!(a.edges.len(), sol.problem().topology().num_edges());
        assert_eq!(a.tight + a.degenerate, a.edges.len());
    }

    #[test]
    fn lower_bounds_create_elongation() {
        let (sinks, src) = line_instance();
        let sol = LubtBuilder::new(sinks)
            .source(src)
            .bounds(DelayBounds::uniform(2, 20.0, 25.0))
            .solve()
            .unwrap();
        let a = analyze(&sol);
        assert!(a.elongated >= 1, "{a:?}");
        // The optimum shares the elongation on the common edge, so the
        // surplus is the per-path deficit counted once.
        assert!(a.total_surplus >= (20.0 - 4.0) - 1e-6, "{a:?}");
        assert!(a.surplus_fraction() > 0.5);
        // Counts are consistent.
        assert_eq!(a.tight + a.elongated + a.degenerate, a.edges.len());
    }

    #[test]
    fn per_edge_stats_match_solution() {
        let (sinks, src) = line_instance();
        let sol = LubtBuilder::new(sinks)
            .source(src)
            .bounds(DelayBounds::uniform(2, 6.0, 9.0))
            .solve()
            .unwrap();
        let a = analyze(&sol);
        let cost_from_edges: f64 = a.edges.iter().map(|e| e.length).sum();
        assert!((cost_from_edges - sol.cost()).abs() < 1e-9);
        for e in &a.edges {
            assert!(e.length >= e.span - 1e-6, "edge {}: unroutable", e.edge);
            assert!((e.surplus - (e.length - e.span).max(0.0)).abs() < 1e-12);
        }
        assert!((a.total_cost - sol.cost()).abs() < 1e-12);
    }
}
