//! JSON export of solved trees — a stable, dependency-free interchange
//! format for downstream tooling (plotters, routers, checkers).
//!
//! The document contains everything needed to reconstruct and audit the
//! solution: node roles and placements, per-edge lengths/spans, sink
//! delays, the bounds that were solved, and aggregate statistics.

use crate::{analyze, LubtSolution};
use std::fmt::Write as _;

/// Serializes a solution as a self-contained JSON document.
///
/// # Example
///
/// ```
/// use lubt_core::{solution_to_json, DelayBounds, LubtBuilder};
/// use lubt_geom::Point;
/// let sol = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
///     .source(Point::new(4.0, 0.0))
///     .bounds(DelayBounds::uniform(2, 4.0, 6.0))
///     .solve()?;
/// let json = solution_to_json(&sol);
/// assert!(json.contains("\"cost\""));
/// assert!(json.trim_start().starts_with('{'));
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
pub fn solution_to_json(solution: &LubtSolution) -> String {
    let topo = solution.problem().topology();
    let positions = solution.positions();
    let delays = solution.node_delays();
    let stats = analyze(solution);
    let bounds = solution.problem().bounds();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"cost\": {},", num(solution.cost()));
    let _ = writeln!(out, "  \"skew\": {},", num(solution.skew()));
    let (short, long) = solution.delay_range();
    let _ = writeln!(out, "  \"delay_range\": [{}, {}],", num(short), num(long));
    let _ = writeln!(out, "  \"radius\": {},", num(solution.problem().radius()));
    let _ = writeln!(
        out,
        "  \"edges_tight\": {}, \"edges_elongated\": {}, \"edges_degenerate\": {},",
        stats.tight, stats.elongated, stats.degenerate
    );
    let _ = writeln!(out, "  \"snaked_surplus\": {},", num(stats.total_surplus));

    out.push_str("  \"nodes\": [\n");
    for v in (0..topo.num_nodes()).map(lubt_topology::NodeId) {
        let role = if v == topo.root() {
            "source"
        } else if topo.is_sink(v) {
            "sink"
        } else {
            "steiner"
        };
        let p = positions[v.index()];
        let _ = write!(
            out,
            "    {{\"id\": {}, \"role\": \"{role}\", \"x\": {}, \"y\": {}, \"delay\": {}}}",
            v.index(),
            num(p.x),
            num(p.y),
            num(delays[v.index()])
        );
        out.push_str(if v.index() + 1 < topo.num_nodes() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");

    out.push_str("  \"edges\": [\n");
    let n_edges = topo.num_edges();
    for (k, ((child, parent), stat)) in topo.edges().zip(&stats.edges).enumerate() {
        let _ = write!(
            out,
            "    {{\"child\": {}, \"parent\": {}, \"length\": {}, \"span\": {}, \"kind\": \"{}\"}}",
            child.index(),
            parent.index(),
            num(stat.length),
            num(stat.span),
            match stat.kind {
                crate::EdgeKind::Tight => "tight",
                crate::EdgeKind::Elongated => "elongated",
                crate::EdgeKind::Degenerate => "degenerate",
            }
        );
        out.push_str(if k + 1 < n_edges { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"bounds\": [\n");
    for i in 0..bounds.len() {
        let _ = write!(
            out,
            "    {{\"sink\": {}, \"lower\": {}, \"upper\": {}}}",
            i + 1,
            num(bounds.lower(i)),
            json_upper(bounds.upper(i))
        );
        out.push_str(if i + 1 < bounds.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON has no infinity literal; unbounded caps serialize as `null`
/// (as does any other non-finite value — see [`num`]).
fn json_upper(u: f64) -> String {
    num(u)
}

/// Every numeric field goes through this total formatter: finite values
/// print compactly, non-finite values (`NaN`, `±inf` — e.g. degenerate
/// statistics on pathological instances) become `null` instead of the
/// bare `NaN`/`inf` tokens `format!("{x}")` would emit, which no JSON
/// parser accepts.
fn num(x: f64) -> String {
    lubt_obs::json::json_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_geom::Point;

    fn sample() -> LubtSolution {
        LubtBuilder::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ])
        .source(Point::new(5.0, 2.0))
        .bounds(DelayBounds::uniform(3, 9.0, 12.0))
        .solve()
        .unwrap()
    }

    #[test]
    fn document_structure() {
        let sol = sample();
        let json = solution_to_json(&sol);
        // Counts line up with the topology.
        assert_eq!(
            json.matches("\"role\": \"sink\"").count(),
            sol.problem().topology().num_sinks()
        );
        assert_eq!(json.matches("\"role\": \"source\"").count(), 1);
        assert_eq!(
            json.matches("\"child\":").count(),
            sol.problem().topology().num_edges()
        );
        assert_eq!(json.matches("\"sink\":").count(), 3);
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("inf"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn document_is_strictly_valid_json() {
        let sol = sample();
        lubt_obs::json::validate(&solution_to_json(&sol)).expect("solution JSON must parse");
    }

    #[test]
    fn non_finite_values_serialize_as_null_not_bare_tokens() {
        // Tamper with a solved instance: NaN and infinite edge lengths
        // poison the delays, spans, cost, and surplus statistics. Every
        // one of those fields must degrade to `null`, never to the bare
        // `NaN`/`inf` tokens `format!` would produce.
        let sol = sample();
        let n = sol.problem().topology().num_nodes();
        let mut lengths = sol.edge_lengths().to_vec();
        lengths[1] = f64::NAN;
        lengths[n - 1] = f64::INFINITY;
        let mut positions = sol.positions().to_vec();
        positions[1] = Point::new(f64::NAN, f64::NEG_INFINITY);
        let tampered = crate::LubtSolution::new(
            sol.problem().clone(),
            lengths,
            positions,
            sol.report().clone(),
        );
        let json = solution_to_json(&tampered);
        lubt_obs::json::validate(&json)
            .unwrap_or_else(|e| panic!("tampered solution JSON must still parse: {e}\n{json}"));
        assert!(json.contains("null"));
        assert!(!json.contains("NaN"), "{json}");
        assert!(!json.contains("inf"), "{json}");
    }

    #[test]
    fn unbounded_caps_are_null() {
        let sol = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)])
            .source(Point::new(3.0, 0.0))
            .bounds(DelayBounds::unbounded(2))
            .solve()
            .unwrap();
        let json = solution_to_json(&sol);
        assert!(json.contains("\"upper\": null"));
    }
}
