//! Steiner-constraint machinery (§4.1, §4.6).
//!
//! For every pair of sinks `(s_i, s_j)` the EBF requires
//! `pathlength(s_i, s_j) >= dist(s_i, s_j)` — necessary because separating
//! the pair would disconnect the tree, and *sufficient* for embeddability by
//! Theorem 4.1. There are `C(m, 2)` such rows; §4.6 observes most are
//! redundant. This module provides both the full generator and the
//! **separation oracle** used for lazy constraint generation: given a
//! candidate edge-length vector, find the violated pairs in
//! `O(m^2 log n)` via LCA path-length queries.

use crate::LubtProblem;
use lubt_delay::linear::{node_delays, path_length};
use lubt_topology::NodeId;

/// One sink-pair Steiner constraint: `pathlength(a, b) >= dist`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkPair {
    /// First sink node.
    pub a: NodeId,
    /// Second sink node.
    pub b: NodeId,
    /// Manhattan distance between the sink locations (the row's RHS).
    pub dist: f64,
}

/// All `C(m, 2)` Steiner constraints (the §4.3 formulation, before
/// reduction).
pub fn all_pair_constraints(problem: &LubtProblem) -> Vec<SinkPair> {
    let topo = problem.topology();
    let m = topo.num_sinks();
    let mut out = Vec::with_capacity(m * (m - 1) / 2);
    for i in 1..=m {
        for j in i + 1..=m {
            let (a, b) = (NodeId(i), NodeId(j));
            out.push(SinkPair {
                a,
                b,
                dist: problem.sink_location(a).dist(problem.sink_location(b)),
            });
        }
    }
    out
}

/// Geometric seed for the lazy scheme: each sink paired with its nearest
/// other sink (deduplicated). These `<= m` rows anchor the first LP and in
/// practice already rule out most collapse directions.
pub fn seed_pairs(problem: &LubtProblem) -> Vec<SinkPair> {
    let topo = problem.topology();
    let m = topo.num_sinks();
    let mut out: Vec<SinkPair> = Vec::with_capacity(m);
    for i in 1..=m {
        let pi = problem.sink_location(NodeId(i));
        let mut best: Option<(usize, f64)> = None;
        for j in 1..=m {
            if i == j {
                continue;
            }
            let d = pi.dist(problem.sink_location(NodeId(j)));
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        if let Some((j, d)) = best {
            let (lo, hi) = (i.min(j), i.max(j));
            let pair = SinkPair {
                a: NodeId(lo),
                b: NodeId(hi),
                dist: d,
            };
            if !out.iter().any(|p| p.a == pair.a && p.b == pair.b) {
                out.push(pair);
            }
        }
    }
    out
}

/// Separation oracle: every sink pair whose Steiner constraint the given
/// edge lengths violate by more than `tol`, most violated first.
///
/// # Panics
///
/// Panics when `lengths.len() != topology.num_nodes()`.
pub fn violated_pairs(problem: &LubtProblem, lengths: &[f64], tol: f64) -> Vec<(SinkPair, f64)> {
    violated_pairs_with_threads(problem, lengths, tol, 1)
}

/// [`violated_pairs`] with the `O(m^2)` pair triangle partitioned across
/// `threads` workers (`0` = all cores, `1` = the exact sequential scan).
///
/// Determinism contract: each worker scans whole rows of the triangle into
/// a private buffer; buffers merge in ascending row order, reproducing the
/// serial enumeration exactly, and the final most-violated-first sort is
/// stable — so the returned cut sequence is **identical for every thread
/// count**. The lazy EBF loop depends on this: the cuts added each round
/// fix the simplex pivot sequence, hence the solution bits.
///
/// # Panics
///
/// Panics when `lengths.len() != topology.num_nodes()`.
pub fn violated_pairs_with_threads(
    problem: &LubtProblem,
    lengths: &[f64],
    tol: f64,
    threads: usize,
) -> Vec<(SinkPair, f64)> {
    violated_pairs_traced(problem, lengths, tol, threads, &lubt_obs::NoopRecorder)
}

/// [`violated_pairs_with_threads`] with the oracle's `par.assist.*`
/// scheduling counters (claim-loop entries, blocks claimed, late joins)
/// sent to `rec`. The returned cut sequence keeps the same
/// thread-count-independence guarantee; only the counters — which describe
/// scheduling, not results — vary between runs.
pub fn violated_pairs_traced(
    problem: &LubtProblem,
    lengths: &[f64],
    tol: f64,
    threads: usize,
    rec: &dyn lubt_obs::Recorder,
) -> Vec<(SinkPair, f64)> {
    let topo = problem.topology();
    let delays = node_delays(topo, lengths);
    let m = topo.num_sinks();
    let scan_row = |i: usize, out: &mut Vec<(SinkPair, f64)>| {
        scan_row_into(problem, &delays, tol, i, out);
    };
    // Row i holds m - i pairs; a small grain keeps many blocks behind the
    // shared claim cursor so late-arriving helpers even out the ragged
    // triangle without a pre-split partition (DESIGN.md §17).
    let grain = (m / lubt_par::resolve_threads(threads).max(1) / 4).max(1);
    let mut out =
        lubt_par::assist_flat_map_traced(threads, m, grain, rec, |row, buf| scan_row(row + 1, buf));
    out.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite violations"));
    out
}

/// Scans row `i` of the pair triangle (all partners `j > i`) into `out`.
fn scan_row_into(
    problem: &LubtProblem,
    delays: &[f64],
    tol: f64,
    i: usize,
    out: &mut Vec<(SinkPair, f64)>,
) {
    let topo = problem.topology();
    let m = topo.num_sinks();
    for j in i + 1..=m {
        let (a, b) = (NodeId(i), NodeId(j));
        let need = problem.sink_location(a).dist(problem.sink_location(b));
        let have = path_length(topo, delays, a, b);
        let violation = need - have;
        if violation > tol {
            out.push((SinkPair { a, b, dist: need }, violation));
        }
    }
}

/// Cross-round residual state for the lazy separation loop: the node
/// delays of the previous oracle call and every row's scan result.
///
/// The violation of pair `(i, j)` is
/// `dist(i, j) - (D_i + D_j - 2 D_lca(i,j))`, a function of the delays of
/// `i`, `j`, and their LCA (an ancestor of `i`). Between two successive LP
/// rounds most edge lengths — hence most delays — are bitwise unchanged,
/// so whole rows of the triangle rescan to the exact same result. Row `i`
/// is **reusable** iff the delay of `i` and every ancestor of `i` is
/// bitwise unchanged *and* the same holds for every partner sink
/// `j > i`; reused rows skip the `O(m)` rescan entirely (the satisfied
/// region early-exit). Because reuse requires bitwise-equal inputs, the
/// cached output is bit-identical to a full recompute — counts, ordering,
/// and violation bits all match, independent of thread count.
#[derive(Debug, Default, Clone)]
pub struct SeparationCache {
    prev_delays: Vec<f64>,
    prev_tol: f64,
    /// `rows[i - 1]` holds row `i`'s hits in ascending-`j` scan order.
    rows: Vec<Vec<(SinkPair, f64)>>,
}

impl SeparationCache {
    /// An empty cache; the first oracle call scans every row.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`violated_pairs_traced`] with a cross-round [`SeparationCache`]:
/// rows of the pair triangle whose relevant delays are bitwise unchanged
/// since the previous call are reused instead of rescanned. Emits
/// `ebf.sep_rows_scanned` / `ebf.sep_rows_reused` counters (deterministic:
/// reuse depends only on the delay sequence, never on scheduling).
pub fn violated_pairs_cached(
    problem: &LubtProblem,
    lengths: &[f64],
    tol: f64,
    threads: usize,
    cache: &mut SeparationCache,
    rec: &dyn lubt_obs::Recorder,
) -> Vec<(SinkPair, f64)> {
    let topo = problem.topology();
    let delays = node_delays(topo, lengths);
    let m = topo.num_sinks();
    let n = topo.num_nodes();

    // Which sinks' path delays (self + ancestors) changed since last round?
    let warm = cache.rows.len() == m
        && cache.prev_delays.len() == n
        && cache.prev_tol.to_bits() == tol.to_bits();
    let stale: Vec<usize> = if warm {
        let mut anc_changed = vec![false; n];
        for v in topo.preorder() {
            let own = cache.prev_delays[v.0].to_bits() != delays[v.0].to_bits();
            let inherited = topo.parent(v).map(|p| anc_changed[p.0]).unwrap_or(false);
            anc_changed[v.0] = own || inherited;
        }
        // suffix[i]: does any sink j >= i have a changed path delay?
        let mut suffix = vec![false; m + 2];
        for i in (1..=m).rev() {
            suffix[i] = anc_changed[i] || suffix[i + 1];
        }
        (1..=m)
            .filter(|&i| anc_changed[i] || suffix[i + 1])
            .collect()
    } else {
        cache.rows = vec![Vec::new(); m];
        (1..=m).collect()
    };

    rec.incr("ebf.sep_rows_scanned", stale.len() as u64);
    rec.incr("ebf.sep_rows_reused", (m - stale.len()) as u64);

    // Rescan only the stale rows, claimed via the assist loop.
    let grain = (stale.len() / lubt_par::resolve_threads(threads).max(1) / 4).max(1);
    let rescanned =
        lubt_par::assist_flat_map_traced(threads, stale.len(), grain, rec, |idx, buf| {
            let row = stale[idx];
            let mut hits = Vec::new();
            scan_row_into(problem, &delays, tol, row, &mut hits);
            buf.push((row, hits));
        });
    for (row, hits) in rescanned {
        cache.rows[row - 1] = hits;
    }
    cache.prev_delays = delays;
    cache.prev_tol = tol;

    let mut out: Vec<(SinkPair, f64)> = cache.rows.iter().flatten().copied().collect();
    out.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite violations"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayBounds, LubtBuilder};
    use lubt_geom::Point;

    fn problem() -> LubtProblem {
        LubtBuilder::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ])
        .bounds(DelayBounds::unbounded(4))
        .build()
        .unwrap()
    }

    #[test]
    fn all_pairs_count_and_rhs() {
        let p = problem();
        let pairs = all_pair_constraints(&p);
        assert_eq!(pairs.len(), 6); // C(4,2)
        let d12 = pairs
            .iter()
            .find(|q| q.a == NodeId(1) && q.b == NodeId(2))
            .unwrap();
        assert_eq!(d12.dist, 10.0);
        let d14 = pairs
            .iter()
            .find(|q| q.a == NodeId(1) && q.b == NodeId(4))
            .unwrap();
        assert_eq!(d14.dist, 20.0);
    }

    #[test]
    fn seed_is_deduplicated_nearest_neighbors() {
        let p = problem();
        let seeds = seed_pairs(&p);
        // In a symmetric square every sink's nearest neighbor pairs up;
        // after dedup at most m pairs survive and each is a side (dist 10).
        assert!(!seeds.is_empty() && seeds.len() <= 4);
        for s in &seeds {
            assert_eq!(s.dist, 10.0);
        }
    }

    #[test]
    fn zero_lengths_violate_everything() {
        let p = problem();
        let lengths = vec![0.0; p.topology().num_nodes()];
        let v = violated_pairs(&p, &lengths, 1e-9);
        assert_eq!(v.len(), 6);
        // Sorted descending by violation; diagonals (20) come first.
        assert!(v[0].1 >= v[v.len() - 1].1);
        assert_eq!(v[0].1, 20.0);
    }

    #[test]
    fn generous_lengths_violate_nothing() {
        let p = problem();
        let lengths = vec![100.0; p.topology().num_nodes()];
        assert!(violated_pairs(&p, &lengths, 1e-9).is_empty());
    }

    #[test]
    fn cached_oracle_matches_full_recompute_bitwise() {
        use lubt_obs::TraceRecorder;
        let sinks: Vec<Point> = (0..31)
            .map(|i| {
                let k = i as f64;
                Point::new((k * 53.0) % 97.0, (k * k * 7.0) % 83.0)
            })
            .collect();
        let m = sinks.len();
        let p = LubtBuilder::new(sinks)
            .bounds(DelayBounds::unbounded(m))
            .build()
            .unwrap();
        let n = p.topology().num_nodes();
        let mut lengths = vec![0.75; n];
        let mut cache = SeparationCache::new();
        let mut saw_reuse = false;
        for round in 0..6 {
            for threads in [1, 4] {
                let rec = TraceRecorder::new();
                // The threads=4 pass replays the round on a clone of the
                // pre-round state; only the threads=1 pass advances `cache`.
                let mut replay = cache.clone();
                let state = if threads == 1 {
                    &mut cache
                } else {
                    &mut replay
                };
                let cached = violated_pairs_cached(&p, &lengths, 1e-9, threads, state, &rec);
                let full = violated_pairs(&p, &lengths, 1e-9);
                assert_eq!(cached.len(), full.len(), "round {round} threads {threads}");
                for (c, f) in cached.iter().zip(full.iter()) {
                    assert_eq!(c.0.a, f.0.a, "round {round} threads {threads}");
                    assert_eq!(c.0.b, f.0.b, "round {round} threads {threads}");
                    assert_eq!(
                        c.1.to_bits(),
                        f.1.to_bits(),
                        "round {round} threads {threads}"
                    );
                }
                let trace = rec.snapshot();
                let scanned = trace.counter("ebf.sep_rows_scanned");
                let reused = trace.counter("ebf.sep_rows_reused");
                assert_eq!(scanned + reused, m as u64);
                if reused > 0 {
                    saw_reuse = true;
                }
            }
            // Perturb a single leaf edge; most rows should reuse next round.
            lengths[n - 1 - (round % 3)] += 0.125;
        }
        assert!(saw_reuse, "perturbing one edge should leave reusable rows");
    }

    #[test]
    fn unchanged_lengths_reuse_every_row() {
        use lubt_obs::TraceRecorder;
        let p = problem();
        let lengths = vec![0.5; p.topology().num_nodes()];
        let mut cache = SeparationCache::new();
        let first =
            violated_pairs_cached(&p, &lengths, 1e-9, 1, &mut cache, &lubt_obs::NoopRecorder);
        let rec = TraceRecorder::new();
        let second = violated_pairs_cached(&p, &lengths, 1e-9, 1, &mut cache, &rec);
        assert_eq!(first.len(), second.len());
        let trace = rec.snapshot();
        assert_eq!(trace.counter("ebf.sep_rows_scanned"), 0);
        assert_eq!(
            trace.counter("ebf.sep_rows_reused"),
            p.topology().num_sinks() as u64
        );
    }

    #[test]
    fn parallel_oracle_matches_serial_exactly() {
        // A deliberately asymmetric sink cloud so violations are all
        // distinct and any merge-order slip would reorder the result.
        let sinks: Vec<Point> = (0..23)
            .map(|i| {
                let k = i as f64;
                Point::new((k * 37.0) % 101.0, (k * k * 13.0) % 89.0)
            })
            .collect();
        let m = sinks.len();
        let p = LubtBuilder::new(sinks)
            .bounds(DelayBounds::unbounded(m))
            .build()
            .unwrap();
        let lengths = vec![0.5; p.topology().num_nodes()];
        let serial = violated_pairs(&p, &lengths, 1e-9);
        assert!(!serial.is_empty());
        for threads in [2, 3, 4, 8, 0] {
            let par = violated_pairs_with_threads(&p, &lengths, 1e-9, threads);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.0.a, b.0.a, "threads={threads}");
                assert_eq!(a.0.b, b.0.b, "threads={threads}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={threads}");
            }
        }
    }
}
