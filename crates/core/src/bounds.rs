use crate::LubtError;

/// Per-sink lower/upper delay bounds `l_i <= delay(s_i) <= u_i`
/// (Definition 2.1).
///
/// The constructors cover the paper's four regimes (§4.3):
///
/// * [`DelayBounds::unbounded`] — `l = 0, u = inf`: optimal Steiner tree
///   under the topology.
/// * [`DelayBounds::upper_only`] — `l = 0, u < inf`: global routing.
/// * [`DelayBounds::uniform`] — `0 < l <= u`: the general LUBT / bounded
///   skew with a delay cap.
/// * [`DelayBounds::zero_skew`] — `l = u`: zero-skew clock routing.
///
/// Per-sink heterogeneity (the pipeline-stage motivation from §1) is
/// available through [`DelayBounds::from_pairs`].
///
/// # Example
///
/// ```
/// use lubt_core::DelayBounds;
/// let b = DelayBounds::uniform(3, 4.0, 6.0);
/// assert_eq!(b.lower(1), 4.0);
/// assert_eq!(b.upper(1), 6.0);
/// assert_eq!(b.max_skew(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayBounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl DelayBounds {
    /// Identical window `[l, u]` for every sink.
    ///
    /// # Panics
    ///
    /// Panics when `l < 0`, `l > u`, or either bound is NaN.
    pub fn uniform(num_sinks: usize, l: f64, u: f64) -> Self {
        Self::from_pairs(vec![(l, u); num_sinks]).expect("uniform bounds must satisfy 0 <= l <= u")
    }

    /// No delay control at all: the LUBT degenerates to the minimum-cost
    /// Steiner tree under the topology.
    pub fn unbounded(num_sinks: usize) -> Self {
        Self::uniform(num_sinks, 0.0, f64::INFINITY)
    }

    /// Global-routing style bounds: only a delay cap.
    pub fn upper_only(num_sinks: usize, u: f64) -> Self {
        Self::uniform(num_sinks, 0.0, u)
    }

    /// Zero-skew bounds: every sink delayed exactly `t`.
    pub fn zero_skew(num_sinks: usize, t: f64) -> Self {
        Self::uniform(num_sinks, t, t)
    }

    /// The tolerable-skew window of §6: upper bound `u` with skew at most
    /// `d`, i.e. `[u - d, u]` for every sink.
    ///
    /// # Panics
    ///
    /// Panics when `d < 0`, `d > u`, or any value is NaN.
    pub fn skew_window(num_sinks: usize, u: f64, d: f64) -> Self {
        assert!(d >= 0.0 && d <= u, "need 0 <= d <= u");
        Self::uniform(num_sinks, u - d, u)
    }

    /// Heterogeneous per-sink windows.
    ///
    /// # Errors
    ///
    /// Returns [`LubtError::Input`] unless every pair satisfies
    /// `0 <= l <= u` (Equation 3/4 precondition) and no value is NaN.
    pub fn from_pairs(pairs: Vec<(f64, f64)>) -> Result<Self, LubtError> {
        for (i, &(l, u)) in pairs.iter().enumerate() {
            if l.is_nan() || u.is_nan() || l < 0.0 || l > u {
                return Err(LubtError::Input(format!(
                    "sink {} has invalid bounds [{l}, {u}]: need 0 <= l <= u",
                    i + 1
                )));
            }
        }
        let (lower, upper) = pairs.into_iter().unzip();
        Ok(DelayBounds { lower, upper })
    }

    /// Number of sinks covered.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// `true` when there are no sinks (never valid in a problem).
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound of sink `i` (0-based sink order; sink node `i + 1`).
    pub fn lower(&self, i: usize) -> f64 {
        self.lower[i]
    }

    /// Upper bound of sink `i`.
    pub fn upper(&self, i: usize) -> f64 {
        self.upper[i]
    }

    /// All lower bounds, in sink order (the view lint passes consume).
    pub fn lowers(&self) -> &[f64] {
        &self.lower
    }

    /// All upper bounds, in sink order.
    pub fn uppers(&self) -> &[f64] {
        &self.upper
    }

    /// The loosest skew the bounds still allow: `max u_i - min l_i`.
    pub fn max_skew(&self) -> f64 {
        let max_u = self.upper.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_l = self.lower.iter().cloned().fold(f64::INFINITY, f64::min);
        max_u - min_l
    }

    /// Scales every bound by `factor` — used to turn radius-normalized
    /// paper bounds into absolute coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `factor < 0`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        DelayBounds {
            lower: self.lower.iter().map(|l| l * factor).collect(),
            upper: self.upper.iter().map(|u| u * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let b = DelayBounds::unbounded(2);
        assert_eq!(b.lower(0), 0.0);
        assert!(b.upper(1).is_infinite());

        let b = DelayBounds::zero_skew(3, 5.0);
        assert_eq!((b.lower(2), b.upper(2)), (5.0, 5.0));
        assert_eq!(b.max_skew(), 0.0);

        let b = DelayBounds::skew_window(2, 10.0, 3.0);
        assert_eq!((b.lower(0), b.upper(0)), (7.0, 10.0));

        let b = DelayBounds::upper_only(1, 9.0);
        assert_eq!((b.lower(0), b.upper(0)), (0.0, 9.0));
    }

    #[test]
    fn heterogeneous_pairs() {
        let b = DelayBounds::from_pairs(vec![(1.0, 2.0), (0.0, 5.0)]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.max_skew(), 5.0);
        assert_eq!(b.lowers(), &[1.0, 0.0]);
        assert_eq!(b.uppers(), &[2.0, 5.0]);
        assert!(DelayBounds::from_pairs(vec![(3.0, 2.0)]).is_err());
        assert!(DelayBounds::from_pairs(vec![(-1.0, 2.0)]).is_err());
        assert!(DelayBounds::from_pairs(vec![(f64::NAN, 2.0)]).is_err());
    }

    #[test]
    fn scaling() {
        let b = DelayBounds::uniform(2, 0.5, 1.0).scaled(100.0);
        assert_eq!((b.lower(0), b.upper(0)), (50.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "0 <= l <= u")]
    fn uniform_panics_on_bad_window() {
        let _ = DelayBounds::uniform(1, 5.0, 2.0);
    }
}
