//! The §4.6 zero-skew fast path.
//!
//! When every sink shares the same fixed delay (`l = u = t`), the EBF's
//! inequalities collapse to equalities and "no optimization is necessary":
//! the optimal edge lengths follow from a single bottom-up merging pass —
//! exactly the construction of linear-delay zero-skew DME
//! (Boese-Kahng ASIC'92, reference \[7\]). This module implements that
//! closed form; the `ablation_zeroskew` bench measures its speedup over the
//! general LP, and cross-validation tests confirm both produce the same
//! cost.

use crate::LubtError;
use lubt_geom::{Point, Trr};
use lubt_topology::{SourceMode, Topology};

/// Result of the zero-skew construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroSkewTree {
    /// Optimal edge lengths (indexed by node, entry 0 unused).
    pub edge_lengths: Vec<f64>,
    /// The realized common sink delay. Equals the requested target when one
    /// was given; otherwise the minimum achievable for the topology.
    pub delay: f64,
}

/// Computes minimum-cost zero-skew edge lengths for a binary topology by
/// bottom-up merging (no LP).
///
/// * `target` — the common delay `t`. `None` picks the minimum achievable
///   (the natural merge delay; with a given source this plays the role of
///   the paper's `radius`-delay zero-skew tree).
///
/// Embed the result with [`crate::embed_tree`].
///
/// # Errors
///
/// * [`LubtError::Input`] — non-binary topology (run
///   [`lubt_topology::split_degree_four`] first) or sink-count mismatch.
/// * [`LubtError::Infeasible`] — `target` below the minimum achievable
///   delay.
pub fn zero_skew_edge_lengths(
    topo: &Topology,
    sinks: &[Point],
    source: Option<Point>,
    target: Option<f64>,
) -> Result<ZeroSkewTree, LubtError> {
    if sinks.len() != topo.num_sinks() {
        return Err(LubtError::Input(format!(
            "{} sink locations for {} topology sinks",
            sinks.len(),
            topo.num_sinks()
        )));
    }
    let mode = if source.is_some() {
        SourceMode::Given
    } else {
        SourceMode::Free
    };
    if !topo.is_binary(mode) {
        return Err(LubtError::Input(
            "zero-skew merging requires a binary topology (see split_degree_four)".to_string(),
        ));
    }

    let n = topo.num_nodes();
    let scale = sinks
        .iter()
        .copied()
        .chain(source)
        .map(|p| p.x.abs().max(p.y.abs()))
        .fold(1.0, f64::max);
    let tol = 1e-9 * scale;

    // Bottom-up: merging region (TRR) and balanced delay per node.
    let mut region: Vec<Option<Trr>> = vec![None; n];
    let mut delay = vec![0.0f64; n];
    let mut lengths = vec![0.0; n];

    for v in topo.postorder() {
        let vi = v.index();
        if topo.is_sink(v) {
            region[vi] = Some(Trr::from_point(sinks[vi - 1]));
            continue;
        }
        let kids: Vec<_> = topo.children(v).collect();
        if kids.is_empty() {
            continue; // the Given-mode root: handled after the loop
        }
        if kids.len() == 1 {
            // Only the Given-mode root may have a single child.
            debug_assert_eq!(vi, 0);
            continue;
        }
        let (a, b) = (kids[0], kids[1]);
        let (ra, rb) = (
            region[a.index()].expect("postorder"),
            region[b.index()].expect("postorder"),
        );
        let d = ra.dist(&rb);
        let gap = delay[a.index()] - delay[b.index()];
        // Balanced split when possible; otherwise the shallow side detours.
        let (ea, eb) = if gap.abs() <= d {
            let ea = (d - gap) / 2.0;
            (ea, d - ea)
        } else if gap < 0.0 {
            (-gap, 0.0)
        } else {
            (0.0, gap)
        };
        lengths[a.index()] = ea;
        lengths[b.index()] = eb;
        delay[vi] = delay[a.index()] + ea;
        debug_assert!((delay[vi] - (delay[b.index()] + eb)).abs() <= tol.max(1e-9));
        let merged = ra
            .expanded(ea)
            .intersect(&rb.expanded(eb))
            .or_else(|| {
                // ea + eb == dist can miss the touch by one ulp; retry with
                // a proportional epsilon.
                let s = 1e-9 * (1.0 + d.abs());
                ra.expanded(ea + s).intersect(&rb.expanded(eb + s))
            })
            .expect("children reachable within their assigned lengths");
        region[vi] = Some(merged);
    }

    // Root treatment.
    let realized = match source {
        Some(s0) => {
            let c = topo
                .children(topo.root())
                .next()
                .expect("Given-mode root has one child");
            let rc = region[c.index()].expect("computed");
            let min_root_edge = rc.dist_to_point(s0);
            let natural = delay[c.index()] + min_root_edge;
            let t = target.unwrap_or(natural);
            if t < natural - tol {
                return Err(LubtError::Infeasible);
            }
            lengths[c.index()] = t - delay[c.index()];
            t
        }
        None => {
            let natural = delay[0];
            let t = target.unwrap_or(natural);
            if t < natural - tol {
                return Err(LubtError::Infeasible);
            }
            let extra = t - natural;
            if extra > 0.0 {
                // Stretch both root edges equally: every sink delay grows by
                // `extra`, skew stays zero, and the merge region only grows.
                for c in topo.children(topo.root()) {
                    lengths[c.index()] += extra;
                }
            }
            t
        }
    };

    Ok(ZeroSkewTree {
        edge_lengths: lengths,
        delay: realized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{embed_tree, PlacementPolicy};
    use lubt_delay::linear::{node_delays, tree_cost};
    use lubt_topology::{nearest_neighbor_topology, Topology};

    #[test]
    fn two_sinks_balanced() {
        let topo = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let src = Point::new(4.0, 2.0);
        let z = zero_skew_edge_lengths(&topo, &sinks, Some(src), None).unwrap();
        // Balanced split: e1 = e2 = 4, root edge = dist((4,0), src) = 2.
        assert!((z.edge_lengths[1] - 4.0).abs() < 1e-9);
        assert!((z.edge_lengths[2] - 4.0).abs() < 1e-9);
        assert!((z.edge_lengths[3] - 2.0).abs() < 1e-9);
        assert!((z.delay - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_pair_detours() {
        // Nested: ((s1, s2), s3) with s1, s2 far apart and s3 adjacent.
        let topo = Topology::from_parents(3, &[0, 4, 4, 5, 5, 0]).unwrap();
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(10.0, 1.0),
        ];
        let z = zero_skew_edge_lengths(&topo, &sinks, Some(Point::new(10.0, 5.0)), None).unwrap();
        let d = node_delays(&topo, &z.edge_lengths);
        // All sinks equal delay.
        assert!((d[1] - d[2]).abs() < 1e-9);
        assert!((d[2] - d[3]).abs() < 1e-9);
        // s3 is close to the (s1,s2) merge point: its edge is elongated.
        assert!(z.edge_lengths[3] > sinks[2].dist(Point::new(10.0, 0.0)) - 1e-9);
    }

    #[test]
    fn skew_is_zero_on_random_instances() {
        for seed in 0..5u64 {
            let sinks: Vec<Point> = (0..12)
                .map(|i| {
                    let a = ((i * 73 + seed as usize * 131) % 97) as f64;
                    let b = ((i * 41 + seed as usize * 57) % 89) as f64;
                    Point::new(a, b)
                })
                .collect();
            let topo = nearest_neighbor_topology(&sinks, SourceMode::Free);
            let z = zero_skew_edge_lengths(&topo, &sinks, None, None).unwrap();
            let d = node_delays(&topo, &z.edge_lengths);
            let (lo, hi) = lubt_delay::skew::delay_range(&topo, &d);
            assert!(hi - lo < 1e-9, "seed {seed}: skew {}", hi - lo);
            assert!((hi - z.delay).abs() < 1e-9);
            // And the lengths embed.
            let pos = embed_tree(
                &topo,
                &sinks,
                None,
                &z.edge_lengths,
                PlacementPolicy::Center,
            );
            assert!(pos.is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn target_above_natural_elongates() {
        let topo = Topology::from_parents(2, &[0, 0, 0]).unwrap();
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let natural = zero_skew_edge_lengths(&topo, &sinks, None, None).unwrap();
        assert!((natural.delay - 4.0).abs() < 1e-9);
        let stretched = zero_skew_edge_lengths(&topo, &sinks, None, Some(6.0)).unwrap();
        assert!((stretched.delay - 6.0).abs() < 1e-9);
        assert!((tree_cost(&stretched.edge_lengths) - 12.0).abs() < 1e-9);
        // Below natural: impossible.
        assert!(matches!(
            zero_skew_edge_lengths(&topo, &sinks, None, Some(3.0)),
            Err(LubtError::Infeasible)
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let topo = Topology::from_parents(3, &[0, 4, 4, 4, 0]).unwrap(); // degree-4 steiner
        let sinks = vec![Point::ORIGIN; 3];
        assert!(matches!(
            zero_skew_edge_lengths(&topo, &sinks, Some(Point::ORIGIN), None),
            Err(LubtError::Input(_))
        ));
        let topo = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        assert!(matches!(
            zero_skew_edge_lengths(&topo, &[Point::ORIGIN], Some(Point::ORIGIN), None),
            Err(LubtError::Input(_))
        ));
    }
}
