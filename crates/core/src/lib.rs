//! The Edge-Based Formulation (EBF) for **Lower/Upper Bounded delay routing
//! Trees** (LUBT) and its geometric embedder — the primary contribution of
//! Oh, Pyo and Pedram, *"Constructing Lower and Upper Bounded Delay Routing
//! Trees Using Linear Programming"* (USC CENG 96-05 / DAC 1996).
//!
//! # The method in one paragraph
//!
//! Given a rooted topology over source, sinks and Steiner points and
//! per-sink delay bounds `l_i <= delay(s_i) <= u_i` (linear delay model),
//! the EBF makes the *edge lengths* — not the Steiner coordinates — the LP
//! variables, eliminating the absolute values of the Manhattan metric. Two
//! constraint families suffice: **Steiner constraints**
//! `pathlength(s_i, s_j) >= dist(s_i, s_j)` for all sink pairs (necessary
//! *and sufficient* for embeddability, Theorem 4.1, thanks to the Helly
//! property of TRRs), and **delay constraints** bounding each root-to-sink
//! path. Minimizing total edge length yields the provably minimum-cost LUBT
//! for the topology (Theorem 4.2). A DME-style pass then embeds the tree:
//! feasible regions bottom-up, placements top-down (§5).
//!
//! # Entry points
//!
//! * [`LubtBuilder`] — one-stop API: sinks, optional source, optional
//!   topology (generated if absent), bounds; `solve()` returns a
//!   [`LubtSolution`].
//! * [`EbfSolver`] — the LP layer on its own (choose solver backend, lazy
//!   vs. eager Steiner constraints).
//! * [`embed_tree`] — the geometric embedding given edge lengths.
//! * [`zero_skew_edge_lengths`] — the §4.6 closed-form path for
//!   `l = u` (zero skew): pure bottom-up merging, no LP.
//! * [`ElmoreEbf`] — the §7 Elmore-delay extension via sequential LP.
//!
//! # Example
//!
//! ```
//! use lubt_core::{DelayBounds, LubtBuilder};
//! use lubt_geom::Point;
//!
//! let sinks = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(0.0, 10.0),
//!     Point::new(10.0, 10.0),
//! ];
//! let sol = LubtBuilder::new(sinks)
//!     .source(Point::new(5.0, 5.0))
//!     .bounds(DelayBounds::uniform(4, 10.0, 14.0))
//!     .solve()?;
//! sol.verify()?;
//! assert!(sol.cost() <= 4.0 * 14.0);
//! # Ok::<(), lubt_core::LubtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod batch;
mod bounds;
mod ebf;
mod elmore_ebf;
mod embed;
mod error;
mod json;
mod problem;
mod solution;
mod steiner;
mod svg;
mod topology_gen;
mod verify;
mod zero_skew;

pub use analysis::{analyze, EdgeKind, EdgeStat, TreeAnalysis};
pub use batch::BatchSolver;
pub use bounds::DelayBounds;
pub use ebf::{ebf_model, EbfReport, EbfSolver, SolverBackend, SteinerMode, WarmEbfSession};
pub use elmore_ebf::{ElmoreEbf, ElmoreReport};
pub use embed::{embed_tree, embed_tree_traced, PlacementPolicy};
pub use error::LubtError;
pub use json::solution_to_json;
pub use problem::{LubtBuilder, LubtProblem, TopologyStrategy, WarmLubtSession};
pub use solution::LubtSolution;
pub use steiner::{
    all_pair_constraints, violated_pairs, violated_pairs_traced, violated_pairs_with_threads,
    SinkPair,
};
pub use svg::{render_svg, render_svg_with, render_tree_svg, SvgOptions};
pub use topology_gen::bound_aware_topology;
pub use verify::{verify_raw, VerifyError};
pub use zero_skew::{zero_skew_edge_lengths, ZeroSkewTree};
