use crate::ebf::{EbfSolver, SolverBackend, SteinerMode};
use crate::embed::{embed_tree, embed_tree_traced, PlacementPolicy};
use crate::{DelayBounds, LubtError, LubtSolution};
use lubt_geom::Point;
use lubt_obs::{Recorder, SolveTrace, TraceRecorder};
use lubt_topology::{nearest_neighbor_topology, NodeId, SourceMode, Topology};
use std::sync::Arc;

/// A fully specified LUBT instance: sink locations, optional source
/// location, rooted topology, per-sink delay bounds, and (optionally)
/// per-edge objective weights and zero-fixed edges.
///
/// Construct via [`LubtProblem::new`] for full control or [`LubtBuilder`]
/// for the common path.
#[derive(Debug, Clone)]
pub struct LubtProblem {
    sinks: Vec<Point>,
    source: Option<Point>,
    topology: Topology,
    bounds: DelayBounds,
    weights: Vec<f64>,
    zero_edges: Vec<NodeId>,
}

impl LubtProblem {
    /// Validates and assembles a problem.
    ///
    /// # Errors
    ///
    /// Returns [`LubtError::Input`] when the pieces disagree: sink counts,
    /// bound counts, non-finite coordinates, topology root degree
    /// incompatible with the presence/absence of a source, or out-of-range
    /// zero-edge ids.
    pub fn new(
        sinks: Vec<Point>,
        source: Option<Point>,
        topology: Topology,
        bounds: DelayBounds,
    ) -> Result<Self, LubtError> {
        if sinks.is_empty() {
            return Err(LubtError::Input("no sinks".to_string()));
        }
        if sinks.len() != topology.num_sinks() {
            return Err(LubtError::Input(format!(
                "{} sink locations but topology has {} sinks",
                sinks.len(),
                topology.num_sinks()
            )));
        }
        if bounds.len() != sinks.len() {
            return Err(LubtError::Input(format!(
                "{} bounds for {} sinks",
                bounds.len(),
                sinks.len()
            )));
        }
        for (i, p) in sinks.iter().enumerate() {
            if !p.is_finite() {
                return Err(LubtError::Input(format!("sink {} is not finite", i + 1)));
            }
        }
        if let Some(s) = source {
            if !s.is_finite() {
                return Err(LubtError::Input("source is not finite".to_string()));
            }
        }
        let weights = vec![1.0; topology.num_nodes()];
        Ok(LubtProblem {
            sinks,
            source,
            topology,
            bounds,
            weights,
            zero_edges: Vec::new(),
        })
    }

    /// Replaces the per-edge objective weights (§7 "different weights on
    /// edges"). `weights[i]` weighs edge `e_i`; index 0 is unused.
    ///
    /// # Errors
    ///
    /// Returns [`LubtError::Input`] on length mismatch or non-finite /
    /// negative weights.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Result<Self, LubtError> {
        if weights.len() != self.topology.num_nodes() {
            return Err(LubtError::Input(format!(
                "{} weights for {} nodes",
                weights.len(),
                self.topology.num_nodes()
            )));
        }
        if weights.iter().skip(1).any(|w| !w.is_finite() || *w < 0.0) {
            return Err(LubtError::Input(
                "edge weights must be finite and non-negative".to_string(),
            ));
        }
        self.weights = weights;
        Ok(self)
    }

    /// Declares edges whose length is fixed to zero (the splitting edges of
    /// [`lubt_topology::split_degree_four`]).
    ///
    /// # Errors
    ///
    /// Returns [`LubtError::Input`] for out-of-range edge ids.
    pub fn with_zero_edges(mut self, zero_edges: Vec<NodeId>) -> Result<Self, LubtError> {
        for e in &zero_edges {
            if e.index() == 0 || e.index() >= self.topology.num_nodes() {
                return Err(LubtError::Input(format!("zero edge {e} out of range")));
            }
        }
        self.zero_edges = zero_edges;
        Ok(self)
    }

    /// Sink locations (sink `i` in this slice is node `i + 1`).
    pub fn sinks(&self) -> &[Point] {
        &self.sinks
    }

    /// Source location, when given.
    pub fn source(&self) -> Option<Point> {
        self.source
    }

    /// The rooted topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The delay bounds.
    pub fn bounds(&self) -> &DelayBounds {
        &self.bounds
    }

    /// Per-edge objective weights (`weights()[i]` weighs `e_i`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Edges fixed to zero length.
    pub fn zero_edges(&self) -> &[NodeId] {
        &self.zero_edges
    }

    /// Whether the source participates ([`SourceMode::Given`]) or the
    /// embedding chooses it ([`SourceMode::Free`]).
    pub fn source_mode(&self) -> SourceMode {
        if self.source.is_some() {
            SourceMode::Given
        } else {
            SourceMode::Free
        }
    }

    /// Location of a sink node.
    ///
    /// # Panics
    ///
    /// Panics when `node` is not a sink of the topology.
    pub fn sink_location(&self, node: NodeId) -> Point {
        assert!(self.topology.is_sink(node), "{node} is not a sink");
        self.sinks[node.index() - 1]
    }

    /// The paper's radius: source-to-farthest-sink distance (source given)
    /// or half the sink diameter (source free). All table bounds are
    /// normalized by this quantity.
    pub fn radius(&self) -> f64 {
        match self.source {
            Some(s) => lubt_delay::skew::radius_with_source(s, &self.sinks),
            None => lubt_delay::skew::radius_free(&self.sinks),
        }
    }

    /// The borrowed view lint passes consume, with an optional LP model
    /// attached for the `model-conditioning` pass.
    fn lint_input<'a>(&'a self, model: Option<&'a lubt_lp::Model>) -> lubt_lint::LintInput<'a> {
        lubt_lint::LintInput {
            sinks: &self.sinks,
            source: self.source,
            topology: &self.topology,
            source_mode: self.source_mode(),
            lower: self.bounds.lowers(),
            upper: self.bounds.uppers(),
            model,
        }
    }

    /// Statically analyzes the problem with the default lint registry,
    /// including the model-level passes over the same LP a lazy EBF solve
    /// would start from ([`crate::ebf_model`]). Nothing is solved.
    ///
    /// # Example
    ///
    /// ```
    /// use lubt_core::{DelayBounds, LubtBuilder};
    /// use lubt_geom::Point;
    /// let p = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
    ///     .source(Point::new(4.0, 0.0))
    ///     .bounds(DelayBounds::upper_only(2, 3.0)) // below the radius 4
    ///     .build()?;
    /// let diags = p.lint();
    /// assert!(lubt_lint::has_deny(&diags));
    /// # Ok::<(), lubt_core::LubtError>(())
    /// ```
    pub fn lint(&self) -> Vec<lubt_lint::Diagnostic> {
        self.lint_with(&lubt_lint::LintRegistry::default())
    }

    /// Statically analyzes the problem with a caller-configured registry
    /// (pass levels overridden, passes disabled, extra passes added).
    pub fn lint_with(&self, registry: &lubt_lint::LintRegistry) -> Vec<lubt_lint::Diagnostic> {
        let model = crate::ebf::ebf_model(self);
        registry.run(&self.lint_input(Some(&model)))
    }

    /// Instance-level diagnostics only (no LP assembled): what the
    /// pre-solve hook in [`EbfSolver::solve`] consults. Cheap — O(m^2)
    /// distance arithmetic at worst.
    pub(crate) fn prelint_diagnostics(&self) -> Vec<lubt_lint::Diagnostic> {
        lubt_lint::LintRegistry::default().run(&self.lint_input(None))
    }

    /// Solves with the default pipeline: lazy-constraint EBF on the simplex
    /// backend, then geometric embedding with closest-to-parent placement.
    ///
    /// # Errors
    ///
    /// [`LubtError::Rejected`] when the pre-solve lint hook proves no LUBT
    /// exists, [`LubtError::Infeasible`] when the LP certifies it;
    /// solver/embedding errors otherwise.
    pub fn solve(&self) -> Result<LubtSolution, LubtError> {
        let (lengths, report) = EbfSolver::new().solve(self)?;
        let positions = embed_tree(
            &self.topology,
            &self.sinks,
            self.source,
            &lengths,
            PlacementPolicy::ClosestToParent,
        )?;
        Ok(LubtSolution::new(self.clone(), lengths, positions, report))
    }

    /// [`LubtProblem::solve`] with the whole pipeline — LP, separation
    /// oracle, embedder — recorded into a [`SolveTrace`], returned
    /// alongside the result (also on failure, with whatever counters had
    /// accumulated). The solution itself is bit-for-bit identical to the
    /// untraced path; see `DESIGN.md` §10 for what in the trace is and is
    /// not deterministic.
    pub fn solve_traced(&self) -> (Result<LubtSolution, LubtError>, SolveTrace) {
        let rec = Arc::new(TraceRecorder::new());
        let result = (|| {
            let solver = EbfSolver::new().with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
            let (lengths, report) = solver.solve(self)?;
            let positions = embed_tree_traced(
                &self.topology,
                &self.sinks,
                self.source,
                &lengths,
                PlacementPolicy::ClosestToParent,
                &*rec,
            )?;
            Ok(LubtSolution::new(self.clone(), lengths, positions, report))
        })();
        (result, rec.snapshot())
    }
}

/// How [`LubtBuilder`] obtains a topology when none is supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyStrategy {
    /// Nearest-neighbor merge (the paper's generator family). Default.
    #[default]
    NearestNeighbor,
    /// Recursive geometric matching (balanced trees).
    Matching,
    /// Balanced recursive bisection (H-tree-like structure).
    Bisection,
    /// Bound-aware nearest-neighbor merge (the §9 future-work generator):
    /// pairs clusters by distance *plus* arrival-window compatibility.
    /// Most useful with heterogeneous per-sink windows.
    BoundAware,
}

/// Ergonomic front door to the LUBT pipeline.
///
/// Mandatory: sinks and bounds. Optional: a source location (otherwise the
/// embedding places the driver), an explicit topology (otherwise generated
/// per [`TopologyStrategy`]), solver backend, Steiner-constraint strategy
/// and placement policy.
///
/// # Example
///
/// ```
/// use lubt_core::{DelayBounds, LubtBuilder};
/// use lubt_geom::Point;
/// let sol = LubtBuilder::new(vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
///     .bounds(DelayBounds::uniform(2, 4.0, 6.0))
///     .solve()?;
/// assert!(sol.cost() >= 8.0 - 1e-6); // the sinks are 8 apart
/// # Ok::<(), lubt_core::LubtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LubtBuilder {
    sinks: Vec<Point>,
    source: Option<Point>,
    topology: Option<Topology>,
    strategy: TopologyStrategy,
    bounds: Option<DelayBounds>,
    weights: Option<Vec<f64>>,
    backend: SolverBackend,
    steiner_mode: SteinerMode,
    placement: PlacementPolicy,
    threads: usize,
    max_lp_iterations: Option<usize>,
    audit: bool,
    prelint: bool,
}

impl LubtBuilder {
    /// Starts a builder over the given sink locations.
    pub fn new(sinks: Vec<Point>) -> Self {
        LubtBuilder {
            sinks,
            source: None,
            topology: None,
            strategy: TopologyStrategy::default(),
            bounds: None,
            weights: None,
            backend: SolverBackend::Simplex,
            steiner_mode: SteinerMode::default_lazy(),
            placement: PlacementPolicy::ClosestToParent,
            threads: 1,
            max_lp_iterations: None,
            audit: false,
            prelint: true,
        }
    }

    /// Pins the source location.
    #[must_use]
    pub fn source(mut self, source: Point) -> Self {
        self.source = Some(source);
        self
    }

    /// Uses an explicit topology instead of generating one.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Selects the generator used when no explicit topology is supplied
    /// (default: nearest-neighbor merge).
    #[must_use]
    pub fn topology_strategy(mut self, strategy: TopologyStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the delay bounds (required).
    #[must_use]
    pub fn bounds(mut self, bounds: DelayBounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Sets per-edge objective weights.
    #[must_use]
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Selects the LP backend (default: simplex).
    #[must_use]
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the Steiner-constraint strategy (default: lazy separation).
    #[must_use]
    pub fn steiner_mode(mut self, mode: SteinerMode) -> Self {
        self.steiner_mode = mode;
        self
    }

    /// Selects the top-down placement policy (default: closest-to-parent).
    #[must_use]
    pub fn placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = policy;
        self
    }

    /// Sets the intra-solve worker count (`0` = all available cores,
    /// default `1`): the separation oracle and, on the revised backend,
    /// the assisted pricing scans. The solution is identical for every
    /// value — see [`EbfSolver::with_threads`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the pivot count of every LP (re-)solve — see
    /// [`EbfSolver::with_max_lp_iterations`]. Exhaustion fails the solve
    /// with a [`lubt_lp::LpError::IterationLimit`] that
    /// [`LubtError::diagnostic`] renders as a lint-style finding.
    #[must_use]
    pub fn max_lp_iterations(mut self, limit: usize) -> Self {
        self.max_lp_iterations = Some(limit);
        self
    }

    /// Enables the exact certificate audit for the whole pipeline (off by
    /// default): every LP outcome is verified against its optimality
    /// certificate or Farkas ray ([`EbfSolver::with_audit`]), and the
    /// final embedding's sink pathlengths are re-derived in exact
    /// arithmetic ([`LubtSolution::audit_tree`]). A failed audit surfaces
    /// as [`LubtError::Audit`] with deny-level `audit-*` diagnostics.
    #[must_use]
    pub fn audit(mut self, enabled: bool) -> Self {
        self.audit = enabled;
        self
    }

    /// Enables or disables the pre-solve lint hook (on by default) — see
    /// [`EbfSolver::with_prelint`]. Disabling it lets a hopeless instance
    /// reach the LP, whose infeasibility certificate (a Farkas ray, exactly
    /// verified under [`LubtBuilder::audit`]) then speaks for itself.
    #[must_use]
    pub fn prelint(mut self, enabled: bool) -> Self {
        self.prelint = enabled;
        self
    }

    /// Builds the [`LubtProblem`] without solving (exposes the generated
    /// topology for inspection or reuse).
    ///
    /// # Errors
    ///
    /// [`LubtError::Input`] when the pieces are inconsistent or bounds are
    /// missing.
    pub fn build(&self) -> Result<LubtProblem, LubtError> {
        let bounds = self
            .bounds
            .clone()
            .ok_or_else(|| LubtError::Input("bounds are required".to_string()))?;
        let mode = if self.source.is_some() {
            SourceMode::Given
        } else {
            SourceMode::Free
        };
        let topology = match &self.topology {
            Some(t) => t.clone(),
            None => match self.strategy {
                TopologyStrategy::NearestNeighbor => nearest_neighbor_topology(&self.sinks, mode),
                TopologyStrategy::Matching => lubt_topology::matching_topology(&self.sinks, mode),
                TopologyStrategy::Bisection => {
                    lubt_topology::bipartition_topology(&self.sinks, mode)
                }
                TopologyStrategy::BoundAware => {
                    crate::bound_aware_topology(&self.sinks, self.source, &bounds)?
                }
            },
        };
        let mut p = LubtProblem::new(self.sinks.clone(), self.source, topology, bounds)?;
        if let Some(w) = &self.weights {
            p = p.with_weights(w.clone())?;
        }
        Ok(p)
    }

    /// Builds and solves.
    ///
    /// # Errors
    ///
    /// See [`LubtProblem::solve`].
    pub fn solve(&self) -> Result<LubtSolution, LubtError> {
        self.solve_recorded(lubt_obs::noop())
    }

    /// [`LubtBuilder::solve`] with the configured pipeline recorded into a
    /// [`SolveTrace`], returned alongside the result (also on failure).
    /// This is what `lubt solve --trace-json` calls.
    pub fn solve_traced(&self) -> (Result<LubtSolution, LubtError>, SolveTrace) {
        let rec = Arc::new(TraceRecorder::new());
        let result = self.solve_recorded(Arc::clone(&rec) as Arc<dyn Recorder>);
        (result, rec.snapshot())
    }

    /// [`LubtBuilder::solve`], additionally retaining the converged LP
    /// session (when the configured pipeline produces one — lazy Steiner
    /// mode on a simplex backend, audit off) as a [`WarmLubtSession`].
    ///
    /// The handle re-derives the *entire* solution — lengths from the
    /// retained basis with zero pivots, then the deterministic embedding
    /// — so [`WarmLubtSession::resolve`] is bit-identical to this call's
    /// solution. This is the warm path behind `lubt serve`'s session
    /// pool.
    ///
    /// # Errors
    ///
    /// See [`LubtProblem::solve`].
    pub fn solve_retaining(&self) -> Result<(LubtSolution, Option<WarmLubtSession>), LubtError> {
        self.solve_retaining_recorded(lubt_obs::noop())
    }

    /// [`LubtBuilder::solve_retaining`] with the pipeline recorded into
    /// `rec` — how the serve workers feed cold-solve counters into the
    /// live `/metrics` aggregate. Tracing never changes results (the §9
    /// contract), so the retained session stays bit-compatible with
    /// untraced solves.
    ///
    /// # Errors
    ///
    /// See [`LubtProblem::solve`].
    pub fn solve_retaining_recorded(
        &self,
        rec: Arc<dyn Recorder>,
    ) -> Result<(LubtSolution, Option<WarmLubtSession>), LubtError> {
        let problem = self.build()?;
        let mut solver = EbfSolver::new()
            .with_backend(self.backend)
            .with_steiner_mode(self.steiner_mode)
            .with_threads(self.threads)
            .with_audit(self.audit)
            .with_prelint(self.prelint)
            .with_recorder(Arc::clone(&rec));
        if let Some(limit) = self.max_lp_iterations {
            solver = solver.with_max_lp_iterations(limit);
        }
        let (lengths, report, warm) = solver.solve_retaining(&problem)?;
        let positions = embed_tree_traced(
            problem.topology(),
            problem.sinks(),
            problem.source(),
            &lengths,
            self.placement,
            &*rec,
        )?;
        let solution = LubtSolution::new(problem.clone(), lengths, positions, report);
        if self.audit {
            let findings = solution.audit_tree();
            if !findings.is_empty() {
                return Err(LubtError::Audit(findings));
            }
            // Audited solves are not retained: a warm replay would skip
            // the per-request certificate verification that `audit`
            // promises, so the audit surface always solves cold.
            return Ok((solution, None));
        }
        let warm = warm.map(|ebf| WarmLubtSession {
            ebf,
            problem,
            placement: self.placement,
        });
        Ok((solution, warm))
    }

    /// [`LubtBuilder::solve`] with the pipeline recorded into a
    /// caller-supplied recorder — the hook behind `--trace-event-cap`
    /// and `--profile`, where the CLI owns the [`TraceRecorder`] (custom
    /// event cap, span exports) and snapshots it itself.
    ///
    /// # Errors
    ///
    /// See [`LubtProblem::solve`].
    pub fn solve_recorded(&self, rec: Arc<dyn Recorder>) -> Result<LubtSolution, LubtError> {
        let problem = self.build()?;
        let mut solver = EbfSolver::new()
            .with_backend(self.backend)
            .with_steiner_mode(self.steiner_mode)
            .with_threads(self.threads)
            .with_audit(self.audit)
            .with_prelint(self.prelint)
            .with_recorder(Arc::clone(&rec));
        if let Some(limit) = self.max_lp_iterations {
            solver = solver.with_max_lp_iterations(limit);
        }
        let (lengths, report) = solver.solve(&problem)?;
        let positions = embed_tree_traced(
            problem.topology(),
            problem.sinks(),
            problem.source(),
            &lengths,
            self.placement,
            &*rec,
        )?;
        let solution = LubtSolution::new(problem, lengths, positions, report);
        if self.audit {
            // §5 embedding audit: exact pathlengths vs delay windows.
            let findings = {
                let _t = lubt_obs::PhaseTimer::new(&*rec, "time.audit");
                solution.audit_tree()
            };
            if !findings.is_empty() {
                if rec.enabled() {
                    rec.incr("audit.failures", findings.len() as u64);
                }
                return Err(LubtError::Audit(findings));
            }
            if rec.enabled() {
                rec.incr("audit.tree_verified", 1);
            }
        }
        Ok(solution)
    }
}

/// A solved problem kept warm for repeat requests: the converged LP
/// session plus everything needed to re-derive the full [`LubtSolution`]
/// deterministically.
///
/// Produced by [`LubtBuilder::solve_retaining`]; consumed by the serve
/// layer's session pool. [`WarmLubtSession::resolve`] replays the
/// retained basis (zero pivots), re-runs the deterministic embedding, and
/// returns a solution bit-identical to the original — the foundation of
/// the cold/cached/warm byte-identity contract (DESIGN.md §15).
#[derive(Debug)]
pub struct WarmLubtSession {
    ebf: crate::ebf::WarmEbfSession,
    problem: LubtProblem,
    placement: PlacementPolicy,
}

impl WarmLubtSession {
    /// Re-derives the solution from the retained basis.
    ///
    /// # Errors
    ///
    /// See [`crate::WarmEbfSession::resolve_lengths`]; embedding errors
    /// cannot occur on lengths the original solve already embedded.
    pub fn resolve(&mut self) -> Result<LubtSolution, LubtError> {
        let lengths = self.ebf.resolve_lengths()?;
        let positions = embed_tree(
            self.problem.topology(),
            self.problem.sinks(),
            self.problem.source(),
            &lengths,
            self.placement,
        )?;
        Ok(LubtSolution::new(
            self.problem.clone(),
            lengths,
            positions,
            self.ebf.report().clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_sinks() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ]
    }

    #[test]
    fn warm_session_replays_are_bit_identical() {
        for backend in [SolverBackend::Simplex, SolverBackend::Revised] {
            let builder = LubtBuilder::new(square_sinks())
                .source(Point::new(5.0, 5.0))
                .bounds(DelayBounds::uniform(4, 10.0, 14.0))
                .backend(backend);
            let (cold, warm) = builder.solve_retaining().expect("feasible");
            let mut warm = warm.expect("lazy simplex solves retain their session");
            // Replay twice: the session must stay resolvable and exact.
            for _ in 0..2 {
                let replay = warm.resolve().expect("warm replay");
                assert_eq!(replay.edge_lengths(), cold.edge_lengths(), "{backend:?}");
                assert_eq!(replay.positions(), cold.positions(), "{backend:?}");
                assert_eq!(
                    crate::solution_to_json(&replay),
                    crate::solution_to_json(&cold),
                    "{backend:?}: serialized bytes must match"
                );
            }
            // The retained report describes the original solve.
            assert_eq!(warm.ebf.report(), cold.report());
        }
        // Paths that cannot retain a session say so instead of lying.
        let (_, warm) = LubtBuilder::new(square_sinks())
            .bounds(DelayBounds::uniform(4, 10.0, 16.0))
            .backend(SolverBackend::Dp)
            .solve_retaining()
            .expect("feasible");
        assert!(warm.is_none(), "dp has no incremental session");
        let (_, warm) = LubtBuilder::new(square_sinks())
            .bounds(DelayBounds::uniform(4, 10.0, 16.0))
            .audit(true)
            .solve_retaining()
            .expect("feasible");
        assert!(warm.is_none(), "audited solves are never retained");
    }

    #[test]
    fn problem_validation() {
        let topo = nearest_neighbor_topology(&square_sinks(), SourceMode::Free);
        // Mismatched bound count.
        assert!(matches!(
            LubtProblem::new(
                square_sinks(),
                None,
                topo.clone(),
                DelayBounds::unbounded(3)
            ),
            Err(LubtError::Input(_))
        ));
        // Mismatched sink count.
        assert!(matches!(
            LubtProblem::new(
                square_sinks()[..2].to_vec(),
                None,
                topo.clone(),
                DelayBounds::unbounded(2)
            ),
            Err(LubtError::Input(_))
        ));
        // Valid.
        let p = LubtProblem::new(square_sinks(), None, topo, DelayBounds::unbounded(4)).unwrap();
        assert_eq!(p.source_mode(), SourceMode::Free);
        assert_eq!(p.radius(), 10.0); // diameter 20 / 2
    }

    #[test]
    fn audited_pipeline_matches_unaudited_and_verifies_everything() {
        let builder = LubtBuilder::new(square_sinks())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 12.0, 15.0));
        let base = builder.clone().solve().unwrap();
        let (result, trace) = builder.audit(true).solve_traced();
        let audited = result.unwrap();
        assert_eq!(audited.edge_lengths(), base.edge_lengths());
        assert_eq!(audited.positions(), base.positions());
        assert!(trace.counter("audit.optimality_verified") >= 1, "{trace:?}");
        assert_eq!(trace.counter("audit.tree_verified"), 1);
        assert_eq!(trace.counter("audit.failures"), 0);
    }

    #[test]
    fn weights_and_zero_edges_validated() {
        let topo = nearest_neighbor_topology(&square_sinks(), SourceMode::Free);
        let n = topo.num_nodes();
        let p = LubtProblem::new(square_sinks(), None, topo, DelayBounds::unbounded(4)).unwrap();
        assert!(p.clone().with_weights(vec![1.0; n + 1]).is_err());
        assert!(p.clone().with_weights(vec![-1.0; n]).is_err());
        assert!(p.clone().with_weights(vec![2.0; n]).is_ok());
        assert!(p.clone().with_zero_edges(vec![NodeId(0)]).is_err());
        assert!(p.clone().with_zero_edges(vec![NodeId(n)]).is_err());
        assert!(p.with_zero_edges(vec![NodeId(n - 1)]).is_ok());
    }

    #[test]
    fn builder_requires_bounds() {
        assert!(matches!(
            LubtBuilder::new(square_sinks()).build(),
            Err(LubtError::Input(_))
        ));
    }

    #[test]
    fn builder_generates_topology_matching_source_mode() {
        let p = LubtBuilder::new(square_sinks())
            .bounds(DelayBounds::unbounded(4))
            .build()
            .unwrap();
        assert!(p.topology().is_binary(SourceMode::Free));

        let p = LubtBuilder::new(square_sinks())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::unbounded(4))
            .build()
            .unwrap();
        assert!(p.topology().is_binary(SourceMode::Given));
        assert_eq!(p.radius(), 10.0);
    }

    #[test]
    fn topology_strategies_all_solve() {
        let radius = 10.0; // square diag/... radius with center source is 10
        for strategy in [
            TopologyStrategy::NearestNeighbor,
            TopologyStrategy::Matching,
            TopologyStrategy::Bisection,
            TopologyStrategy::BoundAware,
        ] {
            let sol = LubtBuilder::new(square_sinks())
                .source(Point::new(5.0, 5.0))
                .bounds(DelayBounds::uniform(4, 0.9 * radius, 1.5 * radius))
                .topology_strategy(strategy)
                .solve()
                .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            sol.verify().unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        }
    }

    #[test]
    fn builder_zero_threads_is_clamped_to_all_cores() {
        // `threads(0)` is the library's "all cores" sentinel (matching
        // BatchSolver and EbfSolver); only the CLI rejects a literal 0.
        let sol = LubtBuilder::new(square_sinks())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .threads(0)
            .solve()
            .unwrap();
        let base = LubtBuilder::new(square_sinks())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0))
            .threads(1)
            .solve()
            .unwrap();
        assert_eq!(sol.edge_lengths(), base.edge_lengths());
        assert_eq!(sol.positions(), base.positions());
    }

    #[test]
    fn traced_solve_matches_untraced_and_fills_the_trace() {
        let builder = LubtBuilder::new(square_sinks())
            .source(Point::new(5.0, 5.0))
            .bounds(DelayBounds::uniform(4, 10.0, 14.0));
        let plain = builder.solve().unwrap();
        let (traced, trace) = builder.solve_traced();
        let traced = traced.unwrap();
        assert_eq!(plain.edge_lengths(), traced.edge_lengths());
        assert_eq!(plain.positions(), traced.positions());
        assert_eq!(plain.report(), traced.report());
        assert!(!trace.is_empty());
        assert!(trace.counter("ebf.rounds") >= 1);
        assert!(trace.counter("embed.fr_constructions") >= 4);

        let problem = builder.build().unwrap();
        let (from_problem, trace2) = problem.solve_traced();
        assert_eq!(from_problem.unwrap().edge_lengths(), plain.edge_lengths());
        assert!(trace2.counter("ebf.rounds") >= 1);
    }

    #[test]
    fn sink_location_lookup() {
        let p = LubtBuilder::new(square_sinks())
            .bounds(DelayBounds::unbounded(4))
            .build()
            .unwrap();
        assert_eq!(p.sink_location(NodeId(3)), Point::new(0.0, 10.0));
    }
}
