use crate::VerifyError;
use std::error::Error;
use std::fmt;

/// Errors from LUBT problem construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LubtError {
    /// Problem inputs are inconsistent (counts, bound shapes, topology
    /// root degree vs. source mode, ...).
    Input(String),
    /// The bounds admit no tree for this topology (the paper's Figure 1(a)
    /// situation, or simply `u` below the radius): the EBF LP has no
    /// feasible point. Thanks to Theorem 4.2, this is a *certificate* —
    /// no LUBT exists for the given topology and bounds.
    Infeasible,
    /// The pre-solve lint hook found deny-level problems: the instance is
    /// provably unusable (infeasible windows, broken invariants) and no LP
    /// was built. Each diagnostic names the pass and the offending nodes.
    /// Disable via [`crate::EbfSolver::with_prelint`] to fall through to
    /// the LP's own [`LubtError::Infeasible`] certificate.
    Rejected(Vec<lubt_lint::Diagnostic>),
    /// The underlying LP solver failed (iteration limit, numerical
    /// breakdown).
    Lp(lubt_lp::LpError),
    /// Topology construction or transformation failed.
    Topology(lubt_topology::TopologyError),
    /// The geometric embedding could not realize the LP's edge lengths —
    /// with exact arithmetic this is impossible (Theorem 4.1); it indicates
    /// edge lengths not coming from a feasible EBF solve.
    Embedding {
        /// Node whose feasible region came up empty.
        node: usize,
    },
    /// A solution failed post-hoc verification.
    Verify(VerifyError),
    /// The exact certificate audit rejected the solver's output: the
    /// claimed optimum/infeasibility proof does not hold in exact
    /// arithmetic. Each diagnostic carries an `audit-*` pass slug.
    Audit(Vec<lubt_lint::Diagnostic>),
}

impl LubtError {
    /// Renders solver-failure modes that have an actionable configuration
    /// knob as a lint-schema [`lubt_lint::Diagnostic`], mirroring
    /// [`crate::EbfReport::truncation_diagnostic`]. Today that is the LP
    /// iteration limit ([`lubt_lp::LpError::IterationLimit`]), which the
    /// CLI surfaces after a failed `lubt solve` / `lubt batch` instead of
    /// leaving a bare error string. Returns `None` for every other error.
    pub fn diagnostic(&self) -> Option<lubt_lint::Diagnostic> {
        match self {
            LubtError::Lp(lubt_lp::LpError::IterationLimit { limit }) => {
                Some(lubt_lint::Diagnostic {
                    pass: "iteration-limit",
                    level: lubt_lint::Level::Deny,
                    message: format!(
                        "LP solver exhausted its iteration limit of {limit} pivot(s) \
                         without converging; the solve was abandoned"
                    ),
                    targets: Vec::new(),
                    help: Some(
                        "raise the cap via EbfSolver::with_max_lp_iterations \
                         (or remove it to restore the backend default)"
                            .to_string(),
                    ),
                })
            }
            _ => None,
        }
    }
}

impl fmt::Display for LubtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LubtError::Input(msg) => write!(f, "invalid problem input: {msg}"),
            LubtError::Infeasible => {
                write!(
                    f,
                    "no LUBT exists for this topology and bounds (LP infeasible)"
                )
            }
            LubtError::Rejected(diags) => {
                write!(
                    f,
                    "no LUBT exists for these bounds; rejected before solving by {} lint finding(s):",
                    diags.iter().filter(|d| d.is_deny()).count()
                )?;
                for d in diags.iter().filter(|d| d.is_deny()) {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            LubtError::Lp(e) => write!(f, "lp solver failure: {e}"),
            LubtError::Topology(e) => write!(f, "topology error: {e}"),
            LubtError::Embedding { node } => {
                write!(
                    f,
                    "feasible region of node s{node} is empty during embedding"
                )
            }
            LubtError::Verify(e) => write!(f, "solution verification failed: {e}"),
            LubtError::Audit(diags) => {
                write!(
                    f,
                    "exact certificate audit rejected the solve with {} finding(s):",
                    diags.iter().filter(|d| d.is_deny()).count()
                )?;
                for d in diags.iter().filter(|d| d.is_deny()) {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for LubtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LubtError::Lp(e) => Some(e),
            LubtError::Topology(e) => Some(e),
            LubtError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lubt_lp::LpError> for LubtError {
    fn from(e: lubt_lp::LpError) -> Self {
        LubtError::Lp(e)
    }
}

impl From<lubt_topology::TopologyError> for LubtError {
    fn from(e: lubt_topology::TopologyError) -> Self {
        LubtError::Topology(e)
    }
}

impl From<VerifyError> for LubtError {
    fn from(e: VerifyError) -> Self {
        LubtError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LubtError::Lp(lubt_lp::LpError::EmptyModel);
        assert!(e.to_string().contains("lp solver"));
        assert!(Error::source(&e).is_some());
        assert!(LubtError::Infeasible.to_string().contains("no LUBT"));
        assert!(Error::source(&LubtError::Infeasible).is_none());
    }

    #[test]
    fn rejected_renders_deny_diagnostics() {
        let deny = lubt_lint::Diagnostic {
            pass: "sink-reachability",
            level: lubt_lint::Level::Deny,
            message: "sink 1 is unreachable".to_string(),
            targets: vec![lubt_lint::Target::Sink(1)],
            help: None,
        };
        let warn = lubt_lint::Diagnostic {
            pass: "degenerate-topology",
            level: lubt_lint::Level::Warn,
            message: "noise".to_string(),
            targets: vec![],
            help: None,
        };
        let text = LubtError::Rejected(vec![deny, warn]).to_string();
        assert!(text.contains("no LUBT exists"));
        assert!(text.contains("1 lint finding(s)"));
        assert!(text.contains("sink-reachability"));
        assert!(!text.contains("noise"));
    }
}
