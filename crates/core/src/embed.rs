//! Geometric embedding (§5): placement of Steiner points given edge
//! lengths, DME-style.
//!
//! Bottom-up, each node's *feasible region* is built from its children:
//! `FR_k = TRR(FR_l, e_l) ∩ TRR(FR_r, e_r)`. Theorem 4.1 guarantees the
//! intersections are non-empty whenever the edge lengths satisfy the
//! Steiner constraints. Top-down, each node is placed inside
//! `FR_v ∩ TRR({parent placement}, e_v)`.

use crate::LubtError;
use lubt_geom::{Point, Trr};
use lubt_obs::{NoopRecorder, PhaseTimer, Recorder};
use lubt_topology::Topology;

/// Where to place a node inside its feasible intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The point of the region nearest to the already-placed parent —
    /// keeps edges tight (no gratuitous elongation) and is the default.
    ClosestToParent,
    /// The region center — maximizes clearance, spreading any slack evenly.
    Center,
}

/// Embeds the tree in the Manhattan plane: returns a position for every
/// node.
///
/// * `lengths[i]` — length of edge `e_i` (entry 0 unused);
/// * `source` — when `Some`, node 0 is pinned there (and its single
///   child's TRR must reach it); when `None`, the root is placed inside its
///   own feasible region.
///
/// Small numeric slack (scaled from the instance size) absorbs LP rounding:
/// feasible regions are intersected with a tolerance-expanded partner
/// before declaring failure.
///
/// # Errors
///
/// [`LubtError::Embedding`] when a feasible region is empty beyond the
/// numeric slack — by Theorem 4.1 this means the edge lengths do **not**
/// satisfy the Steiner constraints (e.g. they were not produced by a
/// feasible EBF solve).
///
/// # Panics
///
/// Panics when `lengths.len() != topo.num_nodes()` or `sinks.len() !=
/// topo.num_sinks()`.
pub fn embed_tree(
    topo: &Topology,
    sinks: &[Point],
    source: Option<Point>,
    lengths: &[f64],
    policy: PlacementPolicy,
) -> Result<Vec<Point>, LubtError> {
    embed_tree_traced(topo, sinks, source, lengths, policy, &NoopRecorder)
}

/// [`embed_tree`] with construction counters sent to `rec`:
///
/// * `embed.fr_constructions` — feasible regions built bottom-up;
/// * `embed.trr_expansions` — child-region TRR expansions feeding those
///   intersections (two per binary merge);
/// * `embed.degenerate_intersections` — feasible regions that collapsed to
///   a single point (zero placement freedom, the tight zero-skew case);
/// * `embed.slack_rescues` — intersections that were empty in exact
///   arithmetic and only succeeded after the numeric-slack expansion
///   (LP rounding absorbed);
/// * `time.embed` — wall-clock for the whole embedding.
///
/// The recorder observes the embedding, it never changes placements.
pub fn embed_tree_traced(
    topo: &Topology,
    sinks: &[Point],
    source: Option<Point>,
    lengths: &[f64],
    policy: PlacementPolicy,
    rec: &dyn Recorder,
) -> Result<Vec<Point>, LubtError> {
    assert_eq!(lengths.len(), topo.num_nodes(), "one length per node");
    assert_eq!(sinks.len(), topo.num_sinks(), "one location per sink");
    let _t = PhaseTimer::new(rec, "time.embed");
    let _span = lubt_obs::SpanGuard::enter(rec, "embed");

    // Numeric slack proportional to the coordinate scale.
    let scale = sinks
        .iter()
        .copied()
        .chain(source)
        .map(|p| p.x.abs().max(p.y.abs()))
        .fold(1.0, f64::max);
    // Matched to the LP layer's feasibility tolerance: lengths from a
    // tolerance-feasible solve may undershoot pairwise distances by up to
    // ~1e-6 in relative terms.
    let slack = 1e-6 * scale + 1e-9;

    let n = topo.num_nodes();
    // ---- Bottom-up: feasible regions. ----
    let mut fr: Vec<Option<Trr>> = vec![None; n];
    for v in topo.postorder() {
        let vi = v.index();
        if topo.is_sink(v) {
            fr[vi] = Some(Trr::from_point(sinks[vi - 1]));
            if rec.enabled() {
                rec.incr("embed.fr_constructions", 1);
            }
            continue;
        }
        // Root with a given source is handled after the loop; its region
        // here is still the intersection of child TRRs (used in Free mode).
        let mut region: Option<Trr> = None;
        for c in topo.children(v) {
            let child_trr = fr[c.index()]
                .expect("postorder visits children first")
                .expanded(lengths[c.index()]);
            if rec.enabled() {
                rec.incr("embed.trr_expansions", 1);
            }
            region = Some(match region {
                None => child_trr,
                Some(r) => intersect_with_slack(&r, &child_trr, slack, rec)
                    .ok_or(LubtError::Embedding { node: vi })?,
            });
        }
        // A leaf Steiner point (possible in degenerate topologies): its
        // region is unconstrained from below; collapse to the parent later
        // by treating it as "anywhere", represented by... it cannot happen
        // in validated binary topologies; treat as an input error.
        let region = region.ok_or(LubtError::Embedding { node: vi })?;
        if rec.enabled() {
            rec.incr("embed.fr_constructions", 1);
            if region.is_point() {
                rec.incr("embed.degenerate_intersections", 1);
            }
        }
        fr[vi] = Some(region);
    }

    // ---- Top-down: placements. ----
    let mut pos = vec![Point::ORIGIN; n];
    let root = topo.root();
    match source {
        Some(s0) => {
            // The root is pinned; its child's TRR must reach it.
            let r = fr[root.index()].expect("root region computed");
            if !r.contains_with_eps(s0, slack.max(lubt_geom::GEOM_EPS)) {
                return Err(LubtError::Embedding { node: 0 });
            }
            pos[0] = s0;
        }
        None => {
            pos[0] = match policy {
                PlacementPolicy::Center => fr[0].expect("root region").center(),
                PlacementPolicy::ClosestToParent => fr[0].expect("root region").center(),
            };
        }
    }
    for v in topo.preorder() {
        if v == root {
            continue;
        }
        let vi = v.index();
        let parent = topo.parent(v).expect("non-root has a parent");
        let pp = pos[parent.index()];
        let region = fr[vi].expect("region computed");
        let reach = Trr::from_center_radius(pp, lengths[vi]);
        if rec.enabled() {
            rec.incr("embed.trr_expansions", 1);
        }
        let cand = intersect_with_slack(&region, &reach, slack, rec)
            .ok_or(LubtError::Embedding { node: vi })?;
        pos[vi] = match policy {
            PlacementPolicy::ClosestToParent => cand.closest_point_to(pp),
            PlacementPolicy::Center => cand.center(),
        };
    }
    Ok(pos)
}

/// Intersection that tolerates LP-level rounding: when the exact
/// intersection is empty but the regions are within `slack` of one another,
/// both are expanded by the (tiny) gap and the intersection retried (a
/// "slack rescue", counted on `rec`).
fn intersect_with_slack(a: &Trr, b: &Trr, slack: f64, rec: &dyn Recorder) -> Option<Trr> {
    if let Some(r) = a.intersect(b) {
        return Some(r);
    }
    let gap = a.dist(b);
    (gap <= slack).then(|| {
        if rec.enabled() {
            rec.incr("embed.slack_rescues", 1);
        }
        a.expanded(gap / 2.0 + f64::EPSILON)
            .intersect(&b.expanded(gap / 2.0 + f64::EPSILON))
            .expect("expanded by the measured gap")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_topology::Topology;

    /// Two sinks 8 apart under one Steiner point, source above it.
    fn two_sink_instance() -> (Topology, Vec<Point>, Point) {
        let topo = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let source = Point::new(4.0, 3.0);
        (topo, sinks, source)
    }

    #[test]
    fn tight_zero_skew_embedding() {
        let (topo, sinks, source) = two_sink_instance();
        // e1 = e2 = 4 forces the Steiner point to (4, 0); e3 = 3 reaches
        // the source exactly.
        let lengths = vec![0.0, 4.0, 4.0, 3.0];
        let pos = embed_tree(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
        )
        .unwrap();
        assert_eq!(pos[0], source);
        assert_eq!(pos[1], sinks[0]);
        assert_eq!(pos[2], sinks[1]);
        assert_eq!(pos[3], Point::new(4.0, 0.0));
    }

    #[test]
    fn elongation_allows_slack_placement() {
        let (topo, sinks, source) = two_sink_instance();
        // Plenty of wire everywhere: the Steiner point has a fat region.
        let lengths = vec![0.0, 6.0, 6.0, 5.0];
        for policy in [PlacementPolicy::ClosestToParent, PlacementPolicy::Center] {
            let pos = embed_tree(&topo, &sinks, Some(source), &lengths, policy).unwrap();
            // Each edge length dominates the realized distance.
            assert!(pos[3].dist(sinks[0]) <= 6.0 + 1e-9);
            assert!(pos[3].dist(sinks[1]) <= 6.0 + 1e-9);
            assert!(pos[3].dist(source) <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn closest_to_parent_is_tighter_than_center() {
        let (topo, sinks, source) = two_sink_instance();
        let lengths = vec![0.0, 7.0, 7.0, 6.0];
        let near = embed_tree(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
        )
        .unwrap();
        let center = embed_tree(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::Center,
        )
        .unwrap();
        assert!(near[3].dist(source) <= center[3].dist(source) + 1e-9);
    }

    #[test]
    fn infeasible_lengths_are_rejected() {
        let (topo, sinks, source) = two_sink_instance();
        // e1 + e2 = 6 < dist(s1, s2) = 8: Steiner constraint violated.
        let lengths = vec![0.0, 3.0, 3.0, 5.0];
        assert!(matches!(
            embed_tree(
                &topo,
                &sinks,
                Some(source),
                &lengths,
                PlacementPolicy::Center
            ),
            Err(LubtError::Embedding { .. })
        ));
        // Steiner fine but the root edge cannot reach the source.
        let lengths = vec![0.0, 4.0, 4.0, 1.0];
        assert!(matches!(
            embed_tree(
                &topo,
                &sinks,
                Some(source),
                &lengths,
                PlacementPolicy::Center
            ),
            Err(LubtError::Embedding { node: 0 })
        ));
    }

    #[test]
    fn free_source_places_root_in_region() {
        let topo = Topology::from_parents(2, &[0, 0, 0]).unwrap(); // root = merge point
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let lengths = vec![0.0, 4.0, 4.0];
        let pos = embed_tree(&topo, &sinks, None, &lengths, PlacementPolicy::Center).unwrap();
        assert!(pos[0].dist(sinks[0]) <= 4.0 + 1e-9);
        assert!(pos[0].dist(sinks[1]) <= 4.0 + 1e-9);
    }

    #[test]
    fn numeric_slack_tolerates_lp_rounding() {
        let (topo, sinks, source) = two_sink_instance();
        // Just barely short of meeting, within the slack budget.
        let eps = 1e-11;
        let lengths = vec![0.0, 4.0 - eps, 4.0 - eps, 3.0 + 2.0 * eps];
        let pos = embed_tree(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
        );
        assert!(pos.is_ok());
    }

    #[test]
    fn traced_embedding_counts_regions_and_degeneracy() {
        let (topo, sinks, source) = two_sink_instance();
        // Tight zero-skew lengths: every feasible region collapses to a
        // point, so the degenerate counter must fire.
        let lengths = vec![0.0, 4.0, 4.0, 3.0];
        let rec = lubt_obs::TraceRecorder::new();
        let traced = embed_tree_traced(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
            &rec,
        )
        .unwrap();
        let plain = embed_tree(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
        )
        .unwrap();
        assert_eq!(traced, plain, "recording must not move placements");
        let t = rec.snapshot();
        // One feasible region per node (2 sinks + 1 Steiner; the pinned
        // root contributes no bottom-up region of its own here: its region
        // comes from its single child's TRR).
        assert_eq!(t.counter("embed.fr_constructions"), 4);
        assert!(t.counter("embed.trr_expansions") >= 3);
        assert!(t.counter("embed.degenerate_intersections") >= 1);
        assert!(t.timings_ns.contains_key("time.embed"));
    }

    #[test]
    fn traced_embedding_counts_slack_rescues() {
        let (topo, sinks, source) = two_sink_instance();
        let eps = 1e-11;
        let lengths = vec![0.0, 4.0 - eps, 4.0 - eps, 3.0 + 2.0 * eps];
        let rec = lubt_obs::TraceRecorder::new();
        embed_tree_traced(
            &topo,
            &sinks,
            Some(source),
            &lengths,
            PlacementPolicy::ClosestToParent,
            &rec,
        )
        .unwrap();
        assert!(rec.snapshot().counter("embed.slack_rescues") >= 1);
    }

    #[test]
    fn euclidean_counterexample_from_section_4_7() {
        // Unit equilateral triangle, e1 = e2 = e3 = 1/2: satisfies the
        // Steiner constraints in *Euclidean* terms but has no Euclidean
        // embedding. In the Manhattan metric the same lengths FAIL the
        // Steiner constraints for these coordinates (pairwise Manhattan
        // distances exceed 1), so the embedder rejects them — exactly the
        // §4.7 story: the EBF guarantee is a Manhattan-metric property.
        let topo = Topology::from_parents(3, &[0, 0, 0, 0]).unwrap();
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.8660254037844386),
        ];
        let lengths = vec![0.0, 0.5, 0.5, 0.5];
        assert!(embed_tree(&topo, &sinks, None, &lengths, PlacementPolicy::Center).is_err());
        // Manhattan-feasible lengths embed fine: d(s1,s3) = d(s2,s3) ~ 1.366,
        // d(s1,s2) = 1, so radius ~0.7 suffices for pairwise feasibility...
        // use generous budgets to confirm the positive direction.
        let lengths = vec![0.0, 0.7, 0.7, 0.7];
        assert!(embed_tree(&topo, &sinks, None, &lengths, PlacementPolicy::Center).is_ok());
    }
}
