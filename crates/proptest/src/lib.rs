//! Workspace-local stand-in for the subset of the `proptest` crate that
//! LUBT's property tests use.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched. This shim keeps all existing `proptest! { ... }` test modules
//! source-compatible:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples
//!   of strategies, and [`collection::vec`];
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Unlike upstream there is **no shrinking**: a failing case panics with
//! the deterministic case number so it can be replayed (generation is
//! seeded from the test name, so runs are reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) min: usize,
        /// Exclusive upper end.
        pub(crate) max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (a fixed `usize` or a
    /// `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Any boolean, as upstream's `proptest::bool::ANY`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body against each sample.
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(64).max(1024),
                    "proptest {}: too many prop_assume! rejections \
                     ({} attempts for {} accepted cases)",
                    stringify!($name), attempts, accepted,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body }; ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at deterministic case {} (attempt {}): {}",
                            stringify!($name), accepted, attempts, msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
/// Like `assert!` but aborts only the current generated case, reporting the
/// condition (and optional formatted context) through the proptest runner.
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
/// `assert_eq!` for property bodies.
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) if l == r => {}
            (l, r) => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($left), stringify!($right), l, r),
                ));
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) if l == r => {}
            (l, r) => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                        stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
                ));
            }
        }
    };
}

#[macro_export]
/// `assert_ne!` for property bodies.
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) if l != r => {}
            (l, r) => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                    format!(
                        "assertion failed: {} != {} ({:?} vs {:?})",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    ),
                ));
            }
        }
    };
}

#[macro_export]
/// Discards the current generated case when `cond` is false (does not count
/// toward the configured number of cases).
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies stay in range; tuple + map compose.
        #[test]
        fn ranges_and_maps(
            x in -3.0..3.0f64,
            n in 1usize..5,
            pair in (0.0..1.0f64, 0u8..4).prop_map(|(a, b)| (a, b)),
        ) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 1.0 && pair.1 < 4);
        }

        #[test]
        fn vectors_respect_sizes(
            fixed in crate::collection::vec(0.0..10.0f64, 6),
            ranged in crate::collection::vec(0usize..3, 2..9),
            flag in crate::bool::ANY,
        ) {
            prop_assert_eq!(fixed.len(), 6);
            prop_assert!((2..9).contains(&ranged.len()));
            let coin = u8::from(flag);
            prop_assert!(coin <= 1);
            prop_assert_ne!(fixed.len(), 0);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0usize..10) {
            prop_assume!(v >= 5);
            prop_assert!(v >= 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!((0.0..1.0f64).sample(&mut a), (0.0..1.0f64).sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
