//! The [`Strategy`] trait and its built-in implementations.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Mirrors upstream `proptest::strategy::Strategy` closely enough for the
/// workspace's call sites (`impl Strategy<Value = T>` signatures,
/// `prop_map`, ranges, tuples, vectors).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    /// Exclusive.
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.max > self.min + 1 {
            self.min + (rng.next_u64() % (self.max - self.min) as u64) as usize
        } else {
            self.min
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
