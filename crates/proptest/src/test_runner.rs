//! Configuration, RNG and case outcome types backing the [`crate::proptest!`]
//! expansion.

/// How many accepted cases a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases that must pass (rejections via
    /// [`crate::prop_assume!`] do not count).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another sample.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic xorshift64* generator seeded from the test's name, so a
/// failing case number identifies a reproducible input without storing
/// seeds anywhere.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Folds extra entropy into the stream (used when configs should
    /// produce distinct sequences).
    #[must_use]
    pub fn with_extra_entropy(mut self, extra: u64) -> Self {
        self.state ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.state |= 1;
        self
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}
