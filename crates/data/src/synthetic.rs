//! Seeded synthetic instance generators, including the named analogues of
//! the paper's four benchmarks.
//!
//! All generators are fully deterministic: the same arguments always
//! reproduce the same coordinates (fixed `StdRng` seeds), so experiment
//! outputs are comparable across machines and runs.

use crate::Instance;
use lubt_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random sinks on a `die x die` square, source at the die center.
///
/// # Example
///
/// ```
/// use lubt_data::synthetic::uniform;
/// let a = uniform("u", 50, 1000.0, 7);
/// assert_eq!(a.sinks.len(), 50);
/// assert_eq!(a.sinks, uniform("u", 50, 1000.0, 7).sinks);
/// ```
pub fn uniform(name: &str, num_sinks: usize, die: f64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let sinks = (0..num_sinks)
        .map(|_| Point::new(rng.gen_range(0.0..die), rng.gen_range(0.0..die)))
        .collect();
    Instance::new(name, Some(Point::new(die / 2.0, die / 2.0)), sinks)
}

/// Clustered sinks: `clusters` Gaussian-ish blobs on the die — closer to
/// the register banks of a real floorplan than a uniform scatter.
pub fn clustered(name: &str, num_sinks: usize, die: f64, clusters: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                rng.gen_range(0.1 * die..0.9 * die),
                rng.gen_range(0.1 * die..0.9 * die),
            )
        })
        .collect();
    let spread = die / (clusters as f64).sqrt() / 4.0;
    let sinks = (0..num_sinks)
        .map(|i| {
            let c = centers[i % clusters];
            // Sum of two uniforms approximates a triangular (bell-ish)
            // offset without needing a normal distribution.
            let dx = rng.gen_range(-spread..spread) + rng.gen_range(-spread..spread);
            let dy = rng.gen_range(-spread..spread) + rng.gen_range(-spread..spread);
            Point::new((c.x + dx).clamp(0.0, die), (c.y + dy).clamp(0.0, die))
        })
        .collect();
    Instance::new(name, Some(Point::new(die / 2.0, die / 2.0)), sinks)
}

/// Synthetic analogue of `prim1` (Jackson-Srinivasan-Kuh DAC'90): 269 sinks.
pub fn prim1() -> Instance {
    clustered("prim1-synthetic", 269, 10_000.0, 12, 0x9601)
}

/// Synthetic analogue of `prim2`: 603 sinks.
pub fn prim2() -> Instance {
    clustered("prim2-synthetic", 603, 10_000.0, 24, 0x9602)
}

/// Synthetic analogue of `r1` (Tsay ICCAD'91): 267 sinks on a larger die.
pub fn r1() -> Instance {
    uniform("r1-synthetic", 267, 100_000.0, 0x9603)
}

/// Synthetic analogue of `r2` (not used in the paper's tables, provided
/// for scaling studies): 598 sinks.
pub fn r2() -> Instance {
    uniform("r2-synthetic", 598, 100_000.0, 0x9605)
}

/// Synthetic analogue of `r3`: 862 sinks.
pub fn r3() -> Instance {
    uniform("r3-synthetic", 862, 100_000.0, 0x9604)
}

/// Synthetic analogue of `r4`: 1 903 sinks.
pub fn r4() -> Instance {
    uniform("r4-synthetic", 1903, 100_000.0, 0x9606)
}

/// Synthetic analogue of `r5`: 3 101 sinks.
pub fn r5() -> Instance {
    uniform("r5-synthetic", 3101, 100_000.0, 0x9607)
}

/// The four named analogues in the order the paper's tables list them.
pub fn paper_benchmarks() -> Vec<Instance> {
    vec![prim1(), prim2(), r1(), r3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_sink_counts() {
        assert_eq!(prim1().sinks.len(), 269);
        assert_eq!(prim2().sinks.len(), 603);
        assert_eq!(r1().sinks.len(), 267);
        assert_eq!(r2().sinks.len(), 598);
        assert_eq!(r3().sinks.len(), 862);
        assert_eq!(r4().sinks.len(), 1903);
        assert_eq!(r5().sinks.len(), 3101);
    }

    #[test]
    fn determinism() {
        assert_eq!(prim2().sinks, prim2().sinks);
        assert_eq!(
            uniform("x", 10, 50.0, 3).sinks,
            uniform("x", 10, 50.0, 3).sinks
        );
        assert_ne!(
            uniform("x", 10, 50.0, 3).sinks,
            uniform("x", 10, 50.0, 4).sinks
        );
    }

    #[test]
    fn points_stay_on_die() {
        for inst in [
            clustered("c", 200, 1000.0, 5, 42),
            uniform("u", 200, 1000.0, 42),
        ] {
            for p in &inst.sinks {
                assert!((0.0..=1000.0).contains(&p.x));
                assert!((0.0..=1000.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn positive_radius() {
        for inst in paper_benchmarks() {
            assert!(inst.radius() > 0.0, "{}", inst.name);
        }
    }

    #[test]
    fn clustered_handles_degenerate_cluster_count() {
        let inst = clustered("one", 20, 100.0, 0, 1);
        assert_eq!(inst.sinks.len(), 20);
    }
}
