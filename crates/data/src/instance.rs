use lubt_geom::{bounding_box, Point};

/// A routing benchmark instance: a named set of sink locations and an
/// optional source (clock driver) location.
///
/// # Example
///
/// ```
/// use lubt_data::Instance;
/// use lubt_geom::Point;
///
/// let inst = Instance::new("toy", Some(Point::new(5.0, 5.0)), vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 10.0),
/// ]);
/// assert_eq!(inst.radius(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name (e.g. `"prim1-synthetic"`).
    pub name: String,
    /// Source location, when the benchmark pins it.
    pub source: Option<Point>,
    /// Sink locations.
    pub sinks: Vec<Point>,
}

impl Instance {
    /// Creates an instance.
    pub fn new<S: Into<String>>(name: S, source: Option<Point>, sinks: Vec<Point>) -> Self {
        Instance {
            name: name.into(),
            source,
            sinks,
        }
    }

    /// The paper's *radius*: source-to-farthest-sink distance when the
    /// source is given (Equation 3), half the sink diameter otherwise
    /// (Equation 4). Every experimental bound is expressed in this unit.
    pub fn radius(&self) -> f64 {
        match self.source {
            Some(s) => lubt_delay_radius_with_source(s, &self.sinks),
            None => lubt_geom::diameter(self.sinks.iter().copied()) / 2.0,
        }
    }

    /// Axis-aligned bounding box of all points (sinks plus source).
    pub fn bbox(&self) -> Option<(Point, Point)> {
        bounding_box(self.sinks.iter().copied().chain(self.source))
    }

    /// A deterministic subsample of `k` sinks (stride-based, order
    /// preserving), for scaled-down benchmark runs. Returns a clone when
    /// `k >= len`.
    pub fn subsample(&self, k: usize) -> Instance {
        if k >= self.sinks.len() || k == 0 {
            return self.clone();
        }
        let stride = self.sinks.len() as f64 / k as f64;
        let sinks = (0..k)
            .map(|i| self.sinks[(i as f64 * stride) as usize])
            .collect();
        Instance {
            name: format!("{}@{k}", self.name),
            source: self.source,
            sinks,
        }
    }
}

// Local copy to avoid a dependency cycle with lubt-delay (which depends on
// lubt-topology only, but keeping data's dependency surface minimal).
fn lubt_delay_radius_with_source(source: Point, sinks: &[Point]) -> f64 {
    sinks.iter().map(|s| source.dist(*s)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_with_and_without_source() {
        let sinks = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let with = Instance::new("a", Some(Point::new(0.0, 0.0)), sinks.clone());
        assert_eq!(with.radius(), 8.0);
        let without = Instance::new("b", None, sinks);
        assert_eq!(without.radius(), 4.0);
    }

    #[test]
    fn subsample_is_deterministic_and_sized() {
        let sinks: Vec<Point> = (0..100).map(|i| Point::new(f64::from(i), 0.0)).collect();
        let inst = Instance::new("big", None, sinks);
        let s1 = inst.subsample(10);
        let s2 = inst.subsample(10);
        assert_eq!(s1, s2);
        assert_eq!(s1.sinks.len(), 10);
        assert_eq!(inst.subsample(1000).sinks.len(), 100);
        assert_eq!(inst.subsample(0).sinks.len(), 100);
    }

    #[test]
    fn bbox_includes_source() {
        let inst = Instance::new(
            "c",
            Some(Point::new(-5.0, 0.0)),
            vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)],
        );
        let (lo, hi) = inst.bbox().unwrap();
        assert_eq!(lo.x, -5.0);
        assert_eq!(hi.y, 4.0);
    }
}
