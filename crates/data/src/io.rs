//! Plain-text instance interchange format.
//!
//! ```text
//! # anything after '#' is a comment
//! name prim1-synthetic
//! source 5000 5000        (optional)
//! sink 120.5 88.25        (one line per sink)
//! ```
//!
//! Bare `x y` lines are also accepted as sinks for interoperability with
//! minimal point lists.

use crate::Instance;
use lubt_geom::Point;
use std::error::Error;
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseInstanceError {
    /// A line could not be interpreted.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// No sinks were found.
    NoSinks,
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseInstanceError::BadLine { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            ParseInstanceError::NoSinks => write!(f, "instance contains no sinks"),
        }
    }
}

impl Error for ParseInstanceError {}

/// Serializes an instance to the text format.
///
/// # Example
///
/// ```
/// use lubt_data::{io, Instance};
/// use lubt_geom::Point;
/// let inst = Instance::new("t", None, vec![Point::new(1.0, 2.0)]);
/// let text = io::write(&inst);
/// assert_eq!(io::parse(&text)?, inst);
/// # Ok::<(), lubt_data::io::ParseInstanceError>(())
/// ```
pub fn write(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!("name {}\n", instance.name));
    if let Some(s) = instance.source {
        out.push_str(&format!("source {} {}\n", s.x, s.y));
    }
    for p in &instance.sinks {
        out.push_str(&format!("sink {} {}\n", p.x, p.y));
    }
    out
}

/// Parses the text format.
///
/// # Errors
///
/// Returns [`ParseInstanceError`] on malformed lines or when no sinks are
/// present.
pub fn parse(text: &str) -> Result<Instance, ParseInstanceError> {
    let mut name = String::from("unnamed");
    let mut source = None;
    let mut sinks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = || ParseInstanceError::BadLine {
            line: idx + 1,
            content: raw.to_string(),
        };
        let mut it = line.split_whitespace();
        let head = it.next().ok_or_else(bad)?;
        let parse_point =
            |mut it: std::str::SplitWhitespace<'_>| -> Result<Point, ParseInstanceError> {
                let x: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let y: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if it.next().is_some() {
                    return Err(bad());
                }
                Ok(Point::new(x, y))
            };
        match head {
            "name" => {
                name = it.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(bad());
                }
            }
            "source" => source = Some(parse_point(it)?),
            "sink" => sinks.push(parse_point(it)?),
            _ => {
                // Bare "x y" line: `head` is the x coordinate.
                let x: f64 = head.parse().map_err(|_| bad())?;
                let y: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if it.next().is_some() {
                    return Err(bad());
                }
                sinks.push(Point::new(x, y));
            }
        }
    }
    if sinks.is_empty() {
        return Err(ParseInstanceError::NoSinks);
    }
    Ok(Instance::new(name, source, sinks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn round_trip_named_instance() {
        let inst = synthetic::uniform("roundtrip", 25, 100.0, 5);
        let parsed = parse(&write(&inst)).unwrap();
        assert_eq!(parsed.name, inst.name);
        assert_eq!(parsed.source, inst.source);
        assert_eq!(parsed.sinks.len(), inst.sinks.len());
        for (a, b) in parsed.sinks.iter().zip(&inst.sinks) {
            assert!((a.x - b.x).abs() < 1e-12 && (a.y - b.y).abs() < 1e-12);
        }
    }

    #[test]
    fn bare_points_and_comments() {
        let text = "# toy instance\n1 2\n3.5 -4 # trailing comment\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.name, "unnamed");
        assert_eq!(inst.sinks.len(), 2);
        assert_eq!(inst.sinks[1], Point::new(3.5, -4.0));
        assert!(inst.source.is_none());
    }

    #[test]
    fn bad_lines_are_reported_with_numbers() {
        let err = parse("sink 1 2\nnot numbers here\n").unwrap_err();
        assert!(matches!(err, ParseInstanceError::BadLine { line: 2, .. }));
        let err = parse("sink 1\n").unwrap_err();
        assert!(matches!(err, ParseInstanceError::BadLine { line: 1, .. }));
        let err = parse("sink 1 2 3\n").unwrap_err();
        assert!(matches!(err, ParseInstanceError::BadLine { line: 1, .. }));
    }

    #[test]
    fn empty_input_has_no_sinks() {
        assert_eq!(parse("# nothing\n"), Err(ParseInstanceError::NoSinks));
    }

    #[test]
    fn multi_word_names() {
        let inst = parse("name my test instance\nsink 0 0\n").unwrap();
        assert_eq!(inst.name, "my test instance");
    }
}
