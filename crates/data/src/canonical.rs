//! Canonical instance serialization and hashing.
//!
//! The serve layer caches solve results keyed on the *instance itself*,
//! not on whatever bytes happened to arrive on the wire — two requests
//! that spell the same coordinates differently (`1.50` vs `1.5`, members
//! reordered, whitespace) must hit the same cache entry. This module
//! defines the one canonical spelling everything is normalized to before
//! hashing:
//!
//! * fixed member order (`name`, then `source`, then `sinks`),
//! * no whitespace,
//! * every coordinate formatted with Rust's shortest-round-trip `f64`
//!   formatter, which is bijective on finite values — two coordinate
//!   spellings canonicalize equal iff they parse to the same `f64`.
//!
//! The digest is 64-bit FNV-1a over the canonical bytes: dependency-free,
//! stable across platforms and releases (pinned by tests), and cheap
//! enough to run per request.

use crate::Instance;
use lubt_geom::Point;

/// Formats one coordinate canonically. Finite values use the shortest
/// round-trip form; non-finite values (which no valid instance carries —
/// loaders reject them) get distinct stable spellings so hashing stays
/// total.
fn fmt_coord(x: f64) -> String {
    if x.is_finite() {
        // Normalize the two zeros: -0.0 == 0.0 in every distance the
        // solver computes, so they must share a cache line.
        if x == 0.0 {
            "0".to_string()
        } else {
            format!("{x}")
        }
    } else if x.is_nan() {
        "nan".to_string()
    } else if x > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

fn push_point(out: &mut String, p: &Point) {
    out.push('[');
    out.push_str(&fmt_coord(p.x));
    out.push(',');
    out.push_str(&fmt_coord(p.y));
    out.push(']');
}

/// The canonical serialization of `inst`: a compact JSON document with a
/// fixed member order and canonical number spellings.
///
/// Two instances canonicalize to the same string iff they have the same
/// name, the same source (bitwise, after `-0.0 → 0.0` normalization) and
/// the same sink sequence. Sink *order* is semantic — it defines sink
/// indices in bounds and topologies — so it is preserved, not sorted.
///
/// # Example
///
/// ```
/// use lubt_data::{canonical, Instance};
/// use lubt_geom::Point;
///
/// let a = Instance::new("t", Some(Point::new(1.5, 0.0)), vec![Point::new(2.0, 3.0)]);
/// let b = Instance::new("t", Some(Point::new(1.50, -0.0)), vec![Point::new(2.0, 3.0)]);
/// assert_eq!(canonical::canonical_json(&a), canonical::canonical_json(&b));
/// assert_eq!(
///     canonical::canonical_json(&a),
///     "{\"name\":\"t\",\"source\":[1.5,0],\"sinks\":[[2,3]]}"
/// );
/// ```
pub fn canonical_json(inst: &Instance) -> String {
    let mut out = String::with_capacity(32 + 16 * inst.sinks.len());
    out.push_str("{\"name\":\"");
    for c in inst.name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\",\"source\":");
    match &inst.source {
        Some(p) => push_point(&mut out, p),
        None => out.push_str("null"),
    }
    out.push_str(",\"sinks\":[");
    for (i, p) in inst.sinks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_point(&mut out, p);
    }
    out.push_str("]}");
    out
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes
        .iter()
        .fold(OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
}

/// The canonical digest of `inst`: FNV-1a 64 over [`canonical_json`],
/// rendered as 16 lowercase hex digits. This is the instance component
/// of a serve cache key.
pub fn canonical_digest(inst: &Instance) -> String {
    format!("{:016x}", fnv1a_64(canonical_json(inst).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(name: &str, source: Option<(f64, f64)>, sinks: &[(f64, f64)]) -> Instance {
        Instance::new(
            name,
            source.map(|(x, y)| Point::new(x, y)),
            sinks.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        )
    }

    #[test]
    fn spelling_variants_canonicalize_equal() {
        let a = inst("net", Some((0.0, 12.0)), &[(1.5, 2.25), (3.0, 4.0)]);
        let b = inst("net", Some((-0.0, 12.0)), &[(1.5, 2.25), (3.0, 4.0)]);
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_digest(&a), canonical_digest(&b));
    }

    #[test]
    fn semantic_differences_change_the_digest() {
        let base = inst("net", Some((0.0, 0.0)), &[(1.0, 2.0), (3.0, 4.0)]);
        for other in [
            inst("net2", Some((0.0, 0.0)), &[(1.0, 2.0), (3.0, 4.0)]),
            inst("net", None, &[(1.0, 2.0), (3.0, 4.0)]),
            inst("net", Some((0.0, 1.0)), &[(1.0, 2.0), (3.0, 4.0)]),
            // Sink order is semantic (it names the sinks), so swapping
            // must NOT collide.
            inst("net", Some((0.0, 0.0)), &[(3.0, 4.0), (1.0, 2.0)]),
            inst("net", Some((0.0, 0.0)), &[(1.0, 2.0)]),
            inst("net", Some((0.0, 0.0)), &[(1.0, 2.0), (3.0, 4.000000001)]),
        ] {
            assert_ne!(canonical_digest(&base), canonical_digest(&other));
        }
    }

    #[test]
    fn canonical_form_is_strict_compact_json() {
        let i = inst("a\"b\"\n", Some((1.0, -2.5)), &[(0.125, 6.25)]);
        let doc = canonical_json(&i);
        assert!(
            !doc.contains(' '),
            "canonical form has no whitespace: {doc}"
        );
        assert!(doc.contains("a\\\"b\\\"\\n"), "name is escaped: {doc}");
        assert!(doc.contains("[0.125,6.25]"), "{doc}");
        // Round-trip stability: formatting is shortest-round-trip, so
        // re-parsing each coordinate reproduces the same f64.
        for x in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let spelled = fmt_coord(x);
            assert_eq!(spelled.parse::<f64>().unwrap(), x, "{spelled}");
        }
    }

    #[test]
    fn digest_is_pinned_across_releases() {
        // The digest is a persistent cache key: a silent change to the
        // canonical form would invalidate (or worse, alias) deployed
        // caches. Pin one value forever.
        let i = inst("pin", Some((0.0, 0.0)), &[(1.0, 2.0), (3.5, 4.0)]);
        assert_eq!(
            canonical_json(&i),
            "{\"name\":\"pin\",\"source\":[0,0],\"sinks\":[[1,2],[3.5,4]]}"
        );
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325, "FNV offset basis");
        assert_eq!(
            canonical_digest(&i),
            format!("{:016x}", { fnv1a_64(canonical_json(&i).as_bytes()) })
        );
        // Independently computed FNV-1a of the canonical bytes.
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
