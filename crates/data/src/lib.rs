//! Benchmark instances for LUBT experiments.
//!
//! The paper evaluates on `prim1`/`prim2` (Jackson-Srinivasan-Kuh, DAC'90)
//! and `r1`/`r3` (Tsay, ICCAD'91). Those 1990s coordinate files are not
//! redistributable here, so this crate provides **seeded synthetic
//! analogues** with the published sink counts (prim1 = 269, prim2 = 603,
//! r1 = 267, r3 = 862) and representative die sizes. The paper's claims are
//! relative (baseline-vs-LUBT on identical topologies and windows, monotone
//! cost-vs-bound trends, radius-normalized bounds), so they are preserved
//! under any reasonable sink distribution; see DESIGN.md §5 for the full
//! substitution argument.
//!
//! * [`Instance`] — a named sink set with an optional source location.
//! * [`synthetic`] — seeded uniform and clustered generators plus the four
//!   named analogues.
//! * [`io`] — a small plain-text interchange format.
//!
//! # Example
//!
//! ```
//! use lubt_data::synthetic;
//!
//! let inst = synthetic::prim1();
//! assert_eq!(inst.sinks.len(), 269);
//! assert!(inst.source.is_some());
//! // Instances are deterministic: same seed, same coordinates.
//! assert_eq!(inst.sinks, synthetic::prim1().sinks);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
mod instance;
pub mod io;
pub mod stats;
pub mod synthetic;

pub use instance::Instance;
pub use stats::{instance_stats, row_based, InstanceStats};
