//! Instance statistics — quick structural summaries used to sanity-check
//! that synthetic instances resemble their originals (sink density,
//! nearest-neighbor spacing, aspect ratio).

use crate::Instance;
use lubt_geom::Point;

/// Structural summary of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of sinks.
    pub sinks: usize,
    /// Bounding-box width.
    pub width: f64,
    /// Bounding-box height.
    pub height: f64,
    /// The paper's radius normalization constant.
    pub radius: f64,
    /// Minimum nearest-neighbor Manhattan distance.
    pub nn_min: f64,
    /// Mean nearest-neighbor Manhattan distance.
    pub nn_mean: f64,
    /// Maximum nearest-neighbor Manhattan distance.
    pub nn_max: f64,
}

impl InstanceStats {
    /// Bounding-box aspect ratio `>= 1`.
    pub fn aspect_ratio(&self) -> f64 {
        let (a, b) = (self.width.max(self.height), self.width.min(self.height));
        if b > 0.0 {
            a / b
        } else {
            f64::INFINITY
        }
    }
}

/// Computes the summary; `None` for instances with fewer than two sinks
/// (nearest-neighbor spacing is undefined).
///
/// # Example
///
/// ```
/// use lubt_data::{stats::instance_stats, synthetic};
/// let s = instance_stats(&synthetic::prim1()).unwrap();
/// assert_eq!(s.sinks, 269);
/// assert!(s.nn_min <= s.nn_mean && s.nn_mean <= s.nn_max);
/// ```
pub fn instance_stats(instance: &Instance) -> Option<InstanceStats> {
    let sinks = &instance.sinks;
    if sinks.len() < 2 {
        return None;
    }
    let (lo, hi) = lubt_geom::bounding_box(sinks.iter().copied())?;
    let nn: Vec<f64> = sinks
        .iter()
        .enumerate()
        .map(|(i, p)| {
            sinks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| p.dist(*q))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let nn_min = nn.iter().cloned().fold(f64::INFINITY, f64::min);
    let nn_max = nn.iter().cloned().fold(0.0, f64::max);
    let nn_mean = nn.iter().sum::<f64>() / nn.len() as f64;
    Some(InstanceStats {
        sinks: sinks.len(),
        width: hi.x - lo.x,
        height: hi.y - lo.y,
        radius: instance.radius(),
        nn_min,
        nn_mean,
        nn_max,
    })
}

/// Row-based placement: sinks snapped to standard-cell rows (fixed `y`
/// pitch, uniform `x`) — the structure real register placements exhibit,
/// as opposed to the isotropic scatter of [`crate::synthetic::uniform`].
pub fn row_based(name: &str, num_sinks: usize, die: f64, rows: usize, seed: u64) -> Instance {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = rows.max(1);
    let pitch = die / rows as f64;
    let sinks = (0..num_sinks)
        .map(|_| {
            let row = rng.gen_range(0..rows);
            Point::new(rng.gen_range(0.0..die), (row as f64 + 0.5) * pitch)
        })
        .collect();
    Instance::new(name, Some(Point::new(die / 2.0, die / 2.0)), sinks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn stats_ordering_invariants() {
        for inst in [
            synthetic::uniform("u", 40, 500.0, 2),
            synthetic::clustered("c", 40, 500.0, 4, 2),
            row_based("r", 40, 500.0, 10, 2),
        ] {
            let s = instance_stats(&inst).unwrap();
            assert!(s.nn_min <= s.nn_mean && s.nn_mean <= s.nn_max);
            assert!(s.width >= 0.0 && s.height >= 0.0);
            assert!(s.aspect_ratio() >= 1.0);
            assert!(s.radius > 0.0);
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        let u = instance_stats(&synthetic::uniform("u", 120, 1000.0, 9)).unwrap();
        let c = instance_stats(&synthetic::clustered("c", 120, 1000.0, 4, 9)).unwrap();
        // Clustering pulls nearest neighbors closer on average.
        assert!(
            c.nn_mean < u.nn_mean,
            "clustered {} vs uniform {}",
            c.nn_mean,
            u.nn_mean
        );
    }

    #[test]
    fn row_based_snaps_to_rows() {
        let inst = row_based("rows", 60, 1000.0, 8, 5);
        let pitch = 1000.0 / 8.0;
        for p in &inst.sinks {
            let row_pos = (p.y / pitch) - 0.5;
            assert!(
                (row_pos - row_pos.round()).abs() < 1e-9,
                "y {} off-row",
                p.y
            );
        }
        // Deterministic.
        assert_eq!(inst.sinks, row_based("rows", 60, 1000.0, 8, 5).sinks);
    }

    #[test]
    fn degenerate_instances() {
        let single = Instance::new("one", None, vec![Point::ORIGIN]);
        assert!(instance_stats(&single).is_none());
        let rows = row_based("tiny", 3, 100.0, 0, 1); // rows clamped to 1
        assert_eq!(rows.sinks.len(), 3);
    }
}
