use crate::{MergeTreeBuilder, SourceMode, Topology};
use lubt_geom::Point;

/// Nearest-neighbor merge topology generation (Edahiro DAC'93 family — the
/// generator the paper "adopted from \[9\]").
///
/// Starting from singleton clusters at the sink locations, the two clusters
/// whose representative points are closest in the Manhattan metric are
/// merged under a fresh Steiner point, until one cluster remains. The
/// representative of a merged cluster is placed on the segment between its
/// children so that the two subtree delays balance under the linear delay
/// model (the same balancing rule zero-skew DME uses), which is what makes
/// the resulting topologies good inputs for skew-controlled routing.
///
/// The returned topology is a full binary tree in which every sink is a
/// leaf, so by Lemma 3.1 a LUBT exists for *any* bounds.
///
/// # Panics
///
/// Panics when `sinks` is empty.
///
/// # Example
///
/// ```
/// use lubt_geom::Point;
/// use lubt_topology::{nearest_neighbor_topology, SourceMode};
/// let sinks = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(9.0, 9.0)];
/// let t = nearest_neighbor_topology(&sinks, SourceMode::Free);
/// // The two nearby sinks (nodes 1 and 2) share a parent.
/// assert_eq!(t.parent(t.sink_node(0)), t.parent(t.sink_node(1)));
/// ```
pub fn nearest_neighbor_topology(sinks: &[Point], mode: SourceMode) -> Topology {
    nearest_neighbor_topology_with_threads(sinks, mode, 1)
}

/// [`nearest_neighbor_topology`] with the initial `O(m^2)` nearest-neighbor
/// cache built by `threads` workers (`0` = all cores, `1` = the exact
/// sequential path).
///
/// Each cache entry is an independent pure function of the sink set, so the
/// parallel build is trivially deterministic: the returned topology is
/// identical for every thread count. The merge loop itself stays
/// sequential — each merge is `O(m)` and depends on the previous one.
///
/// # Panics
///
/// Panics when `sinks` is empty.
pub fn nearest_neighbor_topology_with_threads(
    sinks: &[Point],
    mode: SourceMode,
    threads: usize,
) -> Topology {
    assert!(!sinks.is_empty(), "need at least one sink");
    let m = sinks.len();
    let mut b = MergeTreeBuilder::new(m);
    if m == 1 {
        return b
            .clone()
            .finish(b.sink(0), mode)
            .expect("single sink tree is always valid");
    }

    #[derive(Clone, Copy)]
    struct Cluster {
        handle: crate::builder::ClusterId,
        rep: Point,
        delay: f64,
    }

    let mut clusters: Vec<Option<Cluster>> = sinks
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            Some(Cluster {
                handle: b.sink(i),
                rep: p,
                delay: 0.0,
            })
        })
        .collect();

    // Cached nearest neighbor per live cluster: (partner index, distance).
    let nearest_of = |clusters: &[Option<Cluster>], i: usize| -> Option<(usize, f64)> {
        let ci = clusters[i]?;
        let mut best: Option<(usize, f64)> = None;
        for (j, cj) in clusters.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(cj) = cj {
                let d = ci.rep.dist(cj.rep);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
        }
        best
    };
    let grain = (m / lubt_par::resolve_threads(threads).max(1) / 4).max(1);
    let mut nn: Vec<Option<(usize, f64)>> =
        lubt_par::parallel_map(threads, clusters.len(), grain, |i| nearest_of(&clusters, i));

    let mut live = m;
    while live > 1 {
        // Globally closest pair from the cache.
        let (i, _) = nn
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|(_, d)| (i, d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"))
            .expect("at least two live clusters");
        let (j, d) = nn[i].expect("cache entry for live cluster");

        let a = clusters[i].take().expect("live");
        let c = clusters[j].take().expect("live");
        let merged = merge_clusters(&mut b, a, c, d);
        clusters[i] = Some(merged);
        nn[j] = None;

        // Refresh caches that referenced the merged pair, plus the new
        // cluster itself.
        nn[i] = nearest_of(&clusters, i);
        for k in 0..clusters.len() {
            if k == i || clusters[k].is_none() {
                continue;
            }
            match nn[k] {
                Some((p, _)) if p == i || p == j => nn[k] = nearest_of(&clusters, k),
                _ => {
                    // The new cluster may be closer than the cached partner.
                    let ck = clusters[k].expect("live");
                    let d = ck.rep.dist(merged.rep);
                    if nn[k].is_none_or(|(_, bd)| d < bd) {
                        nn[k] = Some((i, d));
                    }
                }
            }
        }
        live -= 1;

        fn merge_clusters(b: &mut MergeTreeBuilder, a: Cluster, c: Cluster, d: f64) -> Cluster {
            let handle = b.merge(a.handle, c.handle);
            let gap = (a.delay - c.delay).abs();
            if gap <= d {
                // Balanced split: e_a + e_c = d with delays equalized.
                let ea = ((d + c.delay - a.delay) / 2.0).clamp(0.0, d);
                let t = if d > 0.0 { ea / d } else { 0.5 };
                let rep = Point::new(
                    a.rep.x + t * (c.rep.x - a.rep.x),
                    a.rep.y + t * (c.rep.y - a.rep.y),
                );
                Cluster {
                    handle,
                    rep,
                    delay: a.delay + ea,
                }
            } else if a.delay > c.delay {
                // The deeper side dominates; merge at its representative
                // (the shallower side will be elongated).
                Cluster {
                    handle,
                    rep: a.rep,
                    delay: a.delay,
                }
            } else {
                Cluster {
                    handle,
                    rep: c.rep,
                    delay: c.delay,
                }
            }
        }
    }

    let top = clusters
        .iter()
        .flatten()
        .next()
        .expect("one cluster remains")
        .handle;
    b.finish(top, mode).expect("merge covers every sink once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn merges_closest_pair_first() {
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(52.0, 50.0),
        ];
        let t = nearest_neighbor_topology(&sinks, SourceMode::Free);
        assert_eq!(t.num_sinks(), 4);
        assert!(t.is_binary(SourceMode::Free));
        // The two left sinks share a parent, and the two right sinks do.
        assert_eq!(t.parent(NodeId(1)), t.parent(NodeId(2)));
        assert_eq!(t.parent(NodeId(3)), t.parent(NodeId(4)));
    }

    #[test]
    fn all_sizes_produce_valid_binary_trees() {
        for m in 1..24usize {
            let sinks: Vec<Point> = (0..m)
                .map(|i| {
                    // Deterministic scatter.
                    let a = (i * 37 % 101) as f64;
                    let b = (i * 61 % 89) as f64;
                    Point::new(a, b)
                })
                .collect();
            let t = nearest_neighbor_topology(&sinks, SourceMode::Given);
            assert_eq!(t.num_sinks(), m);
            assert!(t.all_sinks_are_leaves());
            if m >= 2 {
                assert!(t.is_binary(SourceMode::Given), "m={m}");
                assert_eq!(t.num_nodes(), 2 * m); // root + m sinks + (m-1) steiner
            }
        }
    }

    #[test]
    fn threads_do_not_change_the_topology() {
        let sinks: Vec<Point> = (0..33)
            .map(|i| Point::new((i * 37 % 101) as f64, (i * 61 % 89) as f64))
            .collect();
        for mode in [SourceMode::Free, SourceMode::Given] {
            let base = nearest_neighbor_topology(&sinks, mode);
            for threads in [2, 4, 8, 0] {
                let t = nearest_neighbor_topology_with_threads(&sinks, mode, threads);
                assert_eq!(t.num_nodes(), base.num_nodes(), "threads={threads}");
                for node in 1..t.num_nodes() {
                    assert_eq!(
                        t.parent(NodeId(node)),
                        base.parent(NodeId(node)),
                        "threads={threads} node={node}"
                    );
                }
            }
        }
    }

    #[test]
    fn collinear_equal_points() {
        // Duplicate locations must not break the generator.
        let sinks = vec![Point::new(5.0, 5.0); 6];
        let t = nearest_neighbor_topology(&sinks, SourceMode::Free);
        assert_eq!(t.num_sinks(), 6);
        assert!(t.all_sinks_are_leaves());
    }
}
