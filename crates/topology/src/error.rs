use std::error::Error;
use std::fmt;

/// Errors produced when constructing or transforming topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A parent index referenced a node outside the tree.
    ParentOutOfRange {
        /// The child node.
        node: usize,
        /// Its (invalid) parent index.
        parent: usize,
        /// Total node count.
        nodes: usize,
    },
    /// The parent relation contains a cycle or disconnected component.
    NotATree,
    /// The root (node 0) was given a parent.
    RootHasParent,
    /// More sinks were declared than nodes exist.
    TooManySinks {
        /// Declared sink count.
        sinks: usize,
        /// Total node count.
        nodes: usize,
    },
    /// Fewer than one sink.
    NoSinks,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ParentOutOfRange {
                node,
                parent,
                nodes,
            } => write!(
                f,
                "node {node} has parent {parent}, out of range for {nodes} nodes"
            ),
            TopologyError::NotATree => write!(f, "parent relation is not a rooted tree"),
            TopologyError::RootHasParent => write!(f, "root node 0 must not have a parent"),
            TopologyError::TooManySinks { sinks, nodes } => {
                write!(f, "{sinks} sinks declared but only {nodes} nodes exist")
            }
            TopologyError::NoSinks => write!(f, "a topology needs at least one sink"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(TopologyError::NotATree.to_string().contains("tree"));
        assert!(TopologyError::NoSinks.to_string().contains("sink"));
    }
}
